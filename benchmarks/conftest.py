"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables or figures and
prints the rows/series the paper reports (see EXPERIMENTS.md for the
paper-vs-measured comparison).  Experiments are cycle-exact simulations,
so each runs exactly once per benchmark session (``pedantic`` with one
round) — the benchmark timer then records the host cost of regenerating
that artifact.

Set ``FIRESIM_FULL=1`` to run the heavyweight experiments (Figures 6/7,
Table III) at full parameter scale instead of the bench-friendly presets.
"""

import os

import pytest


def full_scale() -> bool:
    return os.environ.get("FIRESIM_FULL", "0") == "1"


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
