"""Ablation: token batch size (the §III-B2 batching design choice).

FireSim batches token movement up to the target link latency "without
any compromise in cycle accuracy".  This bench demonstrates both halves
of that claim on the Python host:

* running the same 2-node ping at quanta of l, l/4, and l/16 produces
  bit-identical RTT samples (cycle accuracy is quantum-independent);
* host wall-clock grows as the quantum shrinks (why FireSim always sets
  the batch size to the link latency).
"""

import time

from repro.core.simulation import Simulation
from repro.net.ethernet import mac_address
from repro.net.switch import SwitchConfig, SwitchModel
from repro.swmodel.apps.ping import RESULT_KEY, make_ping_client
from repro.swmodel.server import ServerBlade

LINK_LATENCY = 6400


def _ping_run(quantum):
    sim = Simulation(quantum_override=quantum)
    a = sim.add_model(ServerBlade("node0", node_index=0))
    b = sim.add_model(ServerBlade("node1", node_index=1))
    switch = sim.add_model(
        SwitchModel(
            "tor",
            SwitchConfig(num_ports=2),
            mac_table={mac_address(0): 0, mac_address(1): 1},
        )
    )
    sim.connect(a, "net", switch, "port0", LINK_LATENCY)
    sim.connect(switch, "port1", b, "net", LINK_LATENCY)
    a.spawn("ping", make_ping_client(b.mac, count=8, interval_cycles=120_000))
    start = time.perf_counter()
    sim.run_seconds(0.0015)
    elapsed = time.perf_counter() - start
    return tuple(a.results[RESULT_KEY]), elapsed


def test_ablation_token_batching(run_once):
    def sweep():
        return {q: _ping_run(q) for q in (LINK_LATENCY, LINK_LATENCY // 4, LINK_LATENCY // 16)}

    results = run_once(sweep)
    print()
    baseline_rtts, baseline_time = results[LINK_LATENCY]
    for quantum, (rtts, elapsed) in sorted(results.items(), reverse=True):
        print(
            f"  quantum={quantum:5d} cycles: host {elapsed*1e3:8.1f} ms, "
            f"RTTs identical: {rtts == baseline_rtts}"
        )
        # Cycle accuracy is independent of the batching quantum.
        assert rtts == baseline_rtts
    # Smaller quanta cost more host time (the reason for latency-sized
    # batches); require the finest quantum to be measurably slower.
    assert results[LINK_LATENCY // 16][1] > results[LINK_LATENCY][1]
