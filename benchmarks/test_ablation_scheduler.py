"""Ablation: sticky wake placement (the Figure 7 scheduler mechanism).

DESIGN.md attributes the unpinned-4-thread tail anomaly to sticky wake
placement (Linux wake-affinity stacking threads on a recently-used core).
Disabling stickiness — always waking on the least-loaded core — should
pull the unpinned 4-thread tail down toward the pinned configuration at
the loads where the anomaly lives, demonstrating the mechanism.
"""

from repro.experiments.common import cycles_to_us, percentile
from repro.manager.runfarm import RunFarmConfig, elaborate
from repro.manager.topology import single_rack
from repro.swmodel.apps.memcached import MemcachedConfig, start_memcached
from repro.swmodel.apps.mutilate import (
    RESULT_LATENCY,
    MutilateConfig,
    start_mutilate,
)
from repro.swmodel.sched import SchedulerConfig

QPS = 90_000
MEASURE_SECONDS = 0.02


def _p95(sticky):
    sim = elaborate(
        single_rack(8),
        RunFarmConfig(sched_config=SchedulerConfig(sticky_wake=sticky)),
    )
    server = sim.blade(0)
    start_memcached(server, MemcachedConfig(num_threads=4))
    for client_index in range(7):
        start_mutilate(
            sim.blade(1 + client_index),
            MutilateConfig(
                server_mac=server.mac,
                target_qps=QPS / 7,
                duration_cycles=int(MEASURE_SECONDS * 3.2e9),
                num_connections=16,
                server_threads=4,
                seed=900 + client_index,
            ),
        )
    sim.run_seconds(MEASURE_SECONDS + 0.003)
    samples = []
    for client_index in range(7):
        samples.extend(sim.blade(1 + client_index).results[RESULT_LATENCY])
    return cycles_to_us(percentile(samples, 95))


def test_ablation_sticky_wake(run_once):
    def sweep():
        return {"sticky": _p95(True), "spread": _p95(False)}

    results = run_once(sweep)
    print()
    print(f"  p95 with sticky wake placement:   {results['sticky']:7.1f} us")
    print(f"  p95 with least-loaded placement:  {results['spread']:7.1f} us")
    # Removing stickiness removes the poor-placement tail inflation.
    assert results["spread"] < results["sticky"]
