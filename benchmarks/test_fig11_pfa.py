"""Figure 11 bench: PFA vs software paging (§VI)."""

from conftest import full_scale

from repro.experiments import fig11_pfa


def test_fig11_pfa(run_once):
    result = run_once(fig11_pfa.run, quick=not full_scale())
    print()
    print(result.table())
    assert abs(result.best_improvement("genome") - 1.4) < 0.25
    for point in result.points:
        assert point.pfa_slowdown <= point.sw_slowdown
        assert point.evictions_equal
        assert 2.0 < point.metadata_ratio < 3.3
