"""Figure 5 bench: ping RTT vs configured link latency (§IV-A)."""

from conftest import full_scale

from repro.experiments import fig5_ping


def test_fig5_ping_latency(run_once):
    result = run_once(fig5_ping.run, quick=not full_scale())
    print()
    print(result.table())
    overheads = [p.overhead_us for p in result.points]
    # Measured parallels ideal with a fixed ~34 us offset (paper §IV-A).
    assert max(overheads) - min(overheads) < 1.0
    assert 30 < overheads[0] < 38
