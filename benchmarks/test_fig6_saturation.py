"""Figure 6 bench: saturating network bandwidth (§IV-D).

Paper series: aggregate bandwidth at the root switch maxes out at 8 and
80 Gbit/s for 1 and 10 Gbit/s senders, and saturates the 200 Gbit/s
uplink for 40 and 100 Gbit/s senders (after 5 and 2 senders enter).
"""

from conftest import full_scale

from repro.experiments import fig6_saturation


def test_fig6_saturation(run_once):
    result = run_once(fig6_saturation.run, quick=not full_scale())
    print()
    print(result.table())
    by_rate = {s.rate_gbps: s for s in result.series}
    assert 6 < by_rate[1.0].steady_gbps < 10  # 8 x 1G senders
    assert 70 < by_rate[10.0].steady_gbps < 90  # 8 x 10G senders
    # 40G and 100G saturate the ~200 Gbit/s (204.8 raw) uplink.
    assert by_rate[40.0].steady_gbps > 190
    assert by_rate[100.0].steady_gbps > 190
