"""Figure 7 bench: memcached thread-imbalance tail latency (§IV-E)."""

from conftest import full_scale

from repro.experiments import fig7_memcached


def test_fig7_memcached(run_once):
    result = run_once(fig7_memcached.run, quick=not full_scale())
    print()
    print(result.table())
    # At the highest common load, the 5-thread tail must exceed the
    # 4-thread tails while medians stay much closer (paper Figure 7).
    top = max(p.target_qps for p in result.points)
    at_top = {p.config_name: p for p in result.points if p.target_qps == top}
    five = at_top["5 threads"]
    four = at_top["4 threads"]
    pinned = at_top["4 threads pinned"]
    assert five.p95_us > 1.3 * min(four.p95_us, pinned.p95_us)
    assert five.p50_us < 0.6 * five.p95_us
