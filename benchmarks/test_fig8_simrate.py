"""Figure 8 bench: simulation rate vs number of simulated nodes (§V-A)."""

from repro.experiments import fig8_simrate


def test_fig8_simrate(run_once):
    result = run_once(fig8_simrate.run)
    print()
    print(result.table())
    standard = [p.standard_mhz for p in result.points]
    assert standard == sorted(standard, reverse=True)
    anchor = result.points[-1]
    assert anchor.num_nodes == 1024
    assert abs(anchor.supernode_mhz - 3.42) < 0.15
