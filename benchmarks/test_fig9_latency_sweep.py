"""Figure 9 bench: simulation rate vs target link latency (§V-B)."""

from repro.experiments import fig9_latency_sweep


def test_fig9_latency_sweep(run_once):
    result = run_once(fig9_latency_sweep.run)
    print()
    print(result.table())
    rates = [p.rate_mhz for p in result.points]
    assert rates == sorted(rates)  # batching amortizes per-round cost


def test_fig9_functional_probe(run_once):
    """The same batching shape measured on this Python host."""
    points = run_once(fig9_latency_sweep.run_functional_probe)
    print()
    for p in points:
        print(
            f"  python host @ l={p.link_latency_cycles}: "
            f"{p.rate_mhz:.3f} MHz"
        )
    assert points[-1].rate_mhz > points[0].rate_mhz
