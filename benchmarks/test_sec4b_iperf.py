"""Section IV-B bench: iperf3 TCP bandwidth (paper: 1.4 Gbit/s)."""

from repro.experiments import sec4b_iperf


def test_sec4b_iperf(run_once):
    result = run_once(sec4b_iperf.run)
    print()
    print(result.table())
    assert 1.2 < result.goodput_gbps < 1.6
