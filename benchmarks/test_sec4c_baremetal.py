"""Section IV-C bench: bare-metal NIC bandwidth (paper: ~100 Gbit/s)."""

from repro.experiments import sec4c_baremetal


def test_sec4c_baremetal(run_once):
    result = run_once(sec4c_baremetal.run)
    print()
    print(result.table())
    assert 90 < result.bandwidth_gbps < 115
    assert result.in_order
