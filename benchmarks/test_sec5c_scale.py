"""Section V-C bench: 1024-node deployment headline numbers."""

from repro.experiments import sec5c_scale


def test_sec5c_scale(run_once):
    result = run_once(sec5c_scale.run)
    print()
    print(result.table())
    assert result.num_f1 == 32 and result.num_m4 == 5
    assert abs(result.spot_per_hour - 100.0) < 1.0
    assert abs(result.on_demand_per_hour - 440.0) < 5.0
    assert abs(result.fpga_value_musd - 12.8) < 0.01
    assert abs(result.sim_rate_mhz - 3.42) < 0.15
    assert result.slowdown < 1000
