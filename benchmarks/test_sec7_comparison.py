"""Section VII bench: simulator comparison table."""

from repro.experiments import sec7_comparison
from repro.host.baselines import DIST_GEM5


def test_sec7_comparison(run_once):
    result = run_once(sec7_comparison.run)
    print()
    print(result.table())
    firesim = result.envelope("FireSim")
    assert firesim.node_rate_hz / DIST_GEM5.node_rate_hz > 50
    assert firesim.slowdown_vs() < 1000
