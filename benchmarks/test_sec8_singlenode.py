"""Section VIII bench: massively parallel single-node SPECint farm."""

from conftest import full_scale

from repro.experiments import sec8_singlenode


def test_sec8_singlenode(run_once):
    result = run_once(sec8_singlenode.run, quick=not full_scale())
    print()
    print(result.table())
    # "Cycle-exact results in roughly one day": tens of host-hours per
    # benchmark when farmed in parallel.
    assert 5 < result.suite_host_hours < 120
    assert all(r.simulated_cycles > 0 for r in result.rows)
