"""Table III bench: datacenter memcached latencies by pairing (§V-C).

Runs the structurally identical scaled tree by default (64 servers + 64
clients over 8 ToR / 4 aggregation / 1 root); FIRESIM_FULL=1 runs the
paper's full 1024-node shape (slow on a Python host).
"""

from conftest import full_scale

from repro.experiments import table3_datacenter


def test_table3_datacenter(run_once):
    shape = (
        table3_datacenter.PAPER_SHAPE
        if full_scale()
        else table3_datacenter.DatacenterShape()
    )
    result = run_once(table3_datacenter.run, shape=shape, quick=not full_scale())
    print()
    print(result.table())
    p50s = [r.p50_us for r in result.rows]
    # Median rises by ~4 link latencies + switching (~8 us) per tier.
    assert p50s[0] < p50s[1] < p50s[2]
    assert 5.0 < p50s[1] - p50s[0] < 11.0
    assert 5.0 < p50s[2] - p50s[1] < 11.0
