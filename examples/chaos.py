#!/usr/bin/env python3
"""Chaos testing: inject host faults and recover cycle-exactly.

Runs the same ping workload twice on an 8-node rack — once fault-free,
once under a seeded :class:`~repro.faults.plan.FaultPlan` that fails an
FPGA build, fails an instance launch, drops a heartbeat during setup,
and crashes the simulation controller about a third of the way through
the run.  The manager retries the transient faults with exponential
backoff, quarantines nothing (each host recovers within its budget),
and restores the crashed run from the latest quantum-boundary
checkpoint.  The punchline is the final comparison: the faulted run's
RTT samples and final cycle count are *identical* to the fault-free
run, because recovery replays deterministic token exchanges rather than
approximating lost state.

Run:  python examples/chaos.py
"""

from repro import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    FireSimManager,
    RetryPolicy,
    RunFarmConfig,
    WorkloadSpec,
    single_rack,
)
from repro.swmodel.apps.ping import RESULT_KEY, make_ping_client

LINK_LATENCY_CYCLES = 6400  # 2 us at the 3.2 GHz target clock
DURATION_S = 0.002
CHECKPOINT_INTERVAL_CYCLES = 1_600_000  # 0.5 ms of target time

CHAOS_PLAN = FaultPlan(
    seed=2018,
    specs=(
        FaultSpec(FaultKind.AGFI_BUILD, "buildafi", target="QuadCore"),
        FaultSpec(FaultKind.INSTANCE_LAUNCH, "launchrunfarm"),
        FaultSpec(FaultKind.HEARTBEAT_LOSS, "infrasetup"),
        FaultSpec(FaultKind.CONTROLLER_CRASH, "runworkload",
                  at_cycle=2_000_000),
    ),
)


def run_session(fault_plan=None):
    """One full manager lifecycle; returns (rtts, target_seconds, manager)."""
    topology = single_rack(num_servers=8, server_type="QuadCore")
    manager = FireSimManager(
        topology,
        run_config=RunFarmConfig(link_latency_cycles=LINK_LATENCY_CYCLES),
        fault_plan=fault_plan,
        retry_policy=RetryPolicy(max_retries=3),
        checkpoint_interval_cycles=(
            CHECKPOINT_INTERVAL_CYCLES if fault_plan else None
        ),
    )
    manager.buildafi()
    manager.launchrunfarm()
    sim = manager.infrasetup()
    target = sim.blade(1)
    workload = WorkloadSpec("chaos-ping", duration_seconds=DURATION_S)
    workload.add_job(
        0,
        "ping",
        lambda blade: blade.spawn(
            "ping",
            make_ping_client(target.mac, count=5, interval_cycles=300_000),
        ),
    )
    result = manager.runworkload(workload)
    manager.terminaterunfarm()
    return result.results_for(0)[RESULT_KEY], result.target_seconds, manager


def main() -> None:
    print("=== fault-free run ===")
    clean_rtts, clean_seconds, _ = run_session()
    print(f"ping RTTs (cycles): {clean_rtts}")

    print("\n=== chaos run (4 planned faults) ===")
    rtts, seconds, manager = run_session(CHAOS_PLAN)
    summary = manager.resilience_summary()
    for entry in summary["fault_log"]:
        print(f"  {entry}")
    print(
        f"recovered: {summary['retries']} retries, "
        f"{summary['recoveries']} recoveries, "
        f"{summary['restores']} checkpoint restore(s) replaying "
        f"{summary['replay_cycles']} cycles"
    )
    print(f"ping RTTs (cycles): {rtts}")

    assert rtts == clean_rtts, "recovery must be cycle-exact"
    assert seconds == clean_seconds
    print(
        "\nOK: faulted run matches the fault-free run cycle-for-cycle "
        f"({seconds * 1e3:.2f} ms of target time)."
    )


if __name__ == "__main__":
    main()
