#!/usr/bin/env python3
"""Custom datacenter blades: accelerators and runtime-tunable NICs.

Shows the two customization axes the paper emphasizes (Sections III-A
and VIII):

1. **Custom RTL blades** — a blade configuration carrying the Hwacha
   vector accelerator (Table II) offloads a data-parallel kernel and is
   compared against scalar Rocket execution.
2. **Runtime network reconfiguration** — the NIC's token-bucket rate
   limiter is set to standard Ethernet bandwidths without rebuilding
   anything, and a bare-metal stream measures the achieved rate through
   the cycle-exact network (the mechanism behind Figure 6).

Run:  python examples/custom_blade.py
"""

from repro import RunFarmConfig, elaborate, single_rack
from repro.nic.ratelimit import rate_settings_for_bandwidth
from repro.swmodel.apps.streamer import (
    attach_baremetal_receiver,
    make_baremetal_sender,
    measured_bandwidth_bps,
)
from repro.tile.rocket import ComputeBlock
from repro.tile.soc import config_by_name

LINK_GBPS = 204.8  # 64-bit flit per 3.2 GHz cycle


def accelerator_demo() -> None:
    print("=== Hwacha vector accelerator (Table II) ===")
    soc = config_by_name("QuadCoreHwacha").build()
    kernel = ComputeBlock(instructions=2_000_000)  # cache-resident kernel
    scalar_cycles = soc.cores[0].execute_block(0, kernel)
    hwacha_cycles = soc.accelerator("hwacha").invoke_cycles(0, kernel)
    print(f"scalar Rocket: {scalar_cycles:,} cycles")
    print(f"Hwacha offload: {hwacha_cycles:,} cycles "
          f"({scalar_cycles / hwacha_cycles:.1f}x speedup)\n")


def rate_limit_demo() -> None:
    print("=== Runtime NIC rate limiting (no resynthesis) ===")
    for target_gbps in (10.0, 40.0, 100.0):
        sim = elaborate(single_rack(2), RunFarmConfig())
        sender, receiver = sim.blade(0), sim.blade(1)
        attach_baremetal_receiver(receiver)
        k, p = rate_settings_for_bandwidth(target_gbps * 1e9, LINK_GBPS * 1e9)
        sender.nic.set_bandwidth(k, p)
        frames = max(200, int(target_gbps * 25))
        sender.spawn(
            "stream", make_baremetal_sender(receiver.mac, num_frames=frames)
        )
        sim.run_seconds(0.0005)
        achieved = measured_bandwidth_bps(receiver, 3.2e9) / 1e9
        print(f"token bucket k={k:4d} p={p:4d}: target {target_gbps:6.1f} "
              f"Gbit/s -> achieved {achieved:6.1f} Gbit/s")
    print("\nThe limiter backpressures the NIC internally, so the blade "
          "behaves as if it really had the configured link speed.")


def main() -> None:
    accelerator_demo()
    rate_limit_demo()


if __name__ == "__main__":
    main()
