#!/usr/bin/env python3
"""Thousand-node datacenter simulation, end to end (Section V-C).

Builds the paper's Figure 10 topology — 1024 quad-core nodes under 32
ToR switches, 4 aggregation switches, and one root switch — maps it with
supernode packing onto 32 f1.16xlarge + 5 m4.16xlarge instances, and
reports the headline platform numbers ($100/hour spot, $12.8M of FPGAs,
3.42 MHz).  It then runs a structurally identical scaled-down tree
*functionally* (cycle-exact) with memcached traffic crossing each switch
tier, reproducing Table III's shape: +4 link latencies (+ switching) of
median latency per tier crossed.

Run:  python examples/datacenter_scale.py
"""

from repro import FireSimManager, datacenter_tree
from repro.experiments.table3_datacenter import (
    DatacenterShape,
    PAIRINGS,
    run_pairing,
)
from repro.manager.mapper import SUPERNODE_HOST


def platform_math() -> None:
    print("=== Full 1024-node deployment (mapping + cost + rate) ===")
    topology = datacenter_tree()  # 4 agg x 8 racks x 32 nodes
    manager = FireSimManager(topology, host_config=SUPERNODE_HOST)
    manager.buildafi()
    manager.launchrunfarm()
    nodes = len(list(topology.iter_servers()))
    print(f"simulated nodes: {nodes} ({nodes * 4} cores, "
          f"{nodes * 16 / 1024:.0f} TB of target DRAM)")
    print(manager.cost_report())
    rate = manager.rate_estimate()
    print(f"simulation rate: {rate.rate_mhz:.2f} MHz "
          f"({rate.slowdown_vs_target(3.2e9):.0f}x slowdown)")
    print(f"aggregate instruction rate: "
          f"~{nodes * 4 * rate.rate_hz / 1e9:.0f} billion instr/s\n")


def functional_run() -> None:
    print("=== Scaled functional run (64 servers + 64 clients) ===")
    shape = DatacenterShape()  # 4 agg x 2 racks x 8 nodes
    for pairing in PAIRINGS:
        row = run_pairing(pairing, shape, measure_seconds=0.008)
        print(f"{pairing:18s} p50={row.p50_us:6.2f} us  "
              f"p95={row.p95_us:6.2f} us  QPS={row.aggregate_qps:,.0f}")
    print("\nEach switch tier crossed adds ~4 link latencies (+switching) "
          "of median latency, as in Table III.")


def main() -> None:
    platform_math()
    functional_run()


if __name__ == "__main__":
    main()
