#!/usr/bin/env python3
"""Disaggregated memory with the Page-Fault Accelerator (Section VI).

Runs the paper's PFA case study: the Genome and Qsort benchmarks (64 MiB
peak footprint) page against a remote memory blade while the local
memory size shrinks, comparing classic software paging (trap + inline OS
handler, like Infiniswap) against the hybrid HW/SW design where the PFA
handles the latency-critical fault in hardware and the OS drains new-page
metadata in batches (freeQ/newQ).

Run:  python examples/disaggregated_memory.py
"""

from repro.pfa.pfa import PageFaultAccelerator, SoftwarePaging
from repro.pfa.remote import AnalyticRemoteMemory
from repro.pfa.runtime import PagedExecutor, run_trace_all_local
from repro.pfa.workloads import (
    WorkloadConfig,
    genome_trace,
    local_memory_sweep,
    qsort_trace,
)

FRACTIONS = (0.125, 0.25, 0.5, 0.75)


def sweep(name: str, trace_fn, config: WorkloadConfig) -> None:
    print(f"== {name} (footprint {config.footprint_bytes // 2**20} MiB)")
    baseline = run_trace_all_local(trace_fn(config))
    header = (
        f"{'local mem':>10} {'sw paging':>10} {'PFA':>8} "
        f"{'speedup':>8} {'faults':>8} {'metadata sw/PFA':>16}"
    )
    print(header)
    for fraction, pages in local_memory_sweep(FRACTIONS, config.footprint_bytes):
        sw = PagedExecutor(
            SoftwarePaging(AnalyticRemoteMemory()), pages
        ).run(trace_fn(config))
        pfa = PagedExecutor(
            PageFaultAccelerator(AnalyticRemoteMemory()), pages
        ).run(trace_fn(config))
        sw_md = sw.metadata_cycles / max(sw.faults, 1)
        pfa_md = pfa.metadata_cycles / max(pfa.faults, 1)
        print(
            f"{fraction:>9.1%} "
            f"{sw.slowdown_vs(baseline):>9.2f}x "
            f"{pfa.slowdown_vs(baseline):>7.2f}x "
            f"{sw.total_cycles / pfa.total_cycles:>7.2f}x "
            f"{sw.faults:>8d} "
            f"{sw_md / pfa_md:>15.2f}x"
        )
    print()


def main() -> None:
    sweep("Genome (random hash-table probes)", genome_trace,
          WorkloadConfig(steps=60_000))
    sweep("Qsort (depth-first partition sweeps)", qsort_trace,
          WorkloadConfig(footprint_bytes=16 * 2**20,
                         compute_per_step_cycles=16_000))
    print("Paper's findings reproduced: the PFA cuts paging overhead "
          "(up to ~1.4x runtime), evicted pages are\nidentical under "
          "both backends, and batched newQ draining cuts per-page "
          "metadata time ~2.5x.")


if __name__ == "__main__":
    main()
