#!/usr/bin/env python3
"""Manager as a service: one run farm, many tenants, zero interference.

Starts an in-process :class:`~repro.serve.JobServer` over a small farm
(two ``f1.2xlarge`` instances -> 2 FPGA slots), then plays three
tenants against it:

* ``nightly`` — a long, low-priority, preemptible batch sweep that
  grabs the whole farm first;
* ``interactive`` — a short, high-priority job submitted while the
  batch job is mid-flight.  The scheduler checkpoints the batch job at
  the next quantum boundary, evicts it, runs the urgent job, then
  resumes the batch job from its checkpoint;
* ``oracle`` — the same batch spec run standalone, serially, in this
  process.  The punchline: despite being preempted and resumed on a
  shared farm, the batch job's RTT samples and final state digest are
  *bit-identical* to the undisturbed run, because checkpoints replay
  deterministic token exchanges rather than approximating lost state.

Along the way the server prices each job (spot for preemptible
tenants, on-demand for the rest), logs every lifecycle transition to a
JSON-lines event log, and audits ``/dev/shm`` on shutdown.

Run:  PYTHONPATH=src python examples/job_server.py
"""

import json
import tempfile
import time

from repro.serve import (
    InProcessClient,
    JobServer,
    JobSpec,
    ServeFarm,
    run_job_inline,
)

BATCH = {
    "name": "nightly",
    "topology": "single_rack",
    "servers_per_rack": 2,
    "workload": "ping",
    "duration_ms": 40.0,
    "ping_count": 20,
    "priority": -1,
    "preemptible": True,
}

URGENT = {
    "name": "interactive",
    "topology": "single_rack",
    "servers_per_rack": 2,
    "workload": "ping",
    "duration_ms": 2.0,
    "ping_count": 4,
    "priority": 10,
    "preemptible": False,
}


def main():
    # The serial oracle: what the batch job produces with the farm to
    # itself.  Everything the server does must reproduce this exactly.
    oracle = run_job_inline(JobSpec.from_dict(BATCH))

    with tempfile.NamedTemporaryFile("r", suffix=".jsonl") as log:
        farm = ServeFarm({"f1.2xlarge": 2})
        server = JobServer(farm=farm, event_log=log.name).start()
        client = InProcessClient(server)
        print(f"serving a farm of {farm.capacity} FPGA slots")

        batch_id = client.submit(BATCH)
        while not any(e["event"] == "started" for e in server.events):
            time.sleep(0.02)
        time.sleep(0.2)  # the batch job gets a head start worth keeping
        urgent_id = client.submit(URGENT)

        urgent = client.wait(urgent_id, timeout_s=120)
        batch = client.wait(batch_id, timeout_s=120)
        for record in (urgent, batch):
            assert record["state"] == "done", record["error"]
            pricing = record["cost"].get("pricing", "?")
            print(
                f"  #{record['job_id']} {record['name']!r}: done, "
                f"{record['preemptions']} preemption(s), "
                f"priced {pricing} at "
                f"${record['cost']['hourly_rate']:.2f}/h"
            )

        assert batch["preemptions"] >= 1, "the urgent job never preempted"
        assert batch["result"]["node_results"] == oracle["node_results"]
        assert batch["result"]["final_digest"] == oracle["final_digest"]
        print(
            "preempted + resumed batch job is bit-identical to its "
            "undisturbed serial run"
        )

        report = client.shutdown()
        assert not report["leaked_segments"], report["leaked_segments"]
        server.stop()

        events = [json.loads(line) for line in log]
        kinds = [e["event"] for e in events]
        print(
            f"event log: {len(events)} records "
            f"({kinds.count('started')} starts, "
            f"{kinds.count('preempted')} preemption, "
            "clean shutdown)"
        )


if __name__ == "__main__":
    main()
