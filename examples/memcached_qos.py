#!/usr/bin/env python3
"""Datacenter QoS study: memcached tail latency under thread imbalance.

Reproduces the experiment of the paper's Section IV-E (Figure 7) at one
load level: an 8-node cluster where one 4-core blade serves memcached
and seven blades generate open-loop load with the mutilate model.  The
server is run with 4 worker threads, 5 worker threads (imbalanced), and
4 threads pinned one-per-core, showing the tail-latency blowup caused by
overcommitting cores.

Run:  python examples/memcached_qos.py
"""

from repro import RunFarmConfig, elaborate, single_rack
from repro.experiments.common import cycles_to_us, percentile
from repro.swmodel.apps.memcached import MemcachedConfig, start_memcached
from repro.swmodel.apps.mutilate import (
    RESULT_LATENCY,
    MutilateConfig,
    start_mutilate,
)

AGGREGATE_QPS = 120_000
NUM_CLIENTS = 7
MEASURE_SECONDS = 0.02


def run_config(name: str, config: MemcachedConfig) -> None:
    sim = elaborate(single_rack(8), RunFarmConfig())
    server = sim.blade(0)
    start_memcached(server, config)
    duration_cycles = int(MEASURE_SECONDS * 3.2e9)
    for client_index in range(NUM_CLIENTS):
        start_mutilate(
            sim.blade(1 + client_index),
            MutilateConfig(
                server_mac=server.mac,
                target_qps=AGGREGATE_QPS / NUM_CLIENTS,
                duration_cycles=duration_cycles,
                num_connections=16,
                server_threads=config.num_threads,
                seed=42 + client_index,
            ),
        )
    sim.run_seconds(MEASURE_SECONDS + 0.003)

    samples = []
    for client_index in range(NUM_CLIENTS):
        samples.extend(
            sim.blade(1 + client_index).results.get(RESULT_LATENCY, [])
        )
    p50 = cycles_to_us(percentile(samples, 50))
    p95 = cycles_to_us(percentile(samples, 95))
    print(
        f"{name:18s}  requests={len(samples):5d}  "
        f"p50={p50:7.1f} us  p95={p95:8.1f} us"
    )


def main() -> None:
    print(f"memcached on 4 cores at {AGGREGATE_QPS} offered QPS "
          f"({NUM_CLIENTS} mutilate clients):\n")
    run_config("4 threads", MemcachedConfig(num_threads=4))
    run_config("5 threads", MemcachedConfig(num_threads=5))
    run_config(
        "4 threads pinned", MemcachedConfig(num_threads=4, pin_threads=True)
    )
    print("\nExpected shape (paper Fig. 7): the 5-thread tail (p95) is "
          "inflated versus the pinned 4-thread\nconfiguration while medians "
          "stay close; the unpinned 4-thread tail tracks the 5-thread\ncurve "
          "(poor placement) until the scheduler spreads threads at high load.")


if __name__ == "__main__":
    main()
