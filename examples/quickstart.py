#!/usr/bin/env python3
"""Quickstart: build, deploy, and use a simulated 8-node cluster.

Mirrors the workflow of the paper's Section III-B3: describe a topology
in Python, let the manager build FPGA images and map the simulation onto
EC2 instances, then treat the simulated nodes like a real cluster — here
by running ping between two nodes and checking the measured RTT against
the configured network.

Run:  python examples/quickstart.py
"""

from statistics import mean

from repro import FireSimManager, RunFarmConfig, WorkloadSpec, single_rack
from repro.swmodel.apps.ping import RESULT_KEY, make_ping_client

LINK_LATENCY_CYCLES = 6400  # 2 us at the 3.2 GHz target clock
CLOCK_HZ = 3.2e9


def main() -> None:
    # 1. Describe the target: 8 quad-core servers behind one ToR switch.
    topology = single_rack(num_servers=8, server_type="QuadCore")
    manager = FireSimManager(
        topology,
        run_config=RunFarmConfig(link_latency_cycles=LINK_LATENCY_CYCLES),
    )

    # 2. Build FPGA images (cached by configuration fingerprint).
    builds = manager.buildafi()
    print("Built AGFIs:", {b.config_name: b.agfi for b in builds})

    # 3. Map onto EC2 and price it.
    manager.launchrunfarm()
    print(manager.cost_report())
    rate = manager.rate_estimate()
    print(f"Predicted simulation rate: {rate.rate_mhz:.1f} MHz "
          f"({rate.slowdown_vs_target(CLOCK_HZ):.0f}x slowdown)\n")

    # 4. Elaborate the cycle-exact simulation and attach a workload.
    sim = manager.infrasetup()
    target = sim.blade(1)
    workload = WorkloadSpec("quickstart-ping", duration_seconds=0.004)
    workload.add_job(
        0,
        "ping",
        lambda blade: blade.spawn(
            "ping", make_ping_client(target.mac, count=20, interval_cycles=300_000)
        ),
    )

    # 5. Run and collect results, like fetching them off a real cluster.
    result = manager.runworkload(workload)
    rtts = result.results_for(0)[RESULT_KEY]
    ideal_us = (4 * LINK_LATENCY_CYCLES + 2 * 10) / CLOCK_HZ * 1e6
    measured_us = mean(rtts) / CLOCK_HZ * 1e6
    print(f"ping x{len(rtts)}: measured RTT {measured_us:.2f} us "
          f"(ideal {ideal_us:.2f} us + Linux stack overhead "
          f"{measured_us - ideal_us:.2f} us)")

    manager.terminaterunfarm()


if __name__ == "__main__":
    main()
