#!/usr/bin/env python3
"""Cycle-exact telemetry: uartlogs, packet traces, and energy sampling.

FireSim users collect performance data that is cycle-exact; this example
shows the reproduction's observability stack on a small cluster:

* each blade boots the Linux model and produces a timestamped uartlog;
* a link tracer spliced between a node and its ToR records every packet
  with first/last-flit cycles (a cycle-stamped pcap);
* a Strober-style sampler integrates the blade's activity counters into
  an average-power estimate while an iperf stream runs.

Run:  python examples/telemetry.py
"""

from repro import Simulation, SwitchConfig, SwitchModel, mac_address
from repro.host.strober import StroberSampler
from repro.net.tracer import splice_tracer
from repro.swmodel.apps.boot import make_linux_boot
from repro.swmodel.apps.iperf import make_iperf_client, make_iperf_server
from repro.swmodel.server import ServerBlade

CLOCK_HZ = 3.2e9


def main() -> None:
    sim = Simulation()
    a = sim.add_model(ServerBlade("node0", node_index=0))
    b = sim.add_model(ServerBlade("node1", node_index=1))
    switch = sim.add_model(
        SwitchModel(
            "tor",
            SwitchConfig(num_ports=2),
            mac_table={mac_address(0): 0, mac_address(1): 1},
        )
    )
    tracer = splice_tracer(sim, a, "net", switch, "port0", 6400, "trace0")
    sim.connect(switch, "port1", b, "net", 6400)

    for blade in (a, b):
        blade.spawn("init", make_linux_boot())
    b.spawn("iperf-server", make_iperf_server())
    a.spawn("iperf-client", make_iperf_client(b.mac, total_bytes=400_000))

    sampler = StroberSampler(a, interval_cycles=2_000_000)
    for _ in range(8):
        sim.run_seconds(0.001)
        sampler.sample(sim.current_cycle)

    print("=== uartlog (node0) ===")
    for cycle, line in a.uart.log:
        print(f"[{cycle / CLOCK_HZ * 1e3:8.3f} ms] {line}")

    print("\n=== packet trace (node0 <-> ToR, first 5 each way) ===")
    for direction in ("a_to_b", "b_to_a"):
        for record in tracer.packets(direction)[:5]:
            print(
                f"  {direction}: frame {record.frame_id} "
                f"{record.size_bytes:5d} B  flits "
                f"[{record.first_flit_cycle}, {record.last_flit_cycle}]"
            )
    print(f"  ... {len(tracer.records)} packets total")

    report = sampler.report()
    print(
        f"\n=== energy (node0) ===\n"
        f"  {report.samples} samples over "
        f"{report.total_cycles / CLOCK_HZ * 1e3:.1f} ms of target time: "
        f"{report.total_energy_j * 1e3:.2f} mJ, "
        f"avg {report.average_power_w:.2f} W"
    )


if __name__ == "__main__":
    main()
