#!/usr/bin/env python
"""Benchmark the scalar round loop against the batched token engine.

Usage: python scripts/bench_core.py [--cycles N] [--repeat N]
                                    [--out BENCH_core.json] [--quick]

Runs the Figure-8 sim-rate configuration (the paper's 2 us / 6400-cycle
link latency on a two-tier 8-node cluster) through both engines of
``repro.core.simulation`` — ``scalar`` (the reference oracle) and
``batched`` (:mod:`repro.perf`) — and emits ``BENCH_core.json``.

Each engine is run ``--repeat`` times after one warm-up run and the
best (highest-MHz) repeat is reported: the first iteration of a fresh
interpreter is dominated by allocator and bytecode warm-up, and CI
compares *ratios*, so best-of-N is the stable statistic.

The benchmark doubles as an equivalence check: every repeat's full
observable fingerprint (cycle, simulation stats, switch counters,
blade results, per-link flit counts) must be bit-identical across the
two engines, or the script exits non-zero without writing output.

Absolute MHz is host-dependent; the regression gate
(``scripts/check_bench_regression.py``) compares only the
``speedup.batched_over_scalar`` ratio, which is not.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.manager.runfarm import RunFarmConfig, elaborate  # noqa: E402
from repro.manager.topology import two_tier  # noqa: E402
from repro.obs.rate import RateMonitor  # noqa: E402
from repro.swmodel.apps.ping import make_ping_client  # noqa: E402

RACKS = 4
SERVERS_PER_RACK = 2
LINK_LATENCY_CYCLES = 6400  # the 2 us network used throughout the paper


def build(engine):
    root = two_tier(num_racks=RACKS, servers_per_rack=SERVERS_PER_RACK)
    running = elaborate(
        root,
        RunFarmConfig(
            link_latency_cycles=LINK_LATENCY_CYCLES, engine=engine
        ),
    )
    blades = running.blades
    last = max(blades)
    blades[0].spawn(
        "ping",
        make_ping_client(blades[last].mac, count=4, interval_cycles=50_000),
    )
    return running


def fingerprint(running):
    """Every externally observable artifact of a run, for equality."""
    sim = running.simulation
    return {
        "cycle": sim.current_cycle,
        "stats": (
            sim.stats.rounds,
            sim.stats.cycles,
            sim.stats.tokens_moved,
            sim.stats.valid_tokens_moved,
        ),
        "switches": [
            repr(sw.stats) for _, sw in sorted(running.switches.items())
        ],
        "blades": {
            index: {key: tuple(vals) for key, vals in blade.results.items()}
            for index, blade in running.blades.items()
        },
        "links": [
            (link.flits_a_to_b, link.flits_b_to_a) for link in sim.links
        ],
    }


def run_once(engine, cycles):
    running = build(engine)
    monitor = RateMonitor().attach(running.simulation)
    running.simulation.run_until(cycles)
    report = monitor.report()
    return {
        "measured_mhz": report.rate_mhz,
        "wall_seconds": report.wall_seconds,
        "rounds": report.rounds,
        "cycles": report.cycles,
    }, fingerprint(running)


def bench_engine(engine, cycles, repeat):
    """Warm up once, then return the best of ``repeat`` timed runs.

    Every repeat's fingerprint must be identical (same engine, same
    seeds — anything else is nondeterminism worth failing on).
    """
    _, reference = run_once(engine, cycles)  # warm-up, untimed
    best = None
    for index in range(repeat):
        sample, print_ = run_once(engine, cycles)
        if print_ != reference:
            print(
                f"bench_core: FAIL: {engine} repeat {index} fingerprint "
                "differs from its own warm-up run (nondeterminism)",
                file=sys.stderr,
            )
            raise SystemExit(1)
        if best is None or sample["measured_mhz"] > best["measured_mhz"]:
            best = sample
    return best, reference


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cycles", type=int, default=2_000_000)
    parser.add_argument("--repeat", type=int, default=3,
                        help="timed repeats per engine (best is kept)")
    parser.add_argument("--out", default="BENCH_core.json")
    parser.add_argument("--quick", action="store_true",
                        help="shrink the run for CI smoke")
    args = parser.parse_args(argv)
    cycles = 400_000 if args.quick else args.cycles

    scalar, scalar_print = bench_engine("scalar", cycles, args.repeat)
    print(
        f"scalar:  {scalar['measured_mhz']:.3f} MHz "
        f"({scalar['rounds']} rounds, best of {args.repeat})"
    )
    batched, batched_print = bench_engine("batched", cycles, args.repeat)
    print(
        f"batched: {batched['measured_mhz']:.3f} MHz "
        f"({batched['rounds']} rounds, best of {args.repeat})"
    )

    if batched_print != scalar_print:
        for key in scalar_print:
            if scalar_print[key] != batched_print[key]:
                print(
                    f"bench_core: FAIL: engines diverge on {key!r}:\n"
                    f"  scalar:  {scalar_print[key]!r}\n"
                    f"  batched: {batched_print[key]!r}",
                    file=sys.stderr,
                )
        return 1

    speedup = (
        batched["measured_mhz"] / scalar["measured_mhz"]
        if scalar["measured_mhz"] > 0
        else 0.0
    )
    document = {
        "schema": "repro.bench.core/v1",
        "topology": {
            "kind": "two_tier",
            "racks": RACKS,
            "servers_per_rack": SERVERS_PER_RACK,
            "nodes": RACKS * SERVERS_PER_RACK,
        },
        "link_latency_cycles": LINK_LATENCY_CYCLES,
        "cycles": cycles,
        "repeat": args.repeat,
        "host_cpu_count": os.cpu_count(),
        "scalar": scalar,
        "batched": batched,
        "speedup": {"batched_over_scalar": speedup},
        "note": (
            "measured rates are host-dependent; the regression gate "
            "compares only speedup.batched_over_scalar, the "
            "host-independent ratio.  Both engines produced bit-identical "
            "fingerprints (cycle, stats, switch counters, blade results, "
            "link flit counts) or this file would not exist."
        ),
    }
    with open(args.out, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"speedup: {speedup:.2f}x batched over scalar -> {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
