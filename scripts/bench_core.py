#!/usr/bin/env python
"""Benchmark the scalar round loop against the batched token engine.

Usage: python scripts/bench_core.py [--cycles N] [--repeat N]
                                    [--out BENCH_core.json] [--quick]

Three sections, one document (schema ``repro.bench.core/v2``):

**Figure 8** — the paper's 2 us / 6400-cycle link latency on a
two-tier 8-node cluster, run through both engines of
``repro.core.simulation``: ``scalar`` (the reference oracle) and
``batched`` (:mod:`repro.perf`).  Yields
``speedup.batched_over_scalar``.

**Incast** — a switch-heavy microbenchmark isolating the columnar
switch step (:mod:`repro.perf.switch`): seven ports blast back-to-back
600-byte frames at the eighth (plus a sprinkling of unroutable frames
so the drop path is exercised), through a full 6400-cycle quantum per
round.  The columnar step consumes :class:`ColumnarBatch` windows (the
representation the batched engine hands it in-flight); the scalar
oracle consumes the same windows materialized as ``TokenBatch``.
Yields ``speedup.columnar_over_scalar``.

**Parity matrix** — scalar vs batched full-run fingerprints across
three topologies x two quanta (the default link quantum and a forced
160-cycle quantum), recorded as booleans under ``parity.matrix``.

Each timed section is run ``--repeat`` times after one warm-up run and
the best repeat is reported: the first iteration of a fresh interpreter
is dominated by allocator and bytecode warm-up, and CI compares
*ratios*, so best-of-N is the stable statistic.

The benchmark doubles as an equivalence check: every repeat's full
observable fingerprint (cycle, simulation stats, switch counters,
blade results, per-link flit counts — and for the incast, every output
flit, the switch counters, and the residual queue drained to empty)
must be bit-identical across the two engines, or the script exits
non-zero without writing output.

Absolute MHz is host-dependent; the regression gate
(``scripts/check_bench_regression.py``) compares only the
``speedup.*`` ratios, which are not, and additionally holds them to
absolute floors plus the parity matrix to all-true.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from time import perf_counter

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np  # noqa: E402
import numpy.ma  # noqa: E402,F401  (pre-import: keep lazy-import cost
#                                    out of the timed sections)

from repro.core.token import TokenBatch, TokenWindow  # noqa: E402
from repro.manager.runfarm import RunFarmConfig, elaborate  # noqa: E402
from repro.manager.topology import single_rack, two_tier  # noqa: E402
from repro.net.ethernet import EthernetFrame, mac_address  # noqa: E402
from repro.net.switch import SwitchConfig, SwitchModel  # noqa: E402
from repro.obs.rate import RateMonitor  # noqa: E402
from repro.perf.switch import ColumnarBatch, ColumnarSwitch  # noqa: E402
from repro.swmodel.apps.ping import make_ping_client  # noqa: E402

RACKS = 4
SERVERS_PER_RACK = 2
LINK_LATENCY_CYCLES = 6400  # the 2 us network used throughout the paper

# -- incast microbenchmark shape ----------------------------------------

INCAST_PORTS = 8
INCAST_WINDOW = 6400  # one full paper quantum per round
INCAST_ROUNDS = 6
INCAST_DRAIN_ROUNDS = 40  # empty windows appended so queues drain into
#                           the fingerprint: seven senders oversubscribe
#                           the one egress port (1 flit/cycle) ~7:1, so
#                           ~34 extra windows of backlog exist when the
#                           timed rounds end
INCAST_FRAME_BYTES = 600
INCAST_UNROUTABLE_EVERY = 16  # every 16th frame goes to an unknown MAC

# -- parity matrix shape ------------------------------------------------

PARITY_TOPOLOGIES = {
    "single_rack_4": lambda: single_rack(4),
    "two_tier_2x2": lambda: two_tier(num_racks=2, servers_per_rack=2),
    "two_tier_4x2": lambda: two_tier(num_racks=4, servers_per_rack=2),
}
PARITY_QUANTA = (None, 160)  # None = the link-derived default quantum
PARITY_LINK_LATENCY_CYCLES = 640
PARITY_CYCLES = 300_000


# -- Figure 8: full-system scalar vs batched ----------------------------


def build(engine):
    root = two_tier(num_racks=RACKS, servers_per_rack=SERVERS_PER_RACK)
    running = elaborate(
        root,
        RunFarmConfig(
            link_latency_cycles=LINK_LATENCY_CYCLES, engine=engine
        ),
    )
    blades = running.blades
    last = max(blades)
    blades[0].spawn(
        "ping",
        make_ping_client(blades[last].mac, count=4, interval_cycles=50_000),
    )
    return running


def fingerprint(running):
    """Every externally observable artifact of a run, for equality."""
    sim = running.simulation
    return {
        "cycle": sim.current_cycle,
        "stats": (
            sim.stats.rounds,
            sim.stats.cycles,
            sim.stats.tokens_moved,
            sim.stats.valid_tokens_moved,
        ),
        "switches": [
            repr(sw.stats) for _, sw in sorted(running.switches.items())
        ],
        "blades": {
            index: {key: tuple(vals) for key, vals in blade.results.items()}
            for index, blade in running.blades.items()
        },
        "links": [
            (link.flits_a_to_b, link.flits_b_to_a) for link in sim.links
        ],
    }


def run_once(engine, cycles):
    running = build(engine)
    monitor = RateMonitor().attach(running.simulation)
    running.simulation.run_until(cycles)
    report = monitor.report()
    return {
        "measured_mhz": report.rate_mhz,
        "wall_seconds": report.wall_seconds,
        "rounds": report.rounds,
        "cycles": report.cycles,
    }, fingerprint(running)


def bench_engine(engine, cycles, repeat):
    """Warm up once, then return the best of ``repeat`` timed runs.

    Every repeat's fingerprint must be identical (same engine, same
    seeds — anything else is nondeterminism worth failing on).
    """
    _, reference = run_once(engine, cycles)  # warm-up, untimed
    best = None
    for index in range(repeat):
        sample, print_ = run_once(engine, cycles)
        if print_ != reference:
            print(
                f"bench_core: FAIL: {engine} repeat {index} fingerprint "
                "differs from its own warm-up run (nondeterminism)",
                file=sys.stderr,
            )
            raise SystemExit(1)
        if best is None or sample["measured_mhz"] > best["measured_mhz"]:
            best = sample
    return best, reference


# -- incast: columnar switch step vs scalar oracle ----------------------


def incast_macs():
    return [mac_address(index) for index in range(INCAST_PORTS)]


def build_incast_switch(macs):
    config = SwitchConfig(
        num_ports=INCAST_PORTS,
        min_latency_cycles=16,
        cycles_per_flit=1,
        buffer_flits=1 << 20,
    )
    return SwitchModel(
        "sw",
        config,
        mac_table={mac: index for index, mac in enumerate(macs)},
        default_port=None,  # unroutable frames drop
    )


def build_incast_traffic():
    """Precompute every input window once, outside all timed regions.

    Returns ``(windows, columnar_inputs, batch_inputs)`` where the two
    input lists describe the *same* traffic: per round, ports 0..6 send
    back-to-back 600-byte frames to port 7's MAC with every 16th frame
    addressed to an unknown MAC (dropped — ``default_port=None``), and
    port 7 is silent.  The columnar leg gets the windows as
    :class:`ColumnarBatch` (the representation the batched engine keeps
    switch traffic in); the scalar leg gets ``.to_batch()`` of the very
    same windows.
    """
    macs = incast_macs()
    unknown = mac_address(99)
    windows = []
    columnar_inputs = []
    batch_inputs = []
    int64 = np.int64
    for round_index in range(INCAST_ROUNDS):
        start = round_index * INCAST_WINDOW
        windows.append(TokenWindow(start, start + INCAST_WINDOW))
        columnar = {}
        batches = {}
        for port in range(INCAST_PORTS):
            frames = []
            firsts = []
            if port < INCAST_PORTS - 1:
                cycle = start
                sent = 0
                while True:
                    if sent % INCAST_UNROUTABLE_EVERY == (
                        INCAST_UNROUTABLE_EVERY - 1
                    ):
                        dst = unknown
                    else:
                        dst = macs[-1]
                    frame = EthernetFrame(
                        src=macs[port], dst=dst,
                        size_bytes=INCAST_FRAME_BYTES,
                    )
                    if cycle + frame.flit_count > start + INCAST_WINDOW:
                        break
                    frames.append(frame)
                    firsts.append(cycle)
                    cycle += frame.flit_count
                    sent += 1
            count = len(frames)
            totals = np.fromiter(
                (frame.flit_count for frame in frames), int64, count=count
            )
            cb = ColumnarBatch(
                start,
                INCAST_WINDOW,
                1,  # stride: the sender paces one flit per cycle
                np.array(frames, dtype=object),
                np.array(firsts, dtype=int64),
                totals.copy(),
                np.zeros(count, dtype=int64),
                totals,
                np.fromiter(
                    (frame.src for frame in frames), int64, count=count
                ),
                np.fromiter(
                    (frame.dst for frame in frames), int64, count=count
                ),
                np.fromiter(
                    (frame.size_bytes for frame in frames),
                    int64, count=count,
                ),
            )
            columnar[f"port{port}"] = cb
            batches[f"port{port}"] = cb.to_batch()
        columnar_inputs.append(columnar)
        batch_inputs.append(batches)
    return windows, columnar_inputs, batch_inputs


def drain_incast(model, next_start):
    """Feed all-empty windows until the switch queues run dry.

    The incast oversubscribes port 7 eight-to-one, so most accepted
    flits are still queued when the timed rounds end; draining folds
    the full queue state into the fingerprint.
    """
    outputs = []
    start = next_start
    for _ in range(INCAST_DRAIN_ROUNDS):
        window = TokenWindow(start, start + INCAST_WINDOW)
        empty = {
            f"port{port}": TokenBatch(start, INCAST_WINDOW)
            for port in range(INCAST_PORTS)
        }
        outputs.append(model._tick(window, empty))
        start += INCAST_WINDOW
    if any(model._out_queues):
        print(
            "bench_core: FAIL: incast queues not drained after "
            f"{INCAST_DRAIN_ROUNDS} empty windows — raise "
            "INCAST_DRAIN_ROUNDS",
            file=sys.stderr,
        )
        raise SystemExit(1)
    return outputs


def incast_fingerprint(model, outputs):
    """Every observable artifact of an incast run, normalized.

    Output windows are flattened to ``(cycle, frame_id, last, index)``
    per flit so TokenBatch and flushed-ColumnarBatch outputs compare as
    values, not as container types.
    """
    flits = []
    for window_outputs in outputs:
        for port in range(INCAST_PORTS):
            batch = window_outputs[f"port{port}"]
            flits.append(
                [
                    (cycle, flit.data.frame_id, flit.last, flit.index)
                    for cycle, flit in sorted(batch.flits.items())
                ]
            )
    return {"flits": flits, "stats": repr(model.stats)}


def run_incast_scalar(windows, batch_inputs):
    model = build_incast_switch(incast_macs())
    outputs = []
    begin = perf_counter()
    for window, inputs in zip(windows, batch_inputs):
        outputs.append(model._tick(window, inputs))
    wall = perf_counter() - begin
    outputs.extend(drain_incast(model, windows[-1].end))
    return wall, incast_fingerprint(model, outputs)


def run_incast_columnar(windows, columnar_inputs):
    model = build_incast_switch(incast_macs())
    shadow = ColumnarSwitch(model)
    shadow.adopt()
    outputs = []
    begin = perf_counter()
    for window, inputs in zip(windows, columnar_inputs):
        outputs.append(shadow.step(window, inputs))
    wall = perf_counter() - begin
    shadow.flush()  # hand the queues back to the scalar model
    outputs.extend(drain_incast(model, windows[-1].end))
    return wall, incast_fingerprint(model, outputs)


def bench_incast(repeat):
    """Best-of-``repeat`` walls for both incast legs, plus equivalence.

    Traffic is precomputed once; each repeat rebuilds the switch so no
    state leaks between runs, and every repeat's fingerprint must match
    the leg's warm-up run (and the two legs must match each other).
    """
    windows, columnar_inputs, batch_inputs = build_incast_traffic()
    frames_per_round = sum(
        len(cb.frames) for cb in columnar_inputs[0].values()
    )

    def best_of(runner, *args):
        _, reference = runner(*args)  # warm-up, untimed
        best = None
        for index in range(repeat):
            wall, print_ = runner(*args)
            if print_ != reference:
                print(
                    f"bench_core: FAIL: incast repeat {index} fingerprint "
                    "differs from its own warm-up run (nondeterminism)",
                    file=sys.stderr,
                )
                raise SystemExit(1)
            if best is None or wall < best:
                best = wall
        return best, reference

    scalar_wall, scalar_print = best_of(
        run_incast_scalar, windows, batch_inputs
    )
    columnar_wall, columnar_print = best_of(
        run_incast_columnar, windows, columnar_inputs
    )
    if scalar_print != columnar_print:
        for key in scalar_print:
            if scalar_print[key] != columnar_print[key]:
                print(
                    f"bench_core: FAIL: incast legs diverge on {key!r}",
                    file=sys.stderr,
                )
        raise SystemExit(1)
    speedup = scalar_wall / columnar_wall if columnar_wall > 0 else 0.0
    section = {
        "ports": INCAST_PORTS,
        "window_cycles": INCAST_WINDOW,
        "rounds": INCAST_ROUNDS,
        "frames_per_round": frames_per_round,
        "frame_bytes": INCAST_FRAME_BYTES,
        "unroutable_every": INCAST_UNROUTABLE_EVERY,
        "repeat": repeat,
        "scalar": {"wall_seconds": scalar_wall},
        "columnar": {"wall_seconds": columnar_wall},
        "stats": scalar_print["stats"],
    }
    return section, speedup


# -- parity matrix: scalar vs batched across topologies x quanta --------


def run_parity_case(topo_key, quantum_override, engine):
    root = PARITY_TOPOLOGIES[topo_key]()
    running = elaborate(
        root,
        RunFarmConfig(
            link_latency_cycles=PARITY_LINK_LATENCY_CYCLES, engine=engine
        ),
    )
    if quantum_override is not None:
        running.simulation.quantum_override = quantum_override
    blades = running.blades
    last = max(blades)
    blades[0].spawn(
        "ping",
        make_ping_client(blades[last].mac, count=4, interval_cycles=50_000),
    )
    running.simulation.run_until(PARITY_CYCLES)
    return fingerprint(running)


def bench_parity():
    """Scalar vs batched fingerprint equality per (topology, quantum)."""
    matrix = {}
    ok = True
    for topo_key in sorted(PARITY_TOPOLOGIES):
        for quantum in PARITY_QUANTA:
            label = (
                f"{topo_key}@q={'default' if quantum is None else quantum}"
            )
            scalar = run_parity_case(topo_key, quantum, "scalar")
            batched = run_parity_case(topo_key, quantum, "batched")
            equal = scalar == batched
            matrix[label] = equal
            status = "ok" if equal else "DIVERGED"
            print(f"parity:  {label}: {status}")
            if not equal:
                ok = False
                for key in scalar:
                    if scalar[key] != batched[key]:
                        print(
                            f"bench_core: FAIL: {label} diverges on "
                            f"{key!r}:\n  scalar:  {scalar[key]!r}\n"
                            f"  batched: {batched[key]!r}",
                            file=sys.stderr,
                        )
    section = {
        "cycles": PARITY_CYCLES,
        "link_latency_cycles": PARITY_LINK_LATENCY_CYCLES,
        "quanta": ["default" if q is None else q for q in PARITY_QUANTA],
        "matrix": matrix,
    }
    return section, ok


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cycles", type=int, default=2_000_000)
    parser.add_argument("--repeat", type=int, default=3,
                        help="timed repeats per engine (best is kept)")
    parser.add_argument("--out", default="BENCH_core.json")
    parser.add_argument("--quick", action="store_true",
                        help="shrink the Figure-8 run for CI smoke (the "
                             "incast and parity sections are already "
                             "seconds-scale and run at full size)")
    args = parser.parse_args(argv)
    cycles = 400_000 if args.quick else args.cycles

    scalar, scalar_print = bench_engine("scalar", cycles, args.repeat)
    print(
        f"scalar:  {scalar['measured_mhz']:.3f} MHz "
        f"({scalar['rounds']} rounds, best of {args.repeat})"
    )
    batched, batched_print = bench_engine("batched", cycles, args.repeat)
    print(
        f"batched: {batched['measured_mhz']:.3f} MHz "
        f"({batched['rounds']} rounds, best of {args.repeat})"
    )

    if batched_print != scalar_print:
        for key in scalar_print:
            if scalar_print[key] != batched_print[key]:
                print(
                    f"bench_core: FAIL: engines diverge on {key!r}:\n"
                    f"  scalar:  {scalar_print[key]!r}\n"
                    f"  batched: {batched_print[key]!r}",
                    file=sys.stderr,
                )
        return 1

    batched_over_scalar = (
        batched["measured_mhz"] / scalar["measured_mhz"]
        if scalar["measured_mhz"] > 0
        else 0.0
    )
    print(f"speedup: {batched_over_scalar:.2f}x batched over scalar")

    incast, columnar_over_scalar = bench_incast(args.repeat)
    print(
        f"incast:  scalar {incast['scalar']['wall_seconds'] * 1e3:.1f} ms, "
        f"columnar {incast['columnar']['wall_seconds'] * 1e3:.1f} ms "
        f"-> {columnar_over_scalar:.1f}x columnar over scalar"
    )

    parity, parity_ok = bench_parity()
    if not parity_ok:
        return 1

    document = {
        "schema": "repro.bench.core/v2",
        "topology": {
            "kind": "two_tier",
            "racks": RACKS,
            "servers_per_rack": SERVERS_PER_RACK,
            "nodes": RACKS * SERVERS_PER_RACK,
        },
        "link_latency_cycles": LINK_LATENCY_CYCLES,
        "cycles": cycles,
        "repeat": args.repeat,
        "quick": bool(args.quick),
        "host_cpu_count": os.cpu_count(),
        "scalar": scalar,
        "batched": batched,
        "incast": incast,
        "parity": parity,
        "speedup": {
            "batched_over_scalar": batched_over_scalar,
            "columnar_over_scalar": columnar_over_scalar,
        },
        "note": (
            "measured rates are host-dependent; the regression gate "
            "compares only the speedup.* ratios, which are not, and "
            "holds them to absolute floors.  Both engines produced "
            "bit-identical fingerprints on the Figure-8 run, the incast "
            "legs matched flit-for-flit through a full drain, and every "
            "parity.matrix entry is scalar==batched across topologies "
            "and quanta — or this file would not exist."
        ),
    }
    with open(args.out, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"-> {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
