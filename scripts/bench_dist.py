#!/usr/bin/env python
"""Benchmark serial vs distributed achieved simulation rate.

Usage: python scripts/bench_dist.py [--cycles N] [--workers 2,4,8]
                                    [--trials N] [--out BENCH_dist.json]
                                    [--quick]

Runs the Figure-8 sim-rate configuration (the paper's 2 us / 6400-cycle
link latency, a two-tier 8-node cluster scaled to what one container
can elaborate) through the serial engine and through ``repro.dist`` at
each requested worker count, once per transport (``pipe`` and ``shm``),
and emits ``BENCH_dist.json`` (schema ``repro.bench.dist/v3``).

Three rate families are reported, clearly labeled:

* ``measured_mhz`` — wall-clock achieved MHz on THIS host, best of
  ``--trials`` uninstrumented runs (best-of filters scheduler noise on
  shared CI hosts).  Containers typically pin all workers to one core,
  so measured distributed rates mostly show transport overhead, not
  scaling.
* ``modeled_mhz`` — the critical-path model: each worker's measured
  per-model tick seconds plus one transport hop (WORKER_PIPE or
  SHM_RING) per boundary link per round, assuming one core per worker.
  This is the same model-what-you-cannot-measure technique
  :mod:`repro.host.perfmodel` uses for the paper's F1 fleet, and it is
  where the scaling claim lives (``speedup.modeled``).
* ``transport_overhead_per_round_s`` — measured seconds per lockstep
  round the distributed run pays beyond the serial engine's round
  (``quantum/rate_dist - quantum/rate_serial``).  Both transports tick
  identical models on the same host, so the pipe/shm overhead ratio
  (``speedup.shm_over_pipe_measured``) is a host-independent measure of
  the transport substrate itself — the number the shm tentpole is
  gated on.

Shared CI hosts drift in speed on minute timescales, so the overhead
ratio is computed from *paired* trials: each trial runs serial, pipe,
and shm back-to-back (a host slowdown hits all three legs), yielding
one ratio per trial, and the reported ratio is the median across
trials.  Headline rates are best-of across the same trials.

v3 adds the round-phase profiler's numbers:

* ``phase_breakdown`` per transport per worker count — the profiled
  run's compute/transport/wait shares of attributed round time
  (:class:`repro.obs.prof.PhaseReport`), the measured decomposition
  that explains WHERE each transport's overhead goes;
* ``profiler.overhead_ratio`` per transport — the measured
  profiled-over-unprofiled round-time ratio at the smallest worker
  count, the "overhead below 5% of round time" number CI gates under
  ``check_bench_regression.PROFILER_OVERHEAD_CEILING``.  Measured
  *within one run* by the alternate-round probe
  (``ProfileConfig(overhead_probe=True)``): every worker records
  phases on alternate rounds and times the others minimally, and the
  ratio of median recorded-round to median minimal-round duration is
  the profiler's round-time cost.  Back-to-back A/B legs cannot
  measure this on a shared host — run-to-run drift is ~+-10-20%, an
  order of magnitude above the profiler's ~2us-per-round cost, and no
  min/median over a handful of legs sheds it (a null-op recorder
  "measures" the same overhead as the real one).  Interleaving the
  two populations round-by-round inside one run cancels the drift.
  The per-trial ratios ship alongside for transparency; the gate's
  self-test proves an injected per-round sleep blows the measured
  ratio past the ceiling.

Exits non-zero if the distributed runs diverge from serial cycle
counts — the benchmark doubles as an equivalence check.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.dist import plan_partitions, run_distributed  # noqa: E402
from repro.manager.mapper import HostConfig, map_topology  # noqa: E402
from repro.manager.runfarm import RunFarmConfig, elaborate  # noqa: E402
from repro.manager.topology import two_tier  # noqa: E402
from repro.obs.prof import PhaseReport, ProfileConfig  # noqa: E402
from repro.obs.rate import RateMonitor  # noqa: E402

RACKS = 4
SERVERS_PER_RACK = 2
LINK_LATENCY_CYCLES = 6400  # the 2 us network used throughout the paper
#: One FPGA per instance: every blade is its own shard, so up to
#: 8 blades + switch hosts partition cleanly across 8 workers.
HOSTS = HostConfig(fpgas_per_instance=1)

TRANSPORTS = ("pipe", "shm")


def build(link_latency_cycles):
    root = two_tier(num_racks=RACKS, servers_per_rack=SERVERS_PER_RACK)
    running = elaborate(
        root, RunFarmConfig(link_latency_cycles=link_latency_cycles)
    )
    return running, root


def serial_trial(cycles):
    """One uninstrumented serial run: (rate_mhz, report, end_cycle)."""
    running, _ = build(LINK_LATENCY_CYCLES)
    monitor = RateMonitor().attach(running.simulation)
    running.simulation.run_until(cycles)
    report = monitor.report()
    return report.rate_mhz, report, running.simulation.current_cycle


def run_one(cycles, workers, transport, measure, profile=False):
    running, root = build(LINK_LATENCY_CYCLES)
    deployment = map_topology(root, HOSTS)
    plan = plan_partitions(running, deployment, workers)
    result = run_distributed(
        running.simulation, plan, cycles,
        measure=measure, transport=transport, profile=profile or None,
    )
    return result, running.simulation.current_cycle


def instrumented_summary(cycles, workers, transport):
    """One measure=True profiled run's profile (its wall clock pays for
    the instrumentation, so rates come from the paired trials
    instead)."""
    result, _ = run_one(cycles, workers, transport, measure=True,
                        profile=True)
    summary = result.to_dict()
    summary["modeled_mhz"] = summary.pop("modeled_rate_mhz", None)
    summary.pop("measured_rate_mhz", None)
    report = PhaseReport.from_result(result)
    reconciliation = report.reconciliation()
    summary["phase_breakdown"] = {
        key: reconciliation[key]
        for key in ("compute_share", "transport_share", "wait_share")
    }
    summary["profiler_self_overhead_ratio"] = (
        report.profiling_overhead_ratio()
    )
    return summary


def median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cycles", type=int, default=2_000_000)
    parser.add_argument("--workers", default="2,4,8",
                        help="comma-separated worker counts")
    parser.add_argument("--trials", type=int, default=7,
                        help="paired serial/pipe/shm trials per worker "
                             "count (median ratio, best-of rates)")
    parser.add_argument("--out", default="BENCH_dist.json")
    parser.add_argument("--quick", action="store_true",
                        help="shrink the run for CI smoke")
    args = parser.parse_args(argv)
    cycles = 400_000 if args.quick else args.cycles
    trials = min(args.trials, 5) if args.quick else args.trials
    worker_counts = [int(part) for part in args.workers.split(",")]
    quantum = LINK_LATENCY_CYCLES

    # One reference serial run supplies the document's serial block and
    # the end cycle every distributed run must reproduce.
    _, serial_report, serial_end = serial_trial(cycles)
    serial_best = serial_report.rate_mhz
    serial = {
        "measured_mhz": serial_best,  # updated to best-of below
        "trials": trials,
        "wall_seconds": serial_report.wall_seconds,
        "rounds": serial_report.rounds,
        "cycles": serial_report.cycles,
    }

    distributed = {transport: {} for transport in TRANSPORTS}
    speedup_modeled = {transport: {} for transport in TRANSPORTS}
    speedup_measured = {transport: {} for transport in TRANSPORTS}
    overhead = {transport: {} for transport in TRANSPORTS}
    shm_over_pipe = {}
    #: Per-trial alternate-round probe ratios at the smallest worker
    #: count; the gate value is the median across trials.
    probe_ratios = {transport: [] for transport in TRANSPORTS}
    profile_workers = min(worker_counts)
    for workers in worker_counts:
        rates = {transport: [] for transport in TRANSPORTS}
        trial_overheads = {transport: [] for transport in TRANSPORTS}
        trial_ratios = []
        for _ in range(trials):
            # Paired legs: serial, pipe, shm back-to-back, so a host
            # slowdown lands on all three and cancels in the ratio.
            serial_mhz, _, _ = serial_trial(cycles)
            serial_best = max(serial_best, serial_mhz)
            serial_round_s = quantum / (serial_mhz * 1e6)
            per_trial = {}
            for transport in TRANSPORTS:
                result, dist_end = run_one(
                    cycles, workers, transport, measure=False
                )
                if dist_end != serial_end:
                    print(
                        f"bench_dist: FAIL: {workers}-worker {transport} "
                        f"run ended at cycle {dist_end}, serial at "
                        f"{serial_end}",
                        file=sys.stderr,
                    )
                    return 1
                if result.transport != transport:
                    print(
                        f"bench_dist: FAIL: requested transport "
                        f"{transport!r} but the run used "
                        f"{result.transport!r} (shm fallback?); overhead "
                        "ratios would be vacuous",
                        file=sys.stderr,
                    )
                    return 1
                rate = result.measured_rate_mhz()
                rates[transport].append(rate)
                per_trial[transport] = (
                    quantum / (rate * 1e6) - serial_round_s
                )
                trial_overheads[transport].append(per_trial[transport])
            if per_trial["shm"] > 0:
                trial_ratios.append(per_trial["pipe"] / per_trial["shm"])
            if workers == profile_workers:
                # One alternate-round probe run per trial: recorded and
                # minimally-timed rounds interleave inside the run, so
                # their duration ratio measures the profiler's
                # round-time cost with host drift cancelled (see the
                # module docstring).  Fork and result-shipping costs
                # outside the loop (a profiled run ships its rings,
                # once per run, not per round) stay out of the
                # per-ROUND number the gate is about.
                for transport in TRANSPORTS:
                    probe_result, _ = run_one(
                        cycles, workers, transport, measure=False,
                        profile=ProfileConfig(overhead_probe=True),
                    )
                    ratio = PhaseReport.from_result(
                        probe_result
                    ).probe_overhead_ratio()
                    if ratio is not None:
                        probe_ratios[transport].append(ratio)
        for transport in TRANSPORTS:
            summary = instrumented_summary(cycles, workers, transport)
            best = max(rates[transport])
            summary["measured_mhz"] = best
            per_round = median(trial_overheads[transport])
            summary["transport_overhead_per_round_s"] = per_round
            overhead[transport][str(workers)] = per_round
            distributed[transport][str(workers)] = summary
            if summary.get("modeled_mhz"):
                speedup_modeled[transport][str(workers)] = summary[
                    "modeled_speedup"
                ]
            modeled = summary.get("modeled_mhz")
            modeled_text = f"{modeled:.3f}" if modeled else "n/a"
            print(
                f"workers={workers} transport={transport}: "
                f"{best:.3f} MHz measured (best of {trials}), "
                f"{modeled_text} MHz modeled, "
                f"{per_round * 1e6:.1f} us/round transport overhead "
                "(median)"
            )
        if trial_ratios:
            shm_over_pipe[str(workers)] = median(trial_ratios)
            print(
                f"workers={workers}: shm-over-pipe measured overhead "
                f"ratio {shm_over_pipe[str(workers)]:.2f}x "
                f"(median of {len(trial_ratios)} paired trials)"
            )
    serial["measured_mhz"] = serial_best
    for transport in TRANSPORTS:
        for workers_key, summary in distributed[transport].items():
            speedup_measured[transport][workers_key] = (
                summary["measured_mhz"] / serial_best
            )
    print(f"serial: {serial_best:.3f} MHz measured (best of all trials)")
    profiler_overhead = {
        transport: median(ratios)
        for transport, ratios in probe_ratios.items()
        if ratios
    }
    for transport, ratio in sorted(profiler_overhead.items()):
        print(
            f"profiler overhead ({transport}, {profile_workers} workers): "
            f"{ratio:.3f}x round time (alternate-round probe, median of "
            f"{len(probe_ratios[transport])} runs)"
        )

    document = {
        "schema": "repro.bench.dist/v3",
        "topology": {
            "kind": "two_tier",
            "racks": RACKS,
            "servers_per_rack": SERVERS_PER_RACK,
            "nodes": RACKS * SERVERS_PER_RACK,
        },
        "link_latency_cycles": LINK_LATENCY_CYCLES,
        "cycles": cycles,
        "trials": trials,
        "quick": bool(args.quick),
        "host_cpu_count": os.cpu_count(),
        "serial": serial,
        "distributed": distributed,
        "transport_overhead_per_round_s": overhead,
        "speedup": {
            "modeled": speedup_modeled,
            "measured": speedup_measured,
            "shm_over_pipe_measured": shm_over_pipe,
        },
        "profiler": {
            "overhead_ratio": profiler_overhead,
            "ratio_runs": probe_ratios,
            "method": "alternate-round probe",
            "workers": profile_workers,
        },
        "note": (
            "measured rates share this host's cores; modeled rates are "
            "the one-core-per-worker critical path (worker tick seconds "
            "+ transport hops), the same technique repro.host.perfmodel "
            "uses where wall-clock cannot be measured. "
            "shm_over_pipe_measured is the pipe/shm ratio of measured "
            "per-round transport overhead (quantum/rate_dist - "
            "quantum/rate_serial): both transports tick identical models "
            "on the same host, so it isolates the transport substrate."
        ),
    }
    with open(args.out, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    best = max(
        (
            ratio
            for per_transport in speedup_modeled.values()
            for ratio in per_transport.values()
        ),
        default=0.0,
    )
    print(f"best modeled speedup: {best:.2f}x -> {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
