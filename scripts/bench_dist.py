#!/usr/bin/env python
"""Benchmark serial vs distributed achieved simulation rate.

Usage: python scripts/bench_dist.py [--cycles N] [--workers 2,4,8]
                                    [--trials N] [--out BENCH_dist.json]
                                    [--phase-report PATH] [--quick]

Runs the paper's scale-out configuration — a two-tier cluster with
2 us / 6400-cycle rack-to-root trunk links and 0.5 us / 1600-cycle
server links, sized to what one container can elaborate — through the
serial engines and through ``repro.dist`` at each requested worker
count, once per transport (``pipe`` and ``shm``), and emits
``BENCH_dist.json`` (schema ``repro.bench.dist/v4``).

Every blade runs continuous, phase-staggered ping traffic (rack-local
neighbor pings plus a cross-rack trunk flow per rack) for the whole
measured window.  This is not decoration: the serial batched engine
fast-forwards provably idle spans in O(links) per *span*, so an idle
farm — what earlier versions of this bench simulated — now costs the
serial engine almost nothing and measures nothing about scaling.  A
loaded farm is also what the paper's Figure 9 reports: simulation
rate under a running workload.  The staggering (per-blade start
offsets and slightly different intervals) keeps the blades' event
queues out of phase, as real traffic would be.

The latency-heterogeneous links exercise the distributed engine's
adaptive exchange quantum (paper Fig 9: simulation rate grows with
token batch size).  Partitions are rack-aligned — each worker owns
whole racks (ToR switch + its blades), exactly how FireSim places a
rack's blades and ToR on one instance — so every cross-worker link is
a 6400-cycle trunk.  The simulation quantum is the 1600-cycle server
link, but the exchange quantum derived from the partition's boundary
latency floor is 6400 cycles: workers exchange one coalesced message
per peer every *four* rounds, which is where distributed execution
earns its win over the serial engines (the serial round loop pays its
per-round cost at every 1600-cycle quantum; a worker pays transport
only at exchange boundaries).

Two serial baselines anchor the document, measured **once** up front
and reused across every worker count (v3 re-ran the serial leg inside
every worker-count trial, which tripled CI wall time for identical
numbers):

* ``serial.scalar`` — the scalar oracle with a
  :class:`~repro.obs.rate.RateMonitor` attached: the instrumented
  reference run that supplies the end cycle every distributed run must
  reproduce, and the subtrahend for per-round transport overhead
  (unchanged from v3 so overhead ratios stay comparable).
* ``serial.batched`` — the batched numpy engine, **uninstrumented**
  (plain ``run_until`` under ``perf_counter``), best of ``--trials``
  runs.  This is the parity baseline: the distributed engine now
  defaults to the batched loop, so "dist beats serial" means beating
  the fastest serial configuration with no monitor attached — not the
  scalar oracle with a rate probe riding along.

Distributed runs use the batched engine too (the ``--workers > 1``
default).  Rate families reported per transport per worker count:

* ``measured_mhz`` — wall-clock achieved MHz on THIS host, best of
  ``--trials`` uninstrumented runs.  Only meaningful as a parity
  number when the host has at least one core per worker
  (``host_cpu_count`` is recorded so the gate can tell).
* ``measured_critical_path_mhz`` — cycles over the *maximum worker CPU
  seconds* (``time.process_time`` per worker: blocking waits burn no
  CPU).  On a core-starved container the workers time-slice one core
  and wall clock measures the slicing, not the simulator; the critical
  path is what wall clock would approach with a core per worker, and
  it is measured, not modeled.  The parity gate
  (``check_bench_regression.py --parity``) uses it whenever
  ``host_cpu_count < workers``.
* ``modeled_mhz`` — the analytic critical-path model (worker tick
  seconds + transport-spec hops per exchange), the same technique
  :mod:`repro.host.perfmodel` uses for the paper's F1 fleet.
* ``transport_overhead_per_round_s`` — measured seconds per lockstep
  round the distributed run pays beyond the batched serial round (the
  engine the workers actually run, so the delta is transport plus
  lockstep, not engine choice).  The pipe and shm legs of each trial
  run back-to-back, so their overhead ratio
  (``speedup.shm_over_pipe_measured``) cancels host drift and isolates
  the transport substrate.

``speedup.parity`` carries the gate's inputs: wall-clock and
critical-path ratios of every distributed run over the batched serial
baseline.  The adaptive exchange fields (``round_quantum``,
``rounds_per_exchange``, ``exchange_rounds``) flow through from
:meth:`~repro.dist.engine.DistributedRunResult.to_dict`.

v3's profiler numbers are retained unchanged: ``phase_breakdown`` per
transport per worker count and ``profiler.overhead_ratio`` from the
alternate-round probe (recorded and minimally-timed rounds interleave
within one run so host drift cancels).  ``--phase-report PATH``
additionally dumps the full per-worker :class:`~repro.obs.prof.PhaseReport`
of each profiled run — the artifact CI uploads when the parity gate
fails, so a regression arrives with its own phase attribution.

Exits non-zero if the distributed runs diverge from serial cycle
counts — the benchmark doubles as an equivalence check.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.dist import run_distributed  # noqa: E402
from repro.dist.partition import plan_from_assignment  # noqa: E402
from repro.manager.runfarm import RunFarmConfig, elaborate  # noqa: E402
from repro.manager.topology import two_tier  # noqa: E402
from repro.obs.prof import PhaseReport, ProfileConfig  # noqa: E402
from repro.obs.rate import RateMonitor  # noqa: E402
from repro.swmodel.apps.ping import make_ping_client  # noqa: E402

RACKS = 8
SERVERS_PER_RACK = 4
LINK_LATENCY_CYCLES = 6400  # 2 us rack-to-root trunks (the paper's links)
SERVER_LINK_LATENCY_CYCLES = 1600  # 0.5 us blade <-> ToR links

TRANSPORTS = ("pipe", "shm")


#: Enough pings to outlast any plausible ``--cycles`` (200 pings at a
#: ~20k-cycle interval spans ~4M cycles; the default run is 2M).
PING_COUNT = 200
PING_INTERVAL_CYCLES = 20_000


def attach_workload(running):
    """Continuous staggered ping traffic across the whole farm.

    Each blade pings its rack neighbor (interior server links) and the
    first blade of every rack additionally pings the next rack's first
    blade (trunk traffic that crosses workers in every partitioning).
    Start offsets and per-blade interval skews keep the farm's event
    queues out of phase so no provably-idle global round exists during
    the measured window — the serial engine must simulate every round,
    as it would under real traffic, instead of fast-forwarding an idle
    farm for free.
    """
    blades = running.blades
    for index in sorted(blades):
        rack, slot = divmod(index, SERVERS_PER_RACK)
        neighbor = rack * SERVERS_PER_RACK + (slot + 1) % SERVERS_PER_RACK
        blades[index].spawn(
            f"ping{index}",
            make_ping_client(
                blades[neighbor].mac,
                count=PING_COUNT,
                interval_cycles=PING_INTERVAL_CYCLES + 160 * index,
            ),
            start_cycle=617 * index,
        )
        if slot == 0:
            trunk_peer = ((rack + 1) % RACKS) * SERVERS_PER_RACK
            blades[index].spawn(
                f"xping{index}",
                make_ping_client(
                    blades[trunk_peer].mac,
                    count=PING_COUNT,
                    interval_cycles=23_000 + 160 * index,
                    ident=9,  # the rack-local client owns icmp/8
                ),
                start_cycle=313 * index + 101,
            )


def build(engine="scalar"):
    root = two_tier(num_racks=RACKS, servers_per_rack=SERVERS_PER_RACK)
    running = elaborate(
        root,
        RunFarmConfig(
            link_latency_cycles=LINK_LATENCY_CYCLES,
            server_link_latency_cycles=SERVER_LINK_LATENCY_CYCLES,
            engine=engine,
        ),
    )
    attach_workload(running)
    return running, root


def rack_assignment(root, workers):
    """Rack-aligned partitioning: worker ``i`` owns racks ``i mod W``.

    FireSim's deployment shape: a ToR switch and its blades share a
    host, so only the long rack-to-root trunks cross workers — which
    keeps the boundary-latency floor at the trunk latency and lets the
    adaptive quantum batch four rounds per exchange.
    """
    assignment = {f"switch{root.switch_id}": 0}
    for index, rack in enumerate(root.downlinks):
        worker = index % workers
        assignment[f"switch{rack.switch_id}"] = worker
        for server in rack.iter_servers():
            assignment[f"node{server.node_index}"] = worker
    return assignment


def serial_oracle(cycles):
    """The instrumented scalar reference run: (report, end_cycle)."""
    running, _ = build(engine="scalar")
    monitor = RateMonitor().attach(running.simulation)
    running.simulation.run_until(cycles)
    return monitor.report(), running.simulation.current_cycle


def serial_batched_trial(cycles):
    """One uninstrumented batched serial run.

    Returns ``(rate_mhz, wall_s, cpu_s, end_cycle)``.  No monitor, no
    profiler: this is the number the distributed engine has to beat,
    so nothing rides along on the run being timed.
    """
    running, _ = build(engine="batched")
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    running.simulation.run_until(cycles)
    wall_s = time.perf_counter() - wall_start
    cpu_s = time.process_time() - cpu_start
    rate_mhz = cycles / wall_s / 1e6 if wall_s > 0 else 0.0
    return rate_mhz, wall_s, cpu_s, running.simulation.current_cycle


def run_one(cycles, workers, transport, measure, profile=False):
    running, root = build(engine="batched")
    plan = plan_from_assignment(rack_assignment(root, workers), workers)
    result = run_distributed(
        running.simulation, plan, cycles,
        measure=measure, transport=transport, profile=profile or None,
    )
    return result, running.simulation.current_cycle


def instrumented_summary(cycles, workers, transport):
    """One measure=True profiled run's profile (its wall clock pays for
    the instrumentation, so rates come from the uninstrumented trials
    instead).  Returns ``(summary, phase_report)``."""
    result, _ = run_one(cycles, workers, transport, measure=True,
                        profile=True)
    summary = result.to_dict()
    summary["modeled_mhz"] = summary.pop("modeled_rate_mhz", None)
    summary.pop("measured_rate_mhz", None)
    summary.pop("measured_critical_path_mhz", None)
    report = PhaseReport.from_result(result)
    reconciliation = report.reconciliation()
    summary["phase_breakdown"] = {
        key: reconciliation[key]
        for key in ("compute_share", "transport_share", "wait_share")
    }
    summary["profiler_self_overhead_ratio"] = (
        report.profiling_overhead_ratio()
    )
    return summary, report


def median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cycles", type=int, default=2_000_000)
    parser.add_argument("--workers", default="2,4,8",
                        help="comma-separated worker counts")
    parser.add_argument("--trials", type=int, default=7,
                        help="paired pipe/shm trials per worker count "
                             "(median ratio, best-of rates)")
    parser.add_argument("--out", default="BENCH_dist.json")
    parser.add_argument("--phase-report", default=None,
                        help="also dump every profiled run's full "
                             "PhaseReport to this JSON path (the CI "
                             "failure artifact)")
    parser.add_argument("--quick", action="store_true",
                        help="shrink the run for CI smoke")
    args = parser.parse_args(argv)
    cycles = 400_000 if args.quick else args.cycles
    trials = min(args.trials, 5) if args.quick else args.trials
    worker_counts = [int(part) for part in args.workers.split(",")]
    # The simulation quantum is the smallest link latency (the server
    # links); the distributed engine's exchange quantum is the trunk
    # latency, derived per partition and recorded in each summary.
    quantum = SERVER_LINK_LATENCY_CYCLES

    # Serial baselines: measured once per (topology, quantum) and
    # reused for every worker count below.
    oracle_report, serial_end = serial_oracle(cycles)
    batched_rates, batched_walls, batched_cpus = [], [], []
    for _ in range(trials):
        rate, wall_s, cpu_s, end = serial_batched_trial(cycles)
        if end != serial_end:
            print(
                f"bench_dist: FAIL: batched serial ended at cycle {end}, "
                f"scalar oracle at {serial_end}",
                file=sys.stderr,
            )
            return 1
        batched_rates.append(rate)
        batched_walls.append(wall_s)
        batched_cpus.append(cpu_s)
    parity_mhz = max(batched_rates)
    # The per-round overhead subtrahend: the median batched serial
    # round, the same engine the workers tick.
    serial_round_s = quantum / (median(batched_rates) * 1e6)
    serial = {
        "scalar": {
            "engine": "scalar",
            "instrumented": True,
            "measured_mhz": oracle_report.rate_mhz,
            "wall_seconds": oracle_report.wall_seconds,
            "rounds": oracle_report.rounds,
            "cycles": oracle_report.cycles,
        },
        "batched": {
            "engine": "batched",
            "instrumented": False,
            "measured_mhz": parity_mhz,
            "median_mhz": median(batched_rates),
            "trials": trials,
            "wall_seconds": min(batched_walls),
            "cpu_seconds": median(batched_cpus),
        },
    }
    print(
        f"serial: {oracle_report.rate_mhz:.3f} MHz scalar (instrumented "
        f"oracle), {parity_mhz:.3f} MHz batched uninstrumented "
        f"(parity baseline, best of {trials})"
    )

    distributed = {transport: {} for transport in TRANSPORTS}
    speedup_modeled = {transport: {} for transport in TRANSPORTS}
    speedup_measured = {transport: {} for transport in TRANSPORTS}
    parity_wall = {transport: {} for transport in TRANSPORTS}
    parity_critical = {transport: {} for transport in TRANSPORTS}
    overhead = {transport: {} for transport in TRANSPORTS}
    shm_over_pipe = {}
    phase_reports = {transport: {} for transport in TRANSPORTS}
    #: Per-trial alternate-round probe ratios at the smallest worker
    #: count; the gate value is the median across trials.
    probe_ratios = {transport: [] for transport in TRANSPORTS}
    profile_workers = min(worker_counts)
    for workers in worker_counts:
        rates = {transport: [] for transport in TRANSPORTS}
        critical_rates = {transport: [] for transport in TRANSPORTS}
        trial_overheads = {transport: [] for transport in TRANSPORTS}
        trial_ratios = []
        for _ in range(trials):
            # Paired legs: pipe and shm back-to-back, so a host
            # slowdown lands on both and cancels in their ratio (the
            # serial subtrahend is a shared constant from the up-front
            # baseline, so it drops out of the pipe/shm comparison).
            per_trial = {}
            for transport in TRANSPORTS:
                result, dist_end = run_one(
                    cycles, workers, transport, measure=False
                )
                if dist_end != serial_end:
                    print(
                        f"bench_dist: FAIL: {workers}-worker {transport} "
                        f"run ended at cycle {dist_end}, serial at "
                        f"{serial_end}",
                        file=sys.stderr,
                    )
                    return 1
                if result.transport != transport:
                    print(
                        f"bench_dist: FAIL: requested transport "
                        f"{transport!r} but the run used "
                        f"{result.transport!r} (shm fallback?); overhead "
                        "ratios would be vacuous",
                        file=sys.stderr,
                    )
                    return 1
                rate = result.measured_rate_mhz()
                rates[transport].append(rate)
                critical_rates[transport].append(
                    result.measured_critical_path_mhz()
                )
                per_trial[transport] = (
                    quantum / (rate * 1e6) - serial_round_s
                )
                trial_overheads[transport].append(per_trial[transport])
            if per_trial["shm"] > 0:
                trial_ratios.append(per_trial["pipe"] / per_trial["shm"])
            if workers == profile_workers:
                # One alternate-round probe run per trial: recorded and
                # minimally-timed rounds interleave inside the run, so
                # their duration ratio measures the profiler's
                # round-time cost with host drift cancelled (see the
                # module docstring).
                for transport in TRANSPORTS:
                    probe_result, _ = run_one(
                        cycles, workers, transport, measure=False,
                        profile=ProfileConfig(overhead_probe=True),
                    )
                    ratio = PhaseReport.from_result(
                        probe_result
                    ).probe_overhead_ratio()
                    if ratio is not None:
                        probe_ratios[transport].append(ratio)
        for transport in TRANSPORTS:
            summary, report = instrumented_summary(
                cycles, workers, transport
            )
            phase_reports[transport][str(workers)] = report.to_dict()
            best = max(rates[transport])
            best_critical = max(critical_rates[transport])
            summary["measured_mhz"] = best
            summary["measured_critical_path_mhz"] = best_critical
            per_round = median(trial_overheads[transport])
            summary["transport_overhead_per_round_s"] = per_round
            overhead[transport][str(workers)] = per_round
            distributed[transport][str(workers)] = summary
            if summary.get("modeled_mhz"):
                speedup_modeled[transport][str(workers)] = summary[
                    "modeled_speedup"
                ]
            speedup_measured[transport][str(workers)] = (
                best / serial["scalar"]["measured_mhz"]
            )
            parity_wall[transport][str(workers)] = best / parity_mhz
            parity_critical[transport][str(workers)] = (
                best_critical / parity_mhz
            )
            modeled = summary.get("modeled_mhz")
            modeled_text = f"{modeled:.3f}" if modeled else "n/a"
            print(
                f"workers={workers} transport={transport}: "
                f"{best:.3f} MHz measured (best of {trials}), "
                f"{best_critical:.3f} MHz critical-path "
                f"({parity_critical[transport][str(workers)]:.2f}x "
                f"batched serial), {modeled_text} MHz modeled, "
                f"{per_round * 1e6:.1f} us/round transport overhead "
                "(median)"
            )
        if trial_ratios:
            shm_over_pipe[str(workers)] = median(trial_ratios)
            print(
                f"workers={workers}: shm-over-pipe measured overhead "
                f"ratio {shm_over_pipe[str(workers)]:.2f}x "
                f"(median of {len(trial_ratios)} paired trials)"
            )
    profiler_overhead = {
        transport: median(ratios)
        for transport, ratios in probe_ratios.items()
        if ratios
    }
    for transport, ratio in sorted(profiler_overhead.items()):
        print(
            f"profiler overhead ({transport}, {profile_workers} workers): "
            f"{ratio:.3f}x round time (alternate-round probe, median of "
            f"{len(probe_ratios[transport])} runs)"
        )

    document = {
        "schema": "repro.bench.dist/v4",
        "topology": {
            "kind": "two_tier",
            "racks": RACKS,
            "servers_per_rack": SERVERS_PER_RACK,
            "nodes": RACKS * SERVERS_PER_RACK,
            "partitioning": "rack-aligned",
        },
        "link_latency_cycles": LINK_LATENCY_CYCLES,
        "server_link_latency_cycles": SERVER_LINK_LATENCY_CYCLES,
        "cycles": cycles,
        "trials": trials,
        "quick": bool(args.quick),
        "host_cpu_count": os.cpu_count(),
        "serial": serial,
        "distributed": distributed,
        "transport_overhead_per_round_s": overhead,
        "speedup": {
            "modeled": speedup_modeled,
            "measured": speedup_measured,
            "shm_over_pipe_measured": shm_over_pipe,
            "parity": {
                "baseline": "serial batched, uninstrumented, best of "
                            f"{trials}",
                "serial_measured_mhz": parity_mhz,
                "wall": parity_wall,
                "critical_path": parity_critical,
            },
        },
        "profiler": {
            "overhead_ratio": profiler_overhead,
            "ratio_runs": probe_ratios,
            "method": "alternate-round probe",
            "workers": profile_workers,
        },
        "note": (
            "measured rates share this host's cores; "
            "measured_critical_path_mhz divides cycles by the maximum "
            "worker CPU seconds (process_time: blocking waits burn no "
            "CPU), so it is the measured one-core-per-worker rate a "
            "core-starved container cannot show on the wall clock. "
            "speedup.parity compares both against the uninstrumented "
            "batched serial engine — the bar the distributed engine "
            "must clear. shm_over_pipe_measured is the pipe/shm ratio "
            "of measured per-round transport overhead (quantum/"
            "rate_dist - quantum/rate_serial_batched): both transports "
            "tick identical models on the same host, so it isolates "
            "the transport substrate."
        ),
    }
    with open(args.out, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    if args.phase_report:
        with open(args.phase_report, "w") as fh:
            json.dump(
                {
                    "schema": "repro.bench.dist.phases/v1",
                    "cycles": cycles,
                    "quick": bool(args.quick),
                    "reports": phase_reports,
                },
                fh, indent=2, sort_keys=True,
            )
            fh.write("\n")
        print(f"phase reports -> {args.phase_report}")
    best = max(
        (
            ratio
            for per_transport in speedup_modeled.values()
            for ratio in per_transport.values()
        ),
        default=0.0,
    )
    print(f"best modeled speedup: {best:.2f}x -> {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
