#!/usr/bin/env python
"""Benchmark serial vs distributed achieved simulation rate.

Usage: python scripts/bench_dist.py [--cycles N] [--workers 2,4,8]
                                    [--out BENCH_dist.json] [--quick]

Runs the Figure-8 sim-rate configuration (the paper's 2 us / 6400-cycle
link latency, a two-tier 8-node cluster scaled to what one container
can elaborate) through the serial engine and through ``repro.dist`` at
each requested worker count, and emits ``BENCH_dist.json``.

Two rate families are reported, clearly labeled:

* ``measured_mhz`` — wall-clock achieved MHz on THIS host.  CI
  containers typically pin all workers to one core, so measured
  distributed rates mostly show transport overhead, not scaling.
* ``modeled_mhz`` — the critical-path model: each worker's measured
  per-model tick seconds plus one WORKER_PIPE hop per boundary link per
  round, assuming one core per worker.  This is the same
  model-what-you-cannot-measure technique :mod:`repro.host.perfmodel`
  uses for the paper's F1 fleet, and it is where the speedup claim
  lives (``speedup.modeled``).

Exits non-zero if the distributed runs diverge from serial cycle
counts — the benchmark doubles as an equivalence check.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.dist import plan_partitions, run_distributed  # noqa: E402
from repro.manager.mapper import HostConfig, map_topology  # noqa: E402
from repro.manager.runfarm import RunFarmConfig, elaborate  # noqa: E402
from repro.manager.topology import two_tier  # noqa: E402
from repro.obs.rate import RateMonitor  # noqa: E402

RACKS = 4
SERVERS_PER_RACK = 2
LINK_LATENCY_CYCLES = 6400  # the 2 us network used throughout the paper
#: One FPGA per instance: every blade is its own shard, so up to
#: 8 blades + switch hosts partition cleanly across 8 workers.
HOSTS = HostConfig(fpgas_per_instance=1)


def build(link_latency_cycles):
    root = two_tier(num_racks=RACKS, servers_per_rack=SERVERS_PER_RACK)
    running = elaborate(
        root, RunFarmConfig(link_latency_cycles=link_latency_cycles)
    )
    return running, root


def bench_serial(cycles):
    running, _ = build(LINK_LATENCY_CYCLES)
    monitor = RateMonitor().attach(running.simulation)
    running.simulation.run_until(cycles)
    report = monitor.report()
    return {
        "measured_mhz": report.rate_mhz,
        "wall_seconds": report.wall_seconds,
        "rounds": report.rounds,
        "cycles": report.cycles,
    }, running.simulation.current_cycle


def bench_distributed(cycles, workers):
    running, root = build(LINK_LATENCY_CYCLES)
    deployment = map_topology(root, HOSTS)
    plan = plan_partitions(running, deployment, workers)
    result = run_distributed(running.simulation, plan, cycles, measure=True)
    summary = result.to_dict()
    summary["measured_mhz"] = summary.pop("measured_rate_mhz")
    summary["modeled_mhz"] = summary.pop("modeled_rate_mhz", None)
    return summary, running.simulation.current_cycle


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cycles", type=int, default=2_000_000)
    parser.add_argument("--workers", default="2,4,8",
                        help="comma-separated worker counts")
    parser.add_argument("--out", default="BENCH_dist.json")
    parser.add_argument("--quick", action="store_true",
                        help="shrink the run for CI smoke")
    args = parser.parse_args(argv)
    cycles = 400_000 if args.quick else args.cycles
    worker_counts = [int(part) for part in args.workers.split(",")]

    serial, serial_end = bench_serial(cycles)
    print(
        f"serial: {serial['measured_mhz']:.3f} MHz measured "
        f"({serial['rounds']} rounds)"
    )

    distributed = {}
    speedup_modeled = {}
    speedup_measured = {}
    for workers in worker_counts:
        summary, dist_end = bench_distributed(cycles, workers)
        if dist_end != serial_end:
            print(
                f"bench_dist: FAIL: {workers}-worker run ended at cycle "
                f"{dist_end}, serial at {serial_end}",
                file=sys.stderr,
            )
            return 1
        distributed[str(workers)] = summary
        if summary.get("modeled_mhz") and summary.get("modeled_serial_rate_mhz"):
            speedup_modeled[str(workers)] = summary["modeled_speedup"]
        if serial["measured_mhz"] > 0:
            speedup_measured[str(workers)] = (
                summary["measured_mhz"] / serial["measured_mhz"]
            )
        modeled = summary.get("modeled_mhz")
        modeled_text = f"{modeled:.3f}" if modeled else "n/a"
        print(
            f"workers={workers}: {summary['measured_mhz']:.3f} MHz measured, "
            f"{modeled_text} MHz modeled "
            f"({summary['boundary_links']} boundary links)"
        )

    document = {
        "schema": "repro.bench.dist/v1",
        "topology": {
            "kind": "two_tier",
            "racks": RACKS,
            "servers_per_rack": SERVERS_PER_RACK,
            "nodes": RACKS * SERVERS_PER_RACK,
        },
        "link_latency_cycles": LINK_LATENCY_CYCLES,
        "cycles": cycles,
        "host_cpu_count": os.cpu_count(),
        "serial": serial,
        "distributed": distributed,
        "speedup": {
            "modeled": speedup_modeled,
            "measured": speedup_measured,
        },
        "note": (
            "measured rates share this host's cores; modeled rates are "
            "the one-core-per-worker critical path (worker tick seconds "
            "+ WORKER_PIPE hops), the same technique repro.host.perfmodel "
            "uses where wall-clock cannot be measured"
        ),
    }
    with open(args.out, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    best = max(speedup_modeled.values()) if speedup_modeled else 0.0
    print(f"best modeled speedup: {best:.2f}x -> {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
