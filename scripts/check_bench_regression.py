#!/usr/bin/env python
"""Gate CI on benchmark speedup ratios staying within tolerance.

Usage: python scripts/check_bench_regression.py BASELINE CURRENT
                                                [--tolerance 0.20]
       python scripts/check_bench_regression.py --self-test BASELINE
       python scripts/check_bench_regression.py --parity CURRENT

Compares a freshly measured benchmark document (``CURRENT``, written by
``bench_core.py`` or ``bench_dist.py``) against the committed baseline
of the same schema, and exits non-zero if any speedup ratio regressed
below ``baseline * (1 - tolerance)``.

Only *host-independent ratios* are compared — never absolute MHz, which
varies with the CI machine:

* ``repro.bench.core/v1`` — ``speedup.batched_over_scalar`` (batched
  engine over the scalar oracle on the same host);
* ``repro.bench.core/v2`` — ``speedup.batched_over_scalar`` plus
  ``speedup.columnar_over_scalar`` (the columnar switch step over the
  scalar switch oracle on the incast microbenchmark), both under the
  usual relative band *and* under absolute floors
  (``BATCHED_OVER_SCALAR_FLOOR``, relaxed on ``--quick`` runs whose
  short Figure-8 window leaves less idle time to fast-forward, and
  ``COLUMNAR_OVER_SCALAR_FLOOR``, never relaxed — the incast section
  runs at full size even in quick mode).  The document's
  ``parity.matrix`` (scalar-vs-batched fingerprint equality across
  topologies x quanta) must also be present and all-true: a baseline
  refresh can never ratify an engine that diverged from the oracle.
* ``repro.bench.dist/v1`` — ``speedup.modeled`` per worker count (the
  one-core-per-worker critical-path model).  Worker counts present in
  only one document are ignored; measured dist speedups are skipped
  entirely because a shared-core container measures transport overhead,
  not scaling.
* ``repro.bench.dist/v2`` — ``speedup.modeled`` per transport per
  worker count under the usual relative tolerance, plus
  ``speedup.shm_over_pipe_measured`` (the pipe/shm ratio of measured
  per-round transport overhead — both transports tick identical models
  on the same host, so the ratio isolates the transport substrate).
  The measured ratio's magnitude still shifts with host load and run
  length, so it is exempt from the baseline-relative band and gated on
  an *absolute* floor instead (``SHM_OVER_PIPE_FLOOR``, applied at
  2 workers): the shm transport must stay at least that much cheaper
  per round than pipes regardless of what the baseline recorded.
* ``repro.bench.dist/v3`` — everything in v2, plus the round-phase
  profiler's measured overhead (``profiler.overhead_ratio`` per
  transport: profiled-over-unprofiled round time from the
  alternate-round probe, where recorded and minimally-timed rounds
  interleave within one run so host drift cancels).  Like the shm
  floor it is an *absolute* gate, not baseline-relative: the ratio
  must stay below ``PROFILER_OVERHEAD_CEILING`` so the profiler's own
  per-round cost stays bounded.  Quick runs get a relaxed
  ceiling: at a few hundred rounds the probe's two populations are
  small enough that the median ratio wobbles by ~10%, an order of
  magnitude above the profiler's real cost; the strict ceiling is
  enforced by full-length runs.
* ``repro.bench.dist/v4`` — everything in v3 (with the shm-over-pipe
  floor moving from 2 workers to the document's *highest* measured
  worker count, where multi-peer pressure makes the substrate matter),
  plus the **parity gate**:
  the distributed engine must beat the *uninstrumented batched serial
  engine* on the same topology, shm transport, at every measured
  worker count >= ``PARITY_MIN_WORKERS``.  The gate is host-core-aware
  because the claim is physical: on a container that pins every worker
  to one core, wall clock measures time-slicing, not the simulator, so

  - the **critical-path ratio** (``speedup.parity.critical_path``:
    cycles over the maximum worker CPU seconds, against the serial
    baseline) is gated everywhere — it is measured with
    ``process_time`` (blocking waits burn no CPU) and is what wall
    clock converges to given a core per worker; strict floor 1.0 on
    full-scale runs ("distributed beats serial"), relaxed on --quick
    runs whose handful of exchanges amortize fork cost poorly;
  - the **wall-clock ratio** (``speedup.parity.wall``) is additionally
    gated on full-scale runs when ``host_cpu_count`` >= workers + 2
    (a core per worker plus headroom for the parent and supervisor) —
    hosts that cannot physically show the win are not held to it.

Ratios *above* ``baseline * (1 + tolerance)`` print a warning asking
for a baseline refresh but do not fail the build.

``--parity`` runs ONLY the parity gate against a single freshly
measured document (no baseline needed — the bar is serial, not
history); CI's dist-parity job uses it on every push.

``--self-test`` proves the gate actually gates: it loads BASELINE,
synthesizes a degraded copy just below the tolerance band plus a
within-band copy, and exits non-zero unless the first is flagged and
the second passes — including, for v4, a copy whose parity ratios sink
below the floors.  CI runs this so a silently-vacuous checker cannot
go green.  Stdlib only.
"""

from __future__ import annotations

import argparse
import copy
import json
import sys

DEFAULT_TOLERANCE = 0.20

KNOWN_SCHEMAS = (
    "repro.bench.core/v1",
    "repro.bench.core/v2",
    "repro.bench.dist/v1",
    "repro.bench.dist/v2",
    "repro.bench.dist/v3",
    "repro.bench.dist/v4",
)

#: Absolute floors on the core benchmark's ratios (core/v2): the
#: batched engine must beat the scalar oracle on the Figure-8 run by at
#: least this factor, or idle fast-forward / token batching has
#: regressed to the point the tentpole claim no longer holds.
BATCHED_OVER_SCALAR_FLOOR = 5.0
#: The floor applied to ``--quick`` core runs: a 400k-cycle Figure-8
#: window is mostly *traffic* (the pings finish around 160k cycles), so
#: there is far less quiet tail for the batched engine to fast-forward
#: through; quick mode only asserts batching still wins clearly, and
#: the strict floor is enforced by the full-length run.
BATCHED_OVER_SCALAR_QUICK_FLOOR = 2.0
#: The columnar switch step must beat the scalar switch oracle on the
#: switch-heavy incast microbenchmark by at least this factor.  Never
#: relaxed: the incast section runs at full size even under --quick.
COLUMNAR_OVER_SCALAR_FLOOR = 8.0

#: Absolute floor on the measured 2-worker shm-over-pipe transport
#: overhead ratio: the shared-memory ring must move a round's tokens at
#: least this much cheaper than the mp.Queue pipe, or the zero-copy
#: transport has regressed to the point of pointlessness.
SHM_OVER_PIPE_FLOOR = 1.5
#: The floor applied to ``--quick`` runs (CI smoke).  At 400k cycles the
#: per-round transport delta is tens of microseconds, so even with the
#: median-of-paired-trials estimator a loaded shared CI runner can land
#: a legitimate shm win well under the full-run margin; quick mode only
#: asserts shm still *beats* pipes with headroom, and the strict 1.5x
#: floor is enforced by the weekly full-length benchmark run.
SHM_OVER_PIPE_QUICK_FLOOR = 1.1
#: v2/v3 documents measured the ratio against the scalar serial round
#: and gate it at 2 workers.  v4 documents gate it at the *highest*
#: measured worker count instead: the eager flush overlaps the pipe
#: feeder thread's pickling with compute, so at 2 workers the pipe
#: transport legitimately closes much of the gap, while under real
#: multi-peer pressure (where the substrate matters) shm's margin
#: grows with worker count.
SHM_OVER_PIPE_V2_KEY = "2"

#: Absolute ceiling on the profiled-over-unprofiled round-time ratio.
#: The recorder's cost is a fixed handful of microseconds per round;
#: the v4 bench runs 1600-cycle rounds (a quarter of the old 6400),
#: so that fixed cost is mechanically a larger *share* of a much
#: shorter round (~7-11% measured).  The ceiling holds the profiler to
#: that absolute per-round cost: a profiler that actually got slow
#: (the self-test injects a per-round sleep) blows well past it.
PROFILER_OVERHEAD_CEILING = 1.2
#: The ceiling applied to ``--quick`` runs: a few-hundred-round probe
#: has median noise of the same order as the strict margin, so quick
#: mode only asserts the profiler is not grossly slow; the strict
#: ceiling is enforced on full-length runs.
PROFILER_OVERHEAD_QUICK_CEILING = 1.35
PROFILER_METRIC_PREFIX = "profiler.overhead_ratio"

#: The parity gate (v4): distributed-over-serial ratios below these
#: floors mean the distributed engine stopped beating the batched
#: serial engine.  Applied to the shm transport (the co-located
#: fast path the tentpole claims) at every measured worker count
#: >= PARITY_MIN_WORKERS.
PARITY_MIN_WORKERS = 4
PARITY_TRANSPORT = "shm"
PARITY_CRITICAL_PATH_FLOOR = 1.0
#: Quick runs fork the same workers for a handful of exchanges, so
#: fixed per-run cost is poorly amortized; quick mode asserts the
#: critical path stays within striking distance of serial and leaves
#: the strict "beats serial" floor to full-scale runs.
PARITY_CRITICAL_PATH_QUICK_FLOOR = 0.85
PARITY_WALL_FLOOR = 1.0
#: Cores beyond one-per-worker required before the wall-clock ratio is
#: gated: the parent process and supervisor need somewhere to run.
PARITY_WALL_CPU_HEADROOM = 2


def fail(message):
    print(f"check_bench_regression: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def load(path):
    try:
        with open(path) as fh:
            document = json.load(fh)
    except (OSError, ValueError) as exc:
        fail(f"cannot read {path}: {exc}")
    if document.get("schema") not in KNOWN_SCHEMAS:
        fail(
            f"{path}: unknown schema {document.get('schema')!r}; "
            f"expected one of {KNOWN_SCHEMAS}"
        )
    return document


def extract_ratios(document):
    """Host-independent speedup ratios keyed by a stable metric name."""
    schema = document["schema"]
    speedup = document.get("speedup", {})
    if schema == "repro.bench.core/v1":
        ratio = speedup.get("batched_over_scalar")
        if not isinstance(ratio, (int, float)):
            return {}
        return {"speedup.batched_over_scalar": float(ratio)}
    if schema == "repro.bench.core/v2":
        return {
            f"speedup.{key}": float(speedup[key])
            for key in ("batched_over_scalar", "columnar_over_scalar")
            if isinstance(speedup.get(key), (int, float))
        }
    if schema == "repro.bench.dist/v1":
        # One modeled ratio per worker count.
        return {
            f"speedup.modeled[{workers}]": float(ratio)
            for workers, ratio in sorted(speedup.get("modeled", {}).items())
            if isinstance(ratio, (int, float))
        }
    # repro.bench.dist/v2+: modeled ratios nest per transport, and the
    # measured shm-over-pipe overhead ratio is comparable because both
    # sides of it ran on the same host.
    ratios = {}
    for transport, per_workers in sorted(speedup.get("modeled", {}).items()):
        for workers, ratio in sorted(per_workers.items()):
            if isinstance(ratio, (int, float)):
                ratios[f"speedup.modeled[{transport}][{workers}]"] = float(
                    ratio
                )
    for workers, ratio in sorted(
        speedup.get("shm_over_pipe_measured", {}).items()
    ):
        if isinstance(ratio, (int, float)):
            ratios[f"speedup.shm_over_pipe_measured[{workers}]"] = float(
                ratio
            )
    # v3: profiled-over-unprofiled round time per transport, also a
    # same-host pair so it travels between machines.
    profiler = document.get("profiler", {}).get("overhead_ratio", {})
    for transport, ratio in sorted(profiler.items()):
        if isinstance(ratio, (int, float)):
            ratios[f"{PROFILER_METRIC_PREFIX}[{transport}]"] = float(ratio)
    return ratios


def shm_floor_for(current, quick_flag):
    """The absolute shm-over-pipe floor that applies to ``current``.

    Quick-scale measurements (CI smoke) get the relaxed floor; the
    strict one applies to full-length runs.  Quickness is taken from
    the document itself (``bench_dist.py --quick`` records
    ``"quick": true``) or forced by the checker's own ``--quick`` flag,
    so a CI pipeline cannot accidentally hold a 400k-cycle run to the
    full-run margin.
    """
    if quick_flag or current.get("quick"):
        return SHM_OVER_PIPE_QUICK_FLOOR
    return SHM_OVER_PIPE_FLOOR


def shm_gate_key(document):
    """The worker-count key whose shm-over-pipe ratio is floor-gated.

    v2/v3 documents measured (and were gated) at 2 workers; v4 gates at
    the highest worker count the document measured, where multi-peer
    pressure makes the transport substrate matter most.
    """
    if document.get("schema") != "repro.bench.dist/v4":
        return SHM_OVER_PIPE_V2_KEY
    ratios = document.get("speedup", {}).get("shm_over_pipe_measured", {})
    keys = [k for k, v in ratios.items() if isinstance(v, (int, float))]
    if not keys:
        return SHM_OVER_PIPE_V2_KEY
    return max(keys, key=int)


def profiler_ceiling_for(current, quick_flag):
    """The absolute profiler-overhead ceiling that applies to ``current``."""
    if quick_flag or current.get("quick"):
        return PROFILER_OVERHEAD_QUICK_CEILING
    return PROFILER_OVERHEAD_CEILING


def check_core(document, quick=False):
    """Absolute gates for a core/v2 document.

    Returns a list of failure messages (empty when the document passes
    or predates the v2 fields).  Two parts: the speedup floors (the
    columnar floor never relaxes; the batched floor relaxes on quick
    runs, whose short Figure-8 window has little idle tail to
    fast-forward) and the parity matrix, which must exist and be
    all-true — fingerprint equality with the scalar oracle is the
    correctness claim the speedups ride on.
    """
    if document.get("schema") != "repro.bench.core/v2":
        return []
    quick = bool(quick or document.get("quick"))
    ratios = extract_ratios(document)
    batched_floor = (
        BATCHED_OVER_SCALAR_QUICK_FLOOR if quick
        else BATCHED_OVER_SCALAR_FLOOR
    )
    floors = {
        "speedup.batched_over_scalar": (
            batched_floor, "quick " if quick else ""
        ),
        "speedup.columnar_over_scalar": (COLUMNAR_OVER_SCALAR_FLOOR, ""),
    }
    failures = []
    for metric, (floor, label) in sorted(floors.items()):
        ratio = ratios.get(metric)
        if ratio is None:
            failures.append(
                f"{metric}: missing from a core/v2 document"
            )
        elif ratio < floor:
            failures.append(
                f"{metric}: {ratio:.3f} is below the absolute "
                f"{label}floor {floor} — the engine no longer beats "
                "its scalar oracle by the required margin"
            )
        else:
            print(
                f"check_bench_regression: OK: {metric}: {ratio:.3f} "
                f"clears the absolute {label}floor {floor}"
            )
    matrix = document.get("parity", {}).get("matrix", {})
    if not matrix:
        failures.append(
            "parity.matrix is missing or empty — the scalar-vs-batched "
            "equivalence matrix has nothing to gate; regenerate "
            "BENCH_core.json with bench_core.py"
        )
    else:
        diverged = sorted(
            label for label, equal in matrix.items() if equal is not True
        )
        if diverged:
            failures.append(
                f"parity.matrix: {diverged} diverged — the batched "
                "engine no longer matches the scalar oracle "
                "bit-for-bit on those configurations"
            )
        else:
            print(
                f"check_bench_regression: OK: parity.matrix: all "
                f"{len(matrix)} scalar-vs-batched configurations match"
            )
    return failures


def check_parity(document, quick=False):
    """Absolute dist-beats-serial gate for a v4 document.

    Returns a list of failure messages (empty when the document passes
    or predates the parity fields).  Host-core-aware: the critical-path
    ratio is gated on every host, the wall-clock ratio only where the
    host has a core per worker plus headroom (and never on quick runs,
    whose wall clock is fork-dominated).
    """
    if document.get("schema") != "repro.bench.dist/v4":
        return []
    quick = bool(quick or document.get("quick"))
    parity = document.get("speedup", {}).get("parity", {})
    critical = parity.get("critical_path", {}).get(PARITY_TRANSPORT, {})
    wall = parity.get("wall", {}).get(PARITY_TRANSPORT, {})
    host_cpus = document.get("host_cpu_count") or 0
    failures = []
    gated = {
        workers: ratio
        for workers, ratio in critical.items()
        if isinstance(ratio, (int, float))
        and int(workers) >= PARITY_MIN_WORKERS
    }
    if not gated:
        return [
            f"no {PARITY_TRANSPORT} critical-path parity ratios at "
            f">= {PARITY_MIN_WORKERS} workers — the parity gate has "
            "nothing to gate"
        ]
    floor = (
        PARITY_CRITICAL_PATH_QUICK_FLOOR if quick
        else PARITY_CRITICAL_PATH_FLOOR
    )
    label = "quick " if quick else ""
    for workers, ratio in sorted(gated.items(), key=lambda kv: int(kv[0])):
        metric = (
            f"speedup.parity.critical_path[{PARITY_TRANSPORT}][{workers}]"
        )
        if ratio < floor:
            failures.append(
                f"{metric}: {ratio:.3f} is below the absolute "
                f"{label}floor {floor} — the distributed engine no "
                "longer beats the batched serial engine on the "
                "measured critical path"
            )
        else:
            print(
                f"check_bench_regression: OK: {metric}: {ratio:.3f} "
                f"clears the absolute {label}floor {floor}"
            )
    for workers, ratio in sorted(wall.items(), key=lambda kv: int(kv[0])):
        if not isinstance(ratio, (int, float)):
            continue
        if int(workers) < PARITY_MIN_WORKERS:
            continue
        metric = f"speedup.parity.wall[{PARITY_TRANSPORT}][{workers}]"
        needed = int(workers) + PARITY_WALL_CPU_HEADROOM
        if quick or host_cpus < needed:
            why = (
                "quick run" if quick
                else f"host has {host_cpus} cores, wall parity "
                     f"needs {needed}"
            )
            print(
                f"check_bench_regression: info: {metric}: {ratio:.3f} "
                f"not gated ({why})"
            )
            continue
        if ratio < PARITY_WALL_FLOOR:
            failures.append(
                f"{metric}: {ratio:.3f} is below the absolute floor "
                f"{PARITY_WALL_FLOOR} on a host with {host_cpus} cores "
                "— the distributed engine no longer beats the batched "
                "serial engine on the wall clock"
            )
        else:
            print(
                f"check_bench_regression: OK: {metric}: {ratio:.3f} "
                f"clears the absolute floor {PARITY_WALL_FLOOR} "
                f"({host_cpus}-core host)"
            )
    return failures


def compare(baseline, current, tolerance, quick=False):
    """Return (failures, warnings) message lists for a document pair."""
    if baseline["schema"] != current["schema"]:
        return (
            [
                f"schema mismatch: baseline {baseline['schema']!r} vs "
                f"current {current['schema']!r}"
            ],
            [],
        )
    base_ratios = extract_ratios(baseline)
    cur_ratios = extract_ratios(current)
    if not base_ratios:
        return (["baseline contains no comparable speedup ratios"], [])
    shared = sorted(set(base_ratios) & set(cur_ratios))
    if not shared:
        return (
            [
                "no shared metrics: baseline has "
                f"{sorted(base_ratios)}, current has {sorted(cur_ratios)}"
            ],
            [],
        )
    failures, warnings = [], []
    for metric in shared:
        if metric.startswith("speedup.shm_over_pipe_measured") or \
                metric.startswith(PROFILER_METRIC_PREFIX) or \
                metric == "speedup.columnar_over_scalar":
            # Measured transport/profiler ratios shift with host load
            # and run length (CI's --quick runs are shorter than the
            # committed baseline), so they skip the baseline-relative
            # band; the absolute floor/ceiling below are their gates.
            # The columnar incast ratio is the same kind of animal: a
            # milliseconds-scale wall-clock pair whose magnitude swings
            # ~40% with host load, gated on its absolute floor instead.
            continue
        base, cur = base_ratios[metric], cur_ratios[metric]
        floor = base * (1.0 - tolerance)
        ceiling = base * (1.0 + tolerance)
        if cur < floor:
            failures.append(
                f"{metric}: {cur:.3f} is below {floor:.3f} "
                f"(baseline {base:.3f} - {tolerance:.0%})"
            )
        elif cur > ceiling:
            warnings.append(
                f"{metric}: {cur:.3f} beats baseline {base:.3f} by more "
                f"than {tolerance:.0%} — consider refreshing the baseline"
            )
        else:
            print(
                f"check_bench_regression: OK: {metric}: {cur:.3f} within "
                f"{tolerance:.0%} of baseline {base:.3f}"
            )
    # The gated shm-over-pipe overhead ratio (2 workers for v2/v3, the
    # highest measured worker count for v4) also has an absolute floor:
    # a baseline refresh must never quietly ratify a shm transport that
    # stopped beating pipes.
    shm_metric = (
        f"speedup.shm_over_pipe_measured[{shm_gate_key(current)}]"
    )
    shm_ratio = cur_ratios.get(shm_metric)
    if shm_ratio is not None:
        floor = shm_floor_for(current, quick)
        label = "quick " if floor == SHM_OVER_PIPE_QUICK_FLOOR else ""
        if shm_ratio < floor:
            failures.append(
                f"{shm_metric}: {shm_ratio:.3f} is below the "
                f"absolute {label}floor {floor} — the shm "
                "transport no longer beats pipes by the required margin"
            )
        else:
            print(
                f"check_bench_regression: OK: {shm_metric}: "
                f"{shm_ratio:.3f} clears the absolute {label}floor "
                f"{floor}"
            )
    # Every profiler overhead ratio has an absolute ceiling: the
    # recorder's per-round cost is bounded, and a baseline refresh
    # cannot ratify a heavier profiler.  Quick runs get the relaxed
    # ceiling (probe medians over a few hundred rounds are noisy);
    # full runs get the strict one.
    ceiling = profiler_ceiling_for(current, quick)
    ceiling_label = (
        "quick " if ceiling == PROFILER_OVERHEAD_QUICK_CEILING else ""
    )
    for metric in sorted(cur_ratios):
        if not metric.startswith(PROFILER_METRIC_PREFIX):
            continue
        ratio = cur_ratios[metric]
        if ratio > ceiling:
            failures.append(
                f"{metric}: {ratio:.3f} exceeds the absolute "
                f"{ceiling_label}ceiling {ceiling} — the profiler "
                "costs too much round time"
            )
        else:
            print(
                f"check_bench_regression: OK: {metric}: {ratio:.3f} "
                f"under the absolute {ceiling_label}ceiling {ceiling}"
            )
    # v4: the parity gate — the distributed engine must keep beating
    # the batched serial engine (absolute, like the floors above: a
    # baseline refresh cannot ratify losing to serial).
    failures.extend(check_parity(current, quick))
    # core/v2: the speedup floors and the scalar-vs-batched parity
    # matrix (absolute for the same reason).
    failures.extend(check_core(current, quick))
    return failures, warnings


def scale_ratios(document, factor):
    """A copy of ``document`` with every comparable ratio scaled."""
    scaled = copy.deepcopy(document)
    speedup = scaled.setdefault("speedup", {})
    if scaled["schema"] in ("repro.bench.core/v1", "repro.bench.core/v2"):
        for key in ("batched_over_scalar", "columnar_over_scalar"):
            if key in speedup:
                speedup[key] = speedup[key] * factor
    elif scaled["schema"] == "repro.bench.dist/v1":
        speedup["modeled"] = {
            workers: ratio * factor
            for workers, ratio in speedup.get("modeled", {}).items()
        }
    else:
        speedup["modeled"] = {
            transport: {
                workers: ratio * factor
                for workers, ratio in per_workers.items()
            }
            for transport, per_workers in speedup.get("modeled", {}).items()
        }
        speedup["shm_over_pipe_measured"] = {
            workers: ratio * factor
            for workers, ratio in speedup.get(
                "shm_over_pipe_measured", {}
            ).items()
        }
    return scaled


def self_test_core(baseline, tolerance):
    """The core/v2 absolute gates must trip on injected regressions."""
    # 1. Either ratio below its strict floor: flagged even when baseline
    # and current agree (no refresh can ratify a sunk ratio).
    for key, floor in (
        ("batched_over_scalar", BATCHED_OVER_SCALAR_FLOOR),
        ("columnar_over_scalar", COLUMNAR_OVER_SCALAR_FLOOR),
    ):
        sunk = copy.deepcopy(baseline)
        sunk["speedup"][key] = floor - 0.5
        failures, _ = compare(sunk, copy.deepcopy(sunk), tolerance)
        if not failures:
            fail(
                f"self-test: speedup.{key} below the absolute floor "
                f"{floor} was NOT flagged when baseline and current agree"
            )
    # 2. Quick mode relaxes the batched floor but must not remove it.
    eased = copy.deepcopy(baseline)
    eased["speedup"]["batched_over_scalar"] = (
        BATCHED_OVER_SCALAR_QUICK_FLOOR + BATCHED_OVER_SCALAR_FLOOR
    ) / 2
    eased["quick"] = True
    failures, _ = compare(eased, copy.deepcopy(eased), tolerance)
    if failures:
        fail(
            "self-test: a quick-run batched ratio above the quick floor "
            f"{BATCHED_OVER_SCALAR_QUICK_FLOOR} was flagged: {failures}"
        )
    sunk = copy.deepcopy(eased)
    sunk["speedup"]["batched_over_scalar"] = (
        BATCHED_OVER_SCALAR_QUICK_FLOOR - 0.5
    )
    failures, _ = compare(sunk, copy.deepcopy(sunk), tolerance)
    if not failures:
        fail(
            "self-test: quick-run batched ratio below the quick floor "
            f"{BATCHED_OVER_SCALAR_QUICK_FLOOR} was NOT flagged — "
            "quick runs are ungated"
        )
    # 3. The columnar floor does NOT relax on quick runs (the incast
    # section runs at full size either way).
    sunk = copy.deepcopy(baseline)
    sunk["quick"] = True
    sunk["speedup"]["columnar_over_scalar"] = (
        COLUMNAR_OVER_SCALAR_FLOOR - 0.5
    )
    failures, _ = compare(sunk, copy.deepcopy(sunk), tolerance)
    if not failures:
        fail(
            "self-test: quick-run columnar ratio below the absolute "
            f"floor {COLUMNAR_OVER_SCALAR_FLOOR} was NOT flagged — "
            "the columnar floor must not relax"
        )
    # 4. The parity matrix: a diverged entry and a missing matrix must
    # both trip the gate, baseline agreement notwithstanding.
    matrix = baseline.get("parity", {}).get("matrix", {})
    if not matrix:
        fail(
            "self-test: baseline carries no parity.matrix — regenerate "
            "BENCH_core.json with bench_core.py"
        )
    diverged = copy.deepcopy(baseline)
    diverged["parity"]["matrix"][sorted(matrix)[0]] = False
    failures, _ = compare(diverged, copy.deepcopy(diverged), tolerance)
    if not failures:
        fail(
            "self-test: a diverged parity.matrix entry was NOT flagged"
        )
    stripped = copy.deepcopy(baseline)
    stripped["parity"]["matrix"] = {}
    failures, _ = compare(stripped, copy.deepcopy(stripped), tolerance)
    if not failures:
        fail("self-test: an empty parity.matrix was NOT flagged")
    print(
        "check_bench_regression: core self-test OK (sunk ratios "
        "flagged, quick floor relaxed but present, columnar floor "
        "unrelaxed, parity divergence and absence flagged)"
    )


def self_test_parity(baseline, tolerance):
    """The v4 parity gate must trip on injected dist-loses-to-serial."""
    parity = baseline.get("speedup", {}).get("parity", {})
    critical = parity.get("critical_path", {}).get(PARITY_TRANSPORT, {})
    gated = [
        workers for workers in critical
        if int(workers) >= PARITY_MIN_WORKERS
    ]
    if not gated:
        fail(
            "self-test: baseline carries no shm critical-path parity "
            f"ratios at >= {PARITY_MIN_WORKERS} workers — regenerate "
            "BENCH_dist.json with bench_dist.py"
        )

    def sink_critical(document, value):
        sunk = copy.deepcopy(document)
        ratios = sunk["speedup"]["parity"]["critical_path"][PARITY_TRANSPORT]
        for workers in gated:
            ratios[workers] = value
        return sunk

    # 1. Critical path below the strict floor: flagged even when
    # baseline and current agree (no refresh can ratify losing).
    sunk = sink_critical(baseline, PARITY_CRITICAL_PATH_FLOOR - 0.2)
    failures, _ = compare(sunk, copy.deepcopy(sunk), tolerance)
    if not failures:
        fail(
            "self-test: critical-path parity below the absolute floor "
            f"{PARITY_CRITICAL_PATH_FLOOR} was NOT flagged"
        )
    # 2. Quick mode relaxes the floor but must not remove it.
    mid = (PARITY_CRITICAL_PATH_QUICK_FLOOR + PARITY_CRITICAL_PATH_FLOOR) / 2
    eased = sink_critical(baseline, mid)
    eased["quick"] = True
    failures, _ = compare(eased, copy.deepcopy(eased), tolerance)
    if failures:
        fail(
            "self-test: a quick-run parity ratio above the quick floor "
            f"{PARITY_CRITICAL_PATH_QUICK_FLOOR} was flagged: {failures}"
        )
    sunk = sink_critical(baseline, PARITY_CRITICAL_PATH_QUICK_FLOOR - 0.1)
    sunk["quick"] = True
    failures, _ = compare(sunk, copy.deepcopy(sunk), tolerance)
    if not failures:
        fail(
            "self-test: quick-run parity below the quick floor "
            f"{PARITY_CRITICAL_PATH_QUICK_FLOOR} was NOT flagged — "
            "quick runs are ungated"
        )
    # 3. Wall-clock gating is host-core-aware: the same sub-1.0 wall
    # ratio must be flagged on a host with a core per worker plus
    # headroom and ignored on a core-starved host.
    wall = parity.get("wall", {}).get(PARITY_TRANSPORT, {})
    wall_gated = [w for w in wall if int(w) >= PARITY_MIN_WORKERS]
    if wall_gated:
        workers = max(int(w) for w in wall_gated)
        slow = copy.deepcopy(baseline)
        slow["speedup"]["parity"]["wall"][PARITY_TRANSPORT] = {
            str(workers): PARITY_WALL_FLOOR - 0.2
        }
        slow["host_cpu_count"] = workers + PARITY_WALL_CPU_HEADROOM
        if check_parity(slow) == []:
            fail(
                "self-test: wall parity below the floor on a host with "
                "a core per worker was NOT flagged"
            )
        slow["host_cpu_count"] = 1
        failures = [
            message for message in check_parity(slow) if ".wall[" in message
        ]
        if failures:
            fail(
                "self-test: wall parity was gated on a core-starved "
                f"host: {failures}"
            )
    print(
        "check_bench_regression: parity self-test OK (sunk ratios "
        "flagged, quick floor relaxed but present, wall gate "
        "host-core-aware)"
    )


def self_test(baseline, tolerance):
    """The gate must flag a synthetic regression and pass a no-op."""
    degraded = scale_ratios(baseline, 1.0 - tolerance - 0.1)
    failures, _ = compare(baseline, degraded, tolerance)
    if not failures:
        fail(
            "self-test: synthetic regression "
            f"(ratios scaled by {1.0 - tolerance - 0.1:.2f}) "
            "was NOT flagged — the gate is vacuous"
        )
    unchanged = scale_ratios(baseline, 1.0)
    failures, warnings = compare(baseline, unchanged, tolerance)
    if failures or warnings:
        fail(f"self-test: identical ratios flagged: {failures + warnings}")
    if baseline["schema"] in (
        "repro.bench.dist/v2", "repro.bench.dist/v3", "repro.bench.dist/v4"
    ):
        # The absolute shm-over-pipe floor must hold even when baseline
        # and current agree (a stale-baseline refresh cannot ratify a
        # regressed transport): degrade BOTH documents' shm ratio below
        # the floor and the comparison must still fail.
        sunk = copy.deepcopy(baseline)
        ratios = sunk.get("speedup", {}).get("shm_over_pipe_measured", {})
        key = shm_gate_key(sunk)
        if key in ratios:
            ratios[key] = SHM_OVER_PIPE_FLOOR - 0.1
            failures, _ = compare(sunk, copy.deepcopy(sunk), tolerance)
            if not failures:
                fail(
                    "self-test: shm-over-pipe ratio below the absolute "
                    f"floor {SHM_OVER_PIPE_FLOOR} was NOT flagged when "
                    "baseline and current agree"
                )
            # Quick mode relaxes the floor but must not remove it: a
            # ratio between the quick floor and the strict floor passes
            # quick, and a ratio below the quick floor still fails.
            ratios[key] = (SHM_OVER_PIPE_QUICK_FLOOR + SHM_OVER_PIPE_FLOOR) / 2
            sunk["quick"] = True
            failures, _ = compare(sunk, copy.deepcopy(sunk), tolerance)
            if failures:
                fail(
                    "self-test: a quick-run ratio above the quick floor "
                    f"{SHM_OVER_PIPE_QUICK_FLOOR} was flagged: {failures}"
                )
            ratios[key] = SHM_OVER_PIPE_QUICK_FLOOR - 0.05
            failures, _ = compare(sunk, copy.deepcopy(sunk), tolerance)
            if not failures:
                fail(
                    "self-test: shm-over-pipe ratio below the quick "
                    f"floor {SHM_OVER_PIPE_QUICK_FLOOR} was NOT flagged "
                    "in quick mode — quick runs are ungated"
                )
    if baseline["schema"] in ("repro.bench.dist/v3", "repro.bench.dist/v4"):
        # The profiler-overhead ceiling likewise: simulate a sleep
        # injected into the profiled path (ratio above even the quick
        # ceiling) in BOTH documents and the gate must still trip.
        bloated = copy.deepcopy(baseline)
        overhead = bloated.get("profiler", {}).get("overhead_ratio", {})
        if overhead:
            for transport in overhead:
                overhead[transport] = PROFILER_OVERHEAD_QUICK_CEILING + 0.15
            failures, _ = compare(bloated, copy.deepcopy(bloated), tolerance)
            if not failures:
                fail(
                    "self-test: profiler overhead above the absolute "
                    f"ceiling {PROFILER_OVERHEAD_CEILING} was NOT "
                    "flagged when baseline and current agree"
                )
            # Quick mode relaxes the ceiling but must not remove it:
            # a ratio between the strict and quick ceilings passes
            # quick, one above the quick ceiling still fails.
            for transport in overhead:
                overhead[transport] = (
                    PROFILER_OVERHEAD_CEILING
                    + PROFILER_OVERHEAD_QUICK_CEILING
                ) / 2
            bloated["quick"] = True
            failures, _ = compare(bloated, copy.deepcopy(bloated), tolerance)
            if failures:
                fail(
                    "self-test: a quick-run profiler ratio under the "
                    f"quick ceiling {PROFILER_OVERHEAD_QUICK_CEILING} "
                    f"was flagged: {failures}"
                )
    if baseline["schema"] == "repro.bench.dist/v4":
        self_test_parity(baseline, tolerance)
    if baseline["schema"] == "repro.bench.core/v2":
        self_test_core(baseline, tolerance)
    print(
        "check_bench_regression: self-test OK "
        f"(synthetic {1.0 - tolerance - 0.1:.2f}x slowdown flagged, "
        "identical ratios pass)"
    )
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument("current", nargs="?",
                        help="freshly measured BENCH_*.json")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed fractional drop (default 0.20)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate flags a synthetic slowdown")
    parser.add_argument("--parity", action="store_true",
                        help="run only the v4 dist-beats-serial parity "
                             "gate on a single document (pass it as "
                             "BASELINE; no comparison document needed)")
    parser.add_argument("--quick", action="store_true",
                        help="hold the measured absolute floors/ceilings "
                             "to their relaxed quick-run values (also "
                             "inferred from the document's own 'quick' "
                             "marker)")
    args = parser.parse_args(argv)
    if not 0.0 < args.tolerance < 1.0:
        fail(f"tolerance must be in (0, 1), got {args.tolerance}")

    baseline = load(args.baseline)
    if args.self_test:
        return self_test(baseline, args.tolerance)
    if args.parity:
        if baseline.get("schema") != "repro.bench.dist/v4":
            fail(
                "--parity needs a repro.bench.dist/v4 document, got "
                f"{baseline.get('schema')!r}"
            )
        failures = check_parity(baseline, args.quick)
        for failure in failures:
            print(f"check_bench_regression: FAIL: {failure}",
                  file=sys.stderr)
        if not failures:
            print("check_bench_regression: parity OK")
        return 1 if failures else 0
    if args.current is None:
        parser.error("CURRENT is required unless --self-test is given")
    current = load(args.current)

    failures, warnings = compare(
        baseline, current, args.tolerance, quick=args.quick
    )
    for warning in warnings:
        print(f"check_bench_regression: WARN: {warning}")
    if failures:
        for failure in failures:
            print(f"check_bench_regression: FAIL: {failure}",
                  file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
