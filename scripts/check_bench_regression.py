#!/usr/bin/env python
"""Gate CI on benchmark speedup ratios staying within tolerance.

Usage: python scripts/check_bench_regression.py BASELINE CURRENT
                                                [--tolerance 0.20]
       python scripts/check_bench_regression.py --self-test BASELINE

Compares a freshly measured benchmark document (``CURRENT``, written by
``bench_core.py`` or ``bench_dist.py``) against the committed baseline
of the same schema, and exits non-zero if any speedup ratio regressed
below ``baseline * (1 - tolerance)``.

Only *host-independent ratios* are compared — never absolute MHz, which
varies with the CI machine:

* ``repro.bench.core/v1`` — ``speedup.batched_over_scalar`` (batched
  engine over the scalar oracle on the same host);
* ``repro.bench.dist/v1`` — ``speedup.modeled`` per worker count (the
  one-core-per-worker critical-path model).  Worker counts present in
  only one document are ignored; measured dist speedups are skipped
  entirely because a shared-core container measures transport overhead,
  not scaling.
* ``repro.bench.dist/v2`` — ``speedup.modeled`` per transport per
  worker count under the usual relative tolerance, plus
  ``speedup.shm_over_pipe_measured`` (the pipe/shm ratio of measured
  per-round transport overhead — both transports tick identical models
  on the same host, so the ratio isolates the transport substrate).
  The measured ratio's magnitude still shifts with host load and run
  length, so it is exempt from the baseline-relative band and gated on
  an *absolute* floor instead (``SHM_OVER_PIPE_FLOOR``, applied at
  2 workers): the shm transport must stay at least that much cheaper
  per round than pipes regardless of what the baseline recorded.
* ``repro.bench.dist/v3`` — everything in v2, plus the round-phase
  profiler's measured overhead (``profiler.overhead_ratio`` per
  transport: profiled-over-unprofiled round time from the
  alternate-round probe, where recorded and minimally-timed rounds
  interleave within one run so host drift cancels).  Like the shm
  floor it is an *absolute* gate, not baseline-relative: the ratio
  must stay below ``PROFILER_OVERHEAD_CEILING`` so the profiler's own
  cost never exceeds 5% of round time.

Ratios *above* ``baseline * (1 + tolerance)`` print a warning asking
for a baseline refresh but do not fail the build.

``--self-test`` proves the gate actually gates: it loads BASELINE,
synthesizes a degraded copy just below the tolerance band plus a
within-band copy, and exits non-zero unless the first is flagged and
the second passes.  CI runs this so a silently-vacuous checker cannot
go green.  Stdlib only.
"""

from __future__ import annotations

import argparse
import copy
import json
import sys

DEFAULT_TOLERANCE = 0.20

KNOWN_SCHEMAS = (
    "repro.bench.core/v1",
    "repro.bench.dist/v1",
    "repro.bench.dist/v2",
    "repro.bench.dist/v3",
)

#: Absolute floor on the measured 2-worker shm-over-pipe transport
#: overhead ratio: the shared-memory ring must move a round's tokens at
#: least this much cheaper than the mp.Queue pipe, or the zero-copy
#: transport has regressed to the point of pointlessness.
SHM_OVER_PIPE_FLOOR = 1.5
#: The floor applied to ``--quick`` runs (CI smoke).  At 400k cycles the
#: per-round transport delta is tens of microseconds, so even with the
#: median-of-paired-trials estimator a loaded shared CI runner can land
#: a legitimate shm win well under the full-run margin; quick mode only
#: asserts shm still *beats* pipes with headroom, and the strict 1.5x
#: floor is enforced by the weekly full-length benchmark run.
SHM_OVER_PIPE_QUICK_FLOOR = 1.1
SHM_OVER_PIPE_METRIC = "speedup.shm_over_pipe_measured[2]"

#: Absolute ceiling on the profiled-over-unprofiled round-time ratio:
#: the round-phase profiler must cost under 5% of round time, or the
#: "low-overhead" in its contract has regressed.
PROFILER_OVERHEAD_CEILING = 1.05
PROFILER_METRIC_PREFIX = "profiler.overhead_ratio"


def fail(message):
    print(f"check_bench_regression: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def load(path):
    try:
        with open(path) as fh:
            document = json.load(fh)
    except (OSError, ValueError) as exc:
        fail(f"cannot read {path}: {exc}")
    if document.get("schema") not in KNOWN_SCHEMAS:
        fail(
            f"{path}: unknown schema {document.get('schema')!r}; "
            f"expected one of {KNOWN_SCHEMAS}"
        )
    return document


def extract_ratios(document):
    """Host-independent speedup ratios keyed by a stable metric name."""
    schema = document["schema"]
    speedup = document.get("speedup", {})
    if schema == "repro.bench.core/v1":
        ratio = speedup.get("batched_over_scalar")
        if not isinstance(ratio, (int, float)):
            return {}
        return {"speedup.batched_over_scalar": float(ratio)}
    if schema == "repro.bench.dist/v1":
        # One modeled ratio per worker count.
        return {
            f"speedup.modeled[{workers}]": float(ratio)
            for workers, ratio in sorted(speedup.get("modeled", {}).items())
            if isinstance(ratio, (int, float))
        }
    # repro.bench.dist/v2+: modeled ratios nest per transport, and the
    # measured shm-over-pipe overhead ratio is comparable because both
    # sides of it ran on the same host.
    ratios = {}
    for transport, per_workers in sorted(speedup.get("modeled", {}).items()):
        for workers, ratio in sorted(per_workers.items()):
            if isinstance(ratio, (int, float)):
                ratios[f"speedup.modeled[{transport}][{workers}]"] = float(
                    ratio
                )
    for workers, ratio in sorted(
        speedup.get("shm_over_pipe_measured", {}).items()
    ):
        if isinstance(ratio, (int, float)):
            ratios[f"speedup.shm_over_pipe_measured[{workers}]"] = float(
                ratio
            )
    # v3: profiled-over-unprofiled round time per transport, also a
    # same-host pair so it travels between machines.
    profiler = document.get("profiler", {}).get("overhead_ratio", {})
    for transport, ratio in sorted(profiler.items()):
        if isinstance(ratio, (int, float)):
            ratios[f"{PROFILER_METRIC_PREFIX}[{transport}]"] = float(ratio)
    return ratios


def shm_floor_for(current, quick_flag):
    """The absolute shm-over-pipe floor that applies to ``current``.

    Quick-scale measurements (CI smoke) get the relaxed floor; the
    strict one applies to full-length runs.  Quickness is taken from
    the document itself (``bench_dist.py --quick`` records
    ``"quick": true``) or forced by the checker's own ``--quick`` flag,
    so a CI pipeline cannot accidentally hold a 400k-cycle run to the
    full-run margin.
    """
    if quick_flag or current.get("quick"):
        return SHM_OVER_PIPE_QUICK_FLOOR
    return SHM_OVER_PIPE_FLOOR


def compare(baseline, current, tolerance, quick=False):
    """Return (failures, warnings) message lists for a document pair."""
    if baseline["schema"] != current["schema"]:
        return (
            [
                f"schema mismatch: baseline {baseline['schema']!r} vs "
                f"current {current['schema']!r}"
            ],
            [],
        )
    base_ratios = extract_ratios(baseline)
    cur_ratios = extract_ratios(current)
    if not base_ratios:
        return (["baseline contains no comparable speedup ratios"], [])
    shared = sorted(set(base_ratios) & set(cur_ratios))
    if not shared:
        return (
            [
                "no shared metrics: baseline has "
                f"{sorted(base_ratios)}, current has {sorted(cur_ratios)}"
            ],
            [],
        )
    failures, warnings = [], []
    for metric in shared:
        if metric.startswith("speedup.shm_over_pipe_measured") or \
                metric.startswith(PROFILER_METRIC_PREFIX):
            # Measured transport/profiler ratios shift with host load
            # and run length (CI's --quick runs are shorter than the
            # committed baseline), so they skip the baseline-relative
            # band; the absolute floor/ceiling below are their gates.
            continue
        base, cur = base_ratios[metric], cur_ratios[metric]
        floor = base * (1.0 - tolerance)
        ceiling = base * (1.0 + tolerance)
        if cur < floor:
            failures.append(
                f"{metric}: {cur:.3f} is below {floor:.3f} "
                f"(baseline {base:.3f} - {tolerance:.0%})"
            )
        elif cur > ceiling:
            warnings.append(
                f"{metric}: {cur:.3f} beats baseline {base:.3f} by more "
                f"than {tolerance:.0%} — consider refreshing the baseline"
            )
        else:
            print(
                f"check_bench_regression: OK: {metric}: {cur:.3f} within "
                f"{tolerance:.0%} of baseline {base:.3f}"
            )
    # The 2-worker shm-over-pipe overhead ratio also has an absolute
    # floor: a baseline refresh must never quietly ratify a shm
    # transport that stopped beating pipes.
    shm_ratio = cur_ratios.get(SHM_OVER_PIPE_METRIC)
    if shm_ratio is not None:
        floor = shm_floor_for(current, quick)
        label = "quick " if floor == SHM_OVER_PIPE_QUICK_FLOOR else ""
        if shm_ratio < floor:
            failures.append(
                f"{SHM_OVER_PIPE_METRIC}: {shm_ratio:.3f} is below the "
                f"absolute {label}floor {floor} — the shm "
                "transport no longer beats pipes by the required margin"
            )
        else:
            print(
                f"check_bench_regression: OK: {SHM_OVER_PIPE_METRIC}: "
                f"{shm_ratio:.3f} clears the absolute {label}floor "
                f"{floor}"
            )
    # Every profiler overhead ratio has an absolute ceiling: profiling
    # a run must never cost more than 5% of round time, and a baseline
    # refresh cannot ratify a heavier profiler.
    for metric in sorted(cur_ratios):
        if not metric.startswith(PROFILER_METRIC_PREFIX):
            continue
        ratio = cur_ratios[metric]
        if ratio > PROFILER_OVERHEAD_CEILING:
            failures.append(
                f"{metric}: {ratio:.3f} exceeds the absolute ceiling "
                f"{PROFILER_OVERHEAD_CEILING} — the profiler costs more "
                "than 5% of round time"
            )
        else:
            print(
                f"check_bench_regression: OK: {metric}: {ratio:.3f} "
                f"under the absolute ceiling {PROFILER_OVERHEAD_CEILING}"
            )
    return failures, warnings


def scale_ratios(document, factor):
    """A copy of ``document`` with every comparable ratio scaled."""
    scaled = copy.deepcopy(document)
    speedup = scaled.setdefault("speedup", {})
    if scaled["schema"] == "repro.bench.core/v1":
        speedup["batched_over_scalar"] = (
            speedup.get("batched_over_scalar", 0.0) * factor
        )
    elif scaled["schema"] == "repro.bench.dist/v1":
        speedup["modeled"] = {
            workers: ratio * factor
            for workers, ratio in speedup.get("modeled", {}).items()
        }
    else:
        speedup["modeled"] = {
            transport: {
                workers: ratio * factor
                for workers, ratio in per_workers.items()
            }
            for transport, per_workers in speedup.get("modeled", {}).items()
        }
        speedup["shm_over_pipe_measured"] = {
            workers: ratio * factor
            for workers, ratio in speedup.get(
                "shm_over_pipe_measured", {}
            ).items()
        }
    return scaled


def self_test(baseline, tolerance):
    """The gate must flag a synthetic regression and pass a no-op."""
    degraded = scale_ratios(baseline, 1.0 - tolerance - 0.1)
    failures, _ = compare(baseline, degraded, tolerance)
    if not failures:
        fail(
            "self-test: synthetic regression "
            f"(ratios scaled by {1.0 - tolerance - 0.1:.2f}) "
            "was NOT flagged — the gate is vacuous"
        )
    unchanged = scale_ratios(baseline, 1.0)
    failures, warnings = compare(baseline, unchanged, tolerance)
    if failures or warnings:
        fail(f"self-test: identical ratios flagged: {failures + warnings}")
    if baseline["schema"] in ("repro.bench.dist/v2", "repro.bench.dist/v3"):
        # The absolute shm-over-pipe floor must hold even when baseline
        # and current agree (a stale-baseline refresh cannot ratify a
        # regressed transport): degrade BOTH documents' shm ratio below
        # the floor and the comparison must still fail.
        sunk = copy.deepcopy(baseline)
        ratios = sunk.get("speedup", {}).get("shm_over_pipe_measured", {})
        if "2" in ratios:
            ratios["2"] = SHM_OVER_PIPE_FLOOR - 0.1
            failures, _ = compare(sunk, copy.deepcopy(sunk), tolerance)
            if not failures:
                fail(
                    "self-test: shm-over-pipe ratio below the absolute "
                    f"floor {SHM_OVER_PIPE_FLOOR} was NOT flagged when "
                    "baseline and current agree"
                )
            # Quick mode relaxes the floor but must not remove it: a
            # ratio between the quick floor and the strict floor passes
            # quick, and a ratio below the quick floor still fails.
            ratios["2"] = (SHM_OVER_PIPE_QUICK_FLOOR + SHM_OVER_PIPE_FLOOR) / 2
            sunk["quick"] = True
            failures, _ = compare(sunk, copy.deepcopy(sunk), tolerance)
            if failures:
                fail(
                    "self-test: a quick-run ratio above the quick floor "
                    f"{SHM_OVER_PIPE_QUICK_FLOOR} was flagged: {failures}"
                )
            ratios["2"] = SHM_OVER_PIPE_QUICK_FLOOR - 0.05
            failures, _ = compare(sunk, copy.deepcopy(sunk), tolerance)
            if not failures:
                fail(
                    "self-test: shm-over-pipe ratio below the quick "
                    f"floor {SHM_OVER_PIPE_QUICK_FLOOR} was NOT flagged "
                    "in quick mode — quick runs are ungated"
                )
    if baseline["schema"] == "repro.bench.dist/v3":
        # The profiler-overhead ceiling likewise: simulate a sleep
        # injected into the profiled path (ratio well above 1.05) in
        # BOTH documents and the gate must still trip.
        bloated = copy.deepcopy(baseline)
        overhead = bloated.get("profiler", {}).get("overhead_ratio", {})
        if overhead:
            for transport in overhead:
                overhead[transport] = PROFILER_OVERHEAD_CEILING + 0.15
            failures, _ = compare(bloated, copy.deepcopy(bloated), tolerance)
            if not failures:
                fail(
                    "self-test: profiler overhead above the absolute "
                    f"ceiling {PROFILER_OVERHEAD_CEILING} was NOT "
                    "flagged when baseline and current agree"
                )
    print(
        "check_bench_regression: self-test OK "
        f"(synthetic {1.0 - tolerance - 0.1:.2f}x slowdown flagged, "
        "identical ratios pass)"
    )
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument("current", nargs="?",
                        help="freshly measured BENCH_*.json")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed fractional drop (default 0.20)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate flags a synthetic slowdown")
    parser.add_argument("--quick", action="store_true",
                        help="hold the measured shm-over-pipe ratio to "
                             "the relaxed quick-run floor (also inferred "
                             "from the document's own 'quick' marker)")
    args = parser.parse_args(argv)
    if not 0.0 < args.tolerance < 1.0:
        fail(f"tolerance must be in (0, 1), got {args.tolerance}")

    baseline = load(args.baseline)
    if args.self_test:
        return self_test(baseline, args.tolerance)
    if args.current is None:
        parser.error("CURRENT is required unless --self-test is given")
    current = load(args.current)

    failures, warnings = compare(
        baseline, current, args.tolerance, quick=args.quick
    )
    for warning in warnings:
        print(f"check_bench_regression: WARN: {warning}")
    if failures:
        for failure in failures:
            print(f"check_bench_regression: FAIL: {failure}",
                  file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
