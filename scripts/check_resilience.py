#!/usr/bin/env python
"""Chaos smoke test: faulted sessions must recover cycle-exactly.

Usage: PYTHONPATH=src python scripts/check_resilience.py

Drives the manager CLI twice over the same 4-node ping session — once
clean, once under a canned fault plan (failed build, failed instance
launch, lost heartbeat, controller crash mid-run) with checkpointing
enabled — and checks that:

* both sessions exit zero;
* the faulted run's ping RTTs and target time match the clean run
  exactly (recovery is cycle-exact, not approximate);
* the resilience summary reports the injected faults, at least one
  retry, and exactly one checkpoint restore;
* the fault log is byte-identical across two faulted runs (the plan's
  seeded RNG makes chaos reproducible);
* the faulted run still exports telemetry artifacts — an exit status
  of 0 with an empty --telemetry-out directory is a silent failure,
  not a pass;
* a session whose retry budget is exhausted exits non-zero with a
  one-line error;
* the job server's graceful shutdown checkpoints a running preemptible
  job (so it can resume cycle-exactly in a later serving session) and
  its teardown audit reports no leaked ``/dev/shm`` segments — the
  deep serve smoke lives in ``scripts/check_serve.py``;
* distributed sessions over BOTH transports (``--transport pipe`` and
  ``--transport shm``) reproduce the serial session's ping results
  exactly — including a chaos run that crashes a worker mid-flight over
  shm — and ``/dev/shm`` holds no repro ring or heartbeat segments
  afterwards (the listing is snapshotted before and after, so a leak in
  any teardown path fails the build);
* supervised chaos: a livelocked worker (``worker-hang``) is detected
  by the heartbeat supervisor, killed, and recovered bit-identically;
  an injected shm frame bit-flip (``ring-corrupt``) is caught by the
  frame CRCs and recovered bit-identically — both surface in the
  ``status`` resilience counters and leak no processes or segments.

Exits non-zero with a message on the first violation; prints a one-line
summary on success.  Intended for CI smoke tests — stdlib + repro only.
"""

import io
import json
import os
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.dist.shm import (  # noqa: E402
    HEARTBEAT_PREFIX,
    SEGMENT_PREFIX,
    leaked_segments,
)
from repro.manager.cli import main  # noqa: E402

PLAN = {
    "seed": 7,
    "faults": [
        {"kind": "agfi-build", "point": "buildafi"},
        {"kind": "instance-launch", "point": "launchrunfarm"},
        {"kind": "heartbeat-loss", "point": "infrasetup"},
        {"kind": "controller-crash", "point": "runworkload",
         "at_cycle": 2_000_000},
    ],
}

SESSION = [
    "buildafi", "launchrunfarm", "infrasetup", "runworkload", "status",
    "--topology", "single_rack", "--servers-per-rack", "4",
    "--duration-ms", "2", "--ping-count", "4", "--json",
]


def fail(message):
    print(f"check_resilience: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def run_cli(argv):
    out, err = io.StringIO(), io.StringIO()
    code = main(argv, out=out, err=err)
    return code, out.getvalue(), err.getvalue()


def run_session(extra=()):
    code, out, err = run_cli(SESSION + list(extra))
    if code != 0:
        fail(f"session exited {code}: {err.strip()}")
    return json.loads(out)["verbs"]


def shm_listing():
    """Current ``/dev/shm`` entries (empty set where unsupported)."""
    try:
        return set(os.listdir("/dev/shm"))
    except OSError:
        return set()


def main_check():
    with tempfile.TemporaryDirectory() as tmp:
        plan_path = os.path.join(tmp, "plan.json")
        with open(plan_path, "w") as fh:
            json.dump(PLAN, fh)
        chaos = ["--fault-plan", plan_path, "--checkpoint-interval", "0.5"]
        telemetry_dir = os.path.join(tmp, "telemetry")

        clean = run_session()
        faulted = run_session(chaos + ["--telemetry-out", telemetry_dir])
        faulted_again = run_session(chaos)

        # A zero exit with no artifacts on disk is a silent failure:
        # the faulted session must still export real telemetry.
        if not os.path.isdir(telemetry_dir):
            fail(f"telemetry directory was not created: {telemetry_dir}")
        written = sorted(os.listdir(telemetry_dir))
        if not written:
            fail(f"telemetry directory is empty: {telemetry_dir}")
        for artifact in ("metrics.csv", "metrics.json", "trace.json"):
            path = os.path.join(telemetry_dir, artifact)
            if artifact not in written:
                fail(f"faulted run wrote no {artifact} (got {written})")
            if os.path.getsize(path) == 0:
                fail(f"faulted run wrote an empty {artifact}")

        # Cycle-exact recovery: identical results despite 4 faults.
        if faulted["runworkload"]["ping"] != clean["runworkload"]["ping"]:
            fail(
                f"faulted ping {faulted['runworkload']['ping']} != "
                f"clean {clean['runworkload']['ping']}"
            )
        if faulted["runworkload"]["target_ms"] != (
            clean["runworkload"]["target_ms"]
        ):
            fail("faulted run stopped at a different target time")

        resilience = faulted["status"]["resilience"]
        if resilience["faults_injected"] != len(PLAN["faults"]):
            fail(f"expected {len(PLAN['faults'])} faults injected, "
                 f"got {resilience['faults_injected']}")
        if resilience["retries"] < 1:
            fail("no retries recorded")
        if resilience["restores"] != 1:
            fail(f"expected 1 checkpoint restore, "
                 f"got {resilience['restores']}")
        if resilience["giveups"] != 0:
            fail(f"unexpected giveups: {resilience['giveups']}")

        # Determinism: the seeded plan yields a byte-identical fault log.
        if resilience["fault_log"] != (
            faulted_again["status"]["resilience"]["fault_log"]
        ):
            fail("fault log differs between identical chaos runs")

        # Distributed smoke, both transports: the process boundary and
        # the transport substrate must change nothing observable.
        shm_before = shm_listing()
        for transport in ("pipe", "shm"):
            dist = run_session(
                ["--workers", "2", "--fpgas-per-instance", "1",
                 "--transport", transport]
            )
            summary = dist["runworkload"]["distributed"]
            if summary["transport"] != transport:
                fail(
                    f"requested --transport {transport} but the run used "
                    f"{summary['transport']!r}"
                )
            if summary["channels"] < 1:
                fail(f"{transport} run reports no channels")
            if dist["runworkload"]["ping"] != clean["runworkload"]["ping"]:
                fail(
                    f"{transport} distributed ping "
                    f"{dist['runworkload']['ping']} != serial "
                    f"{clean['runworkload']['ping']}"
                )

        # Chaos over shm: a worker crash mid-run tears down through the
        # same path as a clean exit, so recovery stays cycle-exact and
        # no ring segment survives the crash.
        dist_faulted = run_session(
            chaos + ["--workers", "2", "--fpgas-per-instance", "1",
                     "--transport", "shm"]
        )
        if dist_faulted["runworkload"]["ping"] != (
            clean["runworkload"]["ping"]
        ):
            fail("faulted shm distributed run diverged from serial ping")
        if dist_faulted["status"]["resilience"]["restores"] != 1:
            fail(
                "faulted shm distributed run expected 1 restore, got "
                f"{dist_faulted['status']['resilience']['restores']}"
            )

        # Supervised chaos: a worker livelocked mid-run must be caught
        # by the heartbeat supervisor (not a transport timeout), killed,
        # and the workload recovered bit-identically from checkpoint.
        hang_plan = os.path.join(tmp, "hang.json")
        with open(hang_plan, "w") as fh:
            json.dump({"seed": 3, "faults": [
                {"kind": "worker-hang", "point": "runworkload",
                 "at_cycle": 1_000_000, "target": "worker:1"},
            ]}, fh)
        hung = run_session(
            ["--fault-plan", hang_plan, "--workers", "2",
             "--fpgas-per-instance", "1", "--hang-timeout", "1"]
        )
        if hung["runworkload"]["ping"] != clean["runworkload"]["ping"]:
            fail("hung-worker run diverged from the serial ping results")
        hung_resilience = hung["status"]["resilience"]
        if hung_resilience["hangs_detected"] != 1:
            fail(f"expected 1 hang detected, "
                 f"got {hung_resilience['hangs_detected']}")
        if hung_resilience["workers_killed"] < 1:
            fail("hung worker was not killed")
        if hung_resilience["restores"] != 1:
            fail(f"hung-worker run expected 1 restore, "
                 f"got {hung_resilience['restores']}")

        # Supervised chaos over shm: a frame bit-flip must be caught by
        # the ring CRCs (typed ring corruption, not decoded garbage) and
        # recovered bit-identically.
        corrupt_plan = os.path.join(tmp, "corrupt.json")
        with open(corrupt_plan, "w") as fh:
            json.dump({"seed": 4, "faults": [
                {"kind": "ring-corrupt", "point": "runworkload",
                 "at_cycle": 1_000_000, "target": "ring:0->1"},
            ]}, fh)
        corrupted = run_session(
            ["--fault-plan", corrupt_plan, "--workers", "2",
             "--fpgas-per-instance", "1", "--transport", "shm"]
        )
        if corrupted["runworkload"]["ping"] != clean["runworkload"]["ping"]:
            fail("ring-corrupt run diverged from the serial ping results")
        corrupt_resilience = corrupted["status"]["resilience"]
        if corrupt_resilience["ring_corruptions"] != 1:
            fail(f"expected 1 ring corruption, "
                 f"got {corrupt_resilience['ring_corruptions']}")
        if corrupt_resilience["restores"] != 1:
            fail(f"ring-corrupt run expected 1 restore, "
                 f"got {corrupt_resilience['restores']}")
        if corrupt_resilience["serial_fallbacks"] != 0:
            fail("ring-corrupt run fell back to serial unexpectedly")

        # Leak check: /dev/shm before vs after the distributed sessions.
        leaks = leaked_segments()
        if leaks:
            fail(f"leaked /dev/shm ring segments: {leaks}")
        new_rings = sorted(
            name
            for name in shm_listing() - shm_before
            if name.startswith((SEGMENT_PREFIX, HEARTBEAT_PREFIX))
        )
        if new_rings:
            fail(f"/dev/shm grew repro segments: {new_rings}")

        # Serve layer: graceful shutdown of a busy server checkpoints
        # the running preemptible job instead of discarding its work,
        # and the audit confirms the children left no shm segments.
        import time

        from repro.serve import InProcessClient, JobServer, ServeFarm

        server = JobServer(farm=ServeFarm({"f1.2xlarge": 2})).start()
        client = InProcessClient(server)
        job_id = client.submit({
            "name": "draining", "topology": "single_rack",
            "servers_per_rack": 2, "workload": "ping",
            "duration_ms": 500.0, "ping_count": 20, "preemptible": True,
        })
        deadline = time.monotonic() + 30.0
        while not any(e["event"] == "started" for e in server.events):
            if time.monotonic() > deadline:
                fail("serve: the job never started before shutdown")
            time.sleep(0.02)
        time.sleep(0.1)  # let it make progress worth checkpointing
        report = client.shutdown()
        if report["leaked_segments"]:
            fail(f"serve: shutdown audit leaked segments: "
                 f"{report['leaked_segments']}")
        record = next(
            job for job in client.jobs() if job["job_id"] == job_id
        )
        if record["state"] != "queued" or not record["checkpoint"]:
            fail(
                "serve: shutdown should park the running job as queued "
                f"with a checkpoint, got state={record['state']!r} "
                f"checkpoint={record['checkpoint']!r}"
            )
        if record["checkpoint"]["cycle"] <= 0:
            fail("serve: shutdown checkpoint captured no progress")
        server.stop()
        if leaked_segments():
            fail("serve: /dev/shm segments leaked after server stop")

        # Exhausted retry budgets surface as a clean non-zero exit.
        stubborn = os.path.join(tmp, "stubborn.json")
        with open(stubborn, "w") as fh:
            json.dump({"seed": 0, "faults": [
                {"kind": "instance-launch", "point": "launchrunfarm",
                 "times": 9},
            ]}, fh)
        code, _, err = run_cli(
            ["launchrunfarm", "--topology", "single_rack",
             "--fault-plan", stubborn, "--max-retries", "2"]
        )
        if code == 0:
            fail("exhausted retry budget did not exit non-zero")
        if "failed after 2 retries" not in err:
            fail(f"unexpected giveup message: {err.strip()!r}")

    print(
        f"check_resilience: OK ({resilience['faults_injected']} faults, "
        f"{resilience['retries']} retries, "
        f"{resilience['restores']} restore, cycle-exact recovery; "
        "pipe+shm distributed runs serial-exact, hang+corrupt chaos "
        "recovered, serve shutdown checkpointed, /dev/shm leak-free)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main_check())
