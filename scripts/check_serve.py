#!/usr/bin/env python
"""Job-server smoke test: multi-tenancy must not perturb target time.

Usage: PYTHONPATH=src python scripts/check_serve.py

Drives a :class:`repro.serve.JobServer` on a capacity-limited farm
through one realistic multi-tenant session and checks the subsystem's
whole contract end to end:

* at least three jobs overlap on the farm (submitted together, more
  demand than slots — the scheduler decides who holds FPGAs when);
* a low-priority job is **preempted** by a high-priority arrival,
  checkpoints, resumes, and finishes **bit-identical** to a standalone
  serial run of the same spec (node results AND final state digest);
* every completed job's results are bit-equal to its serial oracle;
* one job is **cancelled** mid-flight and settles as cancelled;
* the CLI verbs (``submit``/``jobs``/``cancel``) round-trip over the
  unix socket, and server-side failures exit non-zero with one line;
* graceful shutdown reaps every child process — zero leaked processes,
  zero leaked ``/dev/shm`` segments (snapshotted before/after);
* the JSON-lines job-event log is well formed: monotonic ``seq``,
  every job's lifecycle closed out, a final ``shutdown`` record.

Exits non-zero with a message on the first violation; prints a one-line
summary on success.  Intended for CI smoke tests — stdlib + repro only.
"""

import io
import json
import os
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.dist.shm import (  # noqa: E402
    HEARTBEAT_PREFIX,
    SEGMENT_PREFIX,
    leaked_segments,
)
from repro.manager.cli import main as cli_main  # noqa: E402
from repro.serve import (  # noqa: E402
    InProcessClient,
    JobSpec,
    JobServer,
    ServeFarm,
    SocketEndpoint,
    run_job_inline,
)

#: Two-slot farm; every job below needs 2 slots, so at most one runs at
#: a time and the scheduler's queueing/preemption decisions all matter.
FARM = {"f1.2xlarge": 2}

BASE = {
    "topology": "single_rack",
    "servers_per_rack": 2,
    "workload": "ping",
}

#: The preemption victim: long enough (~0.5 s host) to be caught mid-run.
VICTIM = {**BASE, "name": "victim", "duration_ms": 40.0, "ping_count": 20,
          "priority": 0, "preemptible": True}
#: The preemptor: arrives later, outranks the victim.
URGENT = {**BASE, "name": "urgent", "duration_ms": 2.0, "ping_count": 4,
          "priority": 10}
#: A third tenant that queues behind both.
STEADY = {**BASE, "name": "steady", "duration_ms": 1.0, "ping_count": 6}
#: The cancellation target: would run for a long time if not cancelled.
DOOMED = {**BASE, "name": "doomed", "duration_ms": 500.0, "priority": -5}


def fail(message):
    print(f"check_serve: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def run_cli(argv):
    out, err = io.StringIO(), io.StringIO()
    code = cli_main(argv, out=out, err=err)
    return code, out.getvalue(), err.getvalue()


def shm_listing():
    try:
        return set(os.listdir("/dev/shm"))
    except OSError:
        return set()


def child_pids():
    """Live direct children of this process (leaked job processes)."""
    import multiprocessing

    return {p.pid for p in multiprocessing.active_children()}


def wait_for(predicate, timeout_s, what):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            fail(f"timed out waiting for {what}")
        time.sleep(0.02)


def check_events(log_path, job_ids):
    with open(log_path) as handle:
        events = [json.loads(line) for line in handle]
    if [e["seq"] for e in events] != list(range(len(events))):
        fail("event log seq numbers are not contiguous from 0")
    if events[0]["event"] != "serving" or events[-1]["event"] != "shutdown":
        fail(
            "event log must open with 'serving' and close with "
            f"'shutdown'; got {events[0]['event']}..{events[-1]['event']}"
        )
    closing = {"completed", "cancelled", "failed"}
    for job_id in job_ids:
        job_events = [e["event"] for e in events
                      if e.get("job_id") == job_id]
        if "submitted" not in job_events:
            fail(f"job {job_id} never logged 'submitted'")
        if not closing & set(job_events):
            fail(f"job {job_id} has no closing event: {job_events}")
    preempt_pairs = [e["event"] for e in events
                     if e["event"] in ("preempted", "started")]
    if "preempted" not in preempt_pairs:
        fail("no preemption recorded in the event log")
    return events


def main_check():
    shm_before = shm_listing()
    pids_before = child_pids()

    # Serial oracles first: the bit-equality reference for every job.
    oracles = {
        spec["name"]: run_job_inline(JobSpec.from_dict(spec))
        for spec in (VICTIM, URGENT, STEADY)
    }

    with tempfile.TemporaryDirectory() as tmp:
        log_path = os.path.join(tmp, "events.jsonl")
        sock = os.path.join(tmp, "serve.sock")
        server = JobServer(
            farm=ServeFarm(FARM), event_log=log_path
        ).start()
        endpoint = SocketEndpoint(server, sock).start()
        client = InProcessClient(server)

        # Three overlapping tenants + one doomed job, all in the
        # system at once on a farm that fits only one at a time.
        victim_id = client.submit(VICTIM)
        steady_id = client.submit(STEADY)
        doomed_id = client.submit(DOOMED)
        wait_for(
            lambda: any(e["event"] == "started" for e in server.events),
            30.0, "the victim to start",
        )
        time.sleep(0.2)  # victim makes mid-run progress worth preempting

        # CLI round-trip: submit the preemptor over the unix socket.
        code, out, err = run_cli([
            "submit", "--serve-socket", sock, "--workload", "ping",
            "--servers-per-rack", "2", "--duration-ms", "2",
            "--ping-count", "4", "--priority", "10",
            "--job-name", "urgent",
        ])
        if code != 0:
            fail(f"CLI submit exited {code}: {err.strip()}")
        urgent_id = int(out.split()[-1])

        # Server-side failure -> one line on stderr, nonzero exit.
        code, out, err = run_cli(
            ["cancel", "--serve-socket", sock, "--job-id", "999"]
        )
        if code == 0:
            fail("cancelling an unknown job exited zero")
        if not err.startswith("firesim: error:") or "\n" in err.strip():
            fail(f"expected one-line error, got {err!r}")

        # Cancel the doomed job (CLI this time), let the rest finish.
        code, _, err = run_cli(
            ["cancel", "--serve-socket", sock, "--job-id", str(doomed_id)]
        )
        if code != 0:
            fail(f"CLI cancel exited {code}: {err.strip()}")

        records = {
            name: client.wait(job_id, timeout_s=300)
            for name, job_id in (
                ("victim", victim_id), ("urgent", urgent_id),
                ("steady", steady_id), ("doomed", doomed_id),
            )
        }

        if records["doomed"]["state"] != "cancelled":
            fail(f"doomed job state {records['doomed']['state']!r}, "
                 "expected cancelled")
        for name in ("victim", "urgent", "steady"):
            record = records[name]
            if record["state"] != "done":
                fail(f"{name} job state {record['state']!r}: "
                     f"{record['error']}")
            oracle = oracles[name]
            if record["result"]["node_results"] != oracle["node_results"]:
                fail(f"{name}: scheduled results != serial oracle "
                     "(multi-tenancy perturbed target time)")
            if record["result"]["final_digest"] != oracle["final_digest"]:
                fail(f"{name}: final state digest != serial oracle")
        if records["victim"]["preemptions"] < 1:
            fail("the victim was never preempted")
        if records["victim"]["checkpoint"] is not None:
            fail("a completed job still holds a checkpoint")

        # CLI jobs listing reflects the outcome.
        code, out, err = run_cli(["jobs", "--serve-socket", sock])
        if code != 0:
            fail(f"CLI jobs exited {code}: {err.strip()}")
        if "'victim' done" not in out or "preemptions=" not in out:
            fail(f"jobs listing missing the preempted victim: {out!r}")

        report = client.shutdown()
        if report["leaked_segments"]:
            fail(f"shutdown audit found leaked /dev/shm segments: "
                 f"{report['leaked_segments']}")
        endpoint.close()
        server.stop()

        events = check_events(
            log_path, [victim_id, steady_id, doomed_id, urgent_id]
        )
        resumed = [e for e in events
                   if e["event"] == "started" and e.get("resumed")]
        if not resumed:
            fail("event log records no checkpoint resume")
        stats = server.stats

    leaked_procs = child_pids() - pids_before
    if leaked_procs:
        fail(f"leaked child processes: {sorted(leaked_procs)}")
    leaks = leaked_segments()
    if leaks:
        fail(f"leaked /dev/shm segments: {leaks}")
    grown = sorted(
        name for name in shm_listing() - shm_before
        if name.startswith((SEGMENT_PREFIX, HEARTBEAT_PREFIX))
    )
    if grown:
        fail(f"/dev/shm grew repro segments: {grown}")

    print(
        "check_serve: OK "
        f"({stats.submitted} jobs on {ServeFarm(FARM).capacity} slots, "
        f"{stats.preemptions} preemption(s) resumed cycle-exactly, "
        f"{stats.cancelled} cancelled, {len(events)} events, "
        "zero leaked processes/segments)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main_check())
