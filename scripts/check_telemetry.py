#!/usr/bin/env python
"""Validate telemetry artifacts exported by --telemetry-out.

Usage: python scripts/check_telemetry.py OUT_DIR [--profile]

Checks that OUT_DIR holds a metrics.json conforming to the
repro.obs.metrics/v1 schema (with the keys the acceptance criteria
demand), a metrics.csv with the expected header, and a trace.json that
is a structurally valid Chrome trace_event document.

With ``--profile`` (a ``--profile-out`` export from a profiled
distributed run), additionally validates phase_report.json — schema
``repro.obs.prof/v1``, per-worker phase shares that sum to ~1, a
critical path naming a concrete worker and phase — and the merged
trace: exactly one Chrome pid per worker and non-decreasing timestamps
within every complete-event track, so the cross-process merge is one
openable timeline.

Exits non-zero with a message on the first violation; prints a one-line
summary on success. Intended for CI smoke tests — stdlib only.
"""

import json
import os
import sys

PROFILE_SCHEMA = "repro.obs.prof/v1"
WORKER_PID_BASE = 100
PHASES = ("compute", "serialize", "send", "recv_wait", "gap", "idle")

REQUIRED_METRICS = ("sim.rounds", "sim.cycles", "sim.rate_mhz")
SWITCH_SUFFIXES = (".packets_dropped", ".bytes_in", ".bytes_out")
VALID_PHASES = set("BEXibsfnMmpPOND(){}cv")


def fail(message):
    print(f"check_telemetry: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def load_json(path):
    if not os.path.exists(path):
        fail(f"missing artifact: {path}")
    with open(path) as fh:
        try:
            return json.load(fh)
        except ValueError as exc:
            fail(f"{path} is not valid JSON: {exc}")


def check_metrics(out_dir):
    document = load_json(os.path.join(out_dir, "metrics.json"))
    schema = document.get("schema")
    if schema != "repro.obs.metrics/v1":
        fail(f"metrics.json schema is {schema!r}")
    metrics = document.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        fail("metrics.json has no metrics")
    for name in REQUIRED_METRICS:
        if name not in metrics:
            fail(f"metrics.json missing {name}")
        if not isinstance(metrics[name], (int, float)):
            fail(f"{name} is not numeric: {metrics[name]!r}")
    switch_keys = [k for k in metrics if k.startswith("switch.")]
    for suffix in SWITCH_SUFFIXES:
        if not any(k.endswith(suffix) for k in switch_keys):
            fail(f"no switch.*{suffix} metric")
    rate = document.get("rate")
    if not isinstance(rate, dict) or "rate_mhz" not in rate:
        fail("metrics.json missing the rate report")
    return len(metrics)


def check_csv(out_dir):
    path = os.path.join(out_dir, "metrics.csv")
    if not os.path.exists(path):
        fail(f"missing artifact: {path}")
    with open(path) as fh:
        header = fh.readline().strip()
        rows = sum(1 for _ in fh)
    if header != "name,value":
        fail(f"metrics.csv header is {header!r}")
    if rows == 0:
        fail("metrics.csv has no data rows")
    return rows


def check_trace(out_dir):
    document = load_json(os.path.join(out_dir, "trace.json"))
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("trace.json has no traceEvents")
    for index, event in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                fail(f"traceEvents[{index}] missing {key!r}")
        if event["ph"] not in VALID_PHASES:
            fail(f"traceEvents[{index}] has unknown phase {event['ph']!r}")
        if event["ph"] == "X" and "dur" not in event:
            fail(f"traceEvents[{index}] is a complete event without dur")
    names = {e["name"] for e in events}
    if "runworkload" not in names:
        fail("trace.json lacks the runworkload manager span")
    return len(events)


def check_phase_report(out_dir):
    """phase_report.json: schema, shares ~1, a named critical path."""
    document = load_json(os.path.join(out_dir, "phase_report.json"))
    schema = document.get("schema")
    if schema != PROFILE_SCHEMA:
        fail(f"phase_report.json schema is {schema!r}")
    per_worker = document.get("per_worker")
    if not isinstance(per_worker, dict) or not per_worker:
        fail("phase_report.json has no per_worker profiles")
    for worker_id, profile in per_worker.items():
        shares = profile.get("phase_shares")
        if not isinstance(shares, dict):
            fail(f"worker {worker_id} has no phase_shares")
        unknown = set(shares) - set(PHASES)
        if unknown:
            fail(f"worker {worker_id} has unknown phases {sorted(unknown)}")
        total = sum(shares.values())
        if not 0.99 <= total <= 1.01:
            fail(
                f"worker {worker_id} phase shares sum to {total:.4f}, "
                "not ~1.0 — attributed time does not cover round time"
            )
    critical = document.get("critical_path")
    if not isinstance(critical, dict):
        fail("phase_report.json has no critical_path")
    if not isinstance(critical.get("worker"), int):
        fail("critical_path does not name a worker")
    if critical.get("phase") not in PHASES:
        fail(f"critical_path phase is {critical.get('phase')!r}")
    overhead = document.get("profiling_overhead_ratio")
    if not isinstance(overhead, (int, float)) or overhead < 0:
        fail(f"profiling_overhead_ratio is {overhead!r}")
    return len(per_worker)


def check_merged_trace(out_dir, num_workers):
    """The merged trace holds one pid per worker, monotonic per track."""
    document = load_json(os.path.join(out_dir, "trace.json"))
    events = document.get("traceEvents", [])
    worker_pids = sorted(
        {e["pid"] for e in events if e.get("pid", 0) >= WORKER_PID_BASE}
    )
    expected = list(range(WORKER_PID_BASE, WORKER_PID_BASE + num_workers))
    if worker_pids != expected:
        fail(
            f"merged trace worker pids are {worker_pids}, expected "
            f"{expected} (one pid per worker)"
        )
    last_ts = {}
    for index, event in enumerate(events):
        if event.get("ph") != "X":
            continue
        track = (event["pid"], event["tid"])
        ts = event["ts"]
        if ts < last_ts.get(track, float("-inf")):
            fail(
                f"traceEvents[{index}] goes back in time on track "
                f"{track}: ts {ts} after {last_ts[track]}"
            )
        last_ts[track] = ts
    worker_events = sum(
        1 for e in events if e.get("pid", 0) >= WORKER_PID_BASE
    )
    if worker_events == 0:
        fail("merged trace has no worker events")
    return worker_events


def check_out_dir(out_dir):
    """The export directory itself must exist and hold artifacts.

    A session that exits 0 without writing anything would otherwise
    surface as three confusing per-file failures (or, if this script
    were ever pointed at the wrong path, as none at all) — name the
    real problem first.
    """
    if not os.path.isdir(out_dir):
        fail(f"output directory does not exist: {out_dir}")
    if not os.listdir(out_dir):
        fail(f"output directory is empty: {out_dir} "
             "(the session wrote no telemetry artifacts)")


def main(argv):
    args = [a for a in argv[1:] if a != "--profile"]
    profile = "--profile" in argv[1:]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    out_dir = args[0]
    check_out_dir(out_dir)
    metrics = check_metrics(out_dir)
    rows = check_csv(out_dir)
    events = check_trace(out_dir)
    summary = f"{metrics} metrics, {rows} csv rows, {events} trace events"
    if profile:
        workers = check_phase_report(out_dir)
        worker_events = check_merged_trace(out_dir, workers)
        summary += (
            f", {workers}-worker phase report, "
            f"{worker_events} merged worker events"
        )
    print(f"check_telemetry: OK ({summary})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
