#!/usr/bin/env python
"""Validate telemetry artifacts exported by --telemetry-out.

Usage: python scripts/check_telemetry.py OUT_DIR

Checks that OUT_DIR holds a metrics.json conforming to the
repro.obs.metrics/v1 schema (with the keys the acceptance criteria
demand), a metrics.csv with the expected header, and a trace.json that
is a structurally valid Chrome trace_event document. Exits non-zero
with a message on the first violation; prints a one-line summary on
success. Intended for CI smoke tests — stdlib only.
"""

import json
import os
import sys

REQUIRED_METRICS = ("sim.rounds", "sim.cycles", "sim.rate_mhz")
SWITCH_SUFFIXES = (".packets_dropped", ".bytes_in", ".bytes_out")
VALID_PHASES = set("BEXibsfnMmpPOND(){}cv")


def fail(message):
    print(f"check_telemetry: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def load_json(path):
    if not os.path.exists(path):
        fail(f"missing artifact: {path}")
    with open(path) as fh:
        try:
            return json.load(fh)
        except ValueError as exc:
            fail(f"{path} is not valid JSON: {exc}")


def check_metrics(out_dir):
    document = load_json(os.path.join(out_dir, "metrics.json"))
    schema = document.get("schema")
    if schema != "repro.obs.metrics/v1":
        fail(f"metrics.json schema is {schema!r}")
    metrics = document.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        fail("metrics.json has no metrics")
    for name in REQUIRED_METRICS:
        if name not in metrics:
            fail(f"metrics.json missing {name}")
        if not isinstance(metrics[name], (int, float)):
            fail(f"{name} is not numeric: {metrics[name]!r}")
    switch_keys = [k for k in metrics if k.startswith("switch.")]
    for suffix in SWITCH_SUFFIXES:
        if not any(k.endswith(suffix) for k in switch_keys):
            fail(f"no switch.*{suffix} metric")
    rate = document.get("rate")
    if not isinstance(rate, dict) or "rate_mhz" not in rate:
        fail("metrics.json missing the rate report")
    return len(metrics)


def check_csv(out_dir):
    path = os.path.join(out_dir, "metrics.csv")
    if not os.path.exists(path):
        fail(f"missing artifact: {path}")
    with open(path) as fh:
        header = fh.readline().strip()
        rows = sum(1 for _ in fh)
    if header != "name,value":
        fail(f"metrics.csv header is {header!r}")
    if rows == 0:
        fail("metrics.csv has no data rows")
    return rows


def check_trace(out_dir):
    document = load_json(os.path.join(out_dir, "trace.json"))
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("trace.json has no traceEvents")
    for index, event in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                fail(f"traceEvents[{index}] missing {key!r}")
        if event["ph"] not in VALID_PHASES:
            fail(f"traceEvents[{index}] has unknown phase {event['ph']!r}")
        if event["ph"] == "X" and "dur" not in event:
            fail(f"traceEvents[{index}] is a complete event without dur")
    names = {e["name"] for e in events}
    if "runworkload" not in names:
        fail("trace.json lacks the runworkload manager span")
    return len(events)


def check_out_dir(out_dir):
    """The export directory itself must exist and hold artifacts.

    A session that exits 0 without writing anything would otherwise
    surface as three confusing per-file failures (or, if this script
    were ever pointed at the wrong path, as none at all) — name the
    real problem first.
    """
    if not os.path.isdir(out_dir):
        fail(f"output directory does not exist: {out_dir}")
    if not os.listdir(out_dir):
        fail(f"output directory is empty: {out_dir} "
             "(the session wrote no telemetry artifacts)")


def main(argv):
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    out_dir = argv[1]
    check_out_dir(out_dir)
    metrics = check_metrics(out_dir)
    rows = check_csv(out_dir)
    events = check_trace(out_dir)
    print(
        f"check_telemetry: OK ({metrics} metrics, {rows} csv rows, "
        f"{events} trace events)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
