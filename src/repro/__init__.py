"""FireSim reproduction: cycle-exact scale-out system simulation.

A pure-Python reproduction of *FireSim: FPGA-Accelerated Cycle-Exact
Scale-Out System Simulation in the Public Cloud* (Karandikar et al.,
ISCA 2018).  See DESIGN.md for the system inventory and the hardware
substitutions, and EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro import FireSimManager, two_tier

    manager = FireSimManager(two_tier(num_racks=2, servers_per_rack=4))
    manager.buildafi()
    manager.launchrunfarm()
    sim = manager.infrasetup()
    # attach workloads to sim.blade(i), then manager.runworkload(...)

The public API re-exports the pieces most users need; subpackages hold
the full system:

* :mod:`repro.core` — tokens, links, FAME-1 models, the orchestrator;
* :mod:`repro.net` — Ethernet, the switch model, host transports;
* :mod:`repro.tile` — Rocket Chip SoC timing models (Table I/II);
* :mod:`repro.nic` / :mod:`repro.blockdev` — the custom peripherals;
* :mod:`repro.swmodel` — kernel/scheduler/netstack + applications;
* :mod:`repro.pfa` — the Page-Fault Accelerator case study;
* :mod:`repro.host` — EC2 F1 platform, cost, and performance models;
* :mod:`repro.manager` — topology DSL, mapper, build/run farms;
* :mod:`repro.experiments` — one module per paper table/figure.
"""

class ReproError(Exception):
    """Base for every user-facing error raised by the reproduction.

    Catching ``ReproError`` is enough to handle any failure the system
    reports deliberately — configuration mistakes, lifecycle misuse,
    injected faults, checkpoint mismatches.  Defined before the imports
    below so submodules may ``from repro import ReproError`` while this
    package is still initializing.
    """


class ConfigError(ReproError, ValueError):
    """A user-supplied configuration is invalid.

    Subclasses :class:`ValueError` so existing ``except ValueError``
    callers keep working while new code can catch :class:`ReproError`.
    """


from repro.core.clock import DEFAULT_CLOCK, TargetClock
from repro.core.fame import Fame1Model, Fame5Multiplexer
from repro.core.simulation import Simulation
from repro.core.token import Flit, TokenBatch, TokenWindow
from repro.core.channel import TokenStarvationError
from repro.faults.checkpoint import (
    ReplayCheckpoint,
    SimulationSnapshot,
    state_digest,
)
from repro.faults.plan import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    ResilienceStats,
)
from repro.faults.retry import CircuitBreaker, RetryPolicy
from repro.faults.watchdog import TokenWatchdog
from repro.host.costs import cost_report
from repro.host.perfmodel import SimulationRateModel
from repro.manager.manager import FireSimManager
from repro.manager.runfarm import RunFarmConfig, RunningSimulation, elaborate
from repro.manager.topology import (
    ServerNode,
    SwitchNode,
    datacenter_tree,
    single_rack,
    two_tier,
)
from repro.manager.workload import Job, WorkloadSpec, run_workload
from repro.net.ethernet import EthernetFrame, mac_address
from repro.net.switch import SwitchConfig, SwitchModel
from repro.nic.nic import NIC, NICConfig
from repro.swmodel.server import ServerBlade
from repro.tile.soc import NAMED_CONFIGS, RocketChipConfig, config_by_name

__version__ = "1.0.0"

__all__ = [
    "CircuitBreaker",
    "ConfigError",
    "DEFAULT_CLOCK",
    "EthernetFrame",
    "Fame1Model",
    "Fame5Multiplexer",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FireSimManager",
    "Flit",
    "Job",
    "NAMED_CONFIGS",
    "NIC",
    "NICConfig",
    "ReplayCheckpoint",
    "ReproError",
    "ResilienceStats",
    "RetryPolicy",
    "RocketChipConfig",
    "RunFarmConfig",
    "RunningSimulation",
    "ServerBlade",
    "ServerNode",
    "Simulation",
    "SimulationRateModel",
    "SimulationSnapshot",
    "SwitchConfig",
    "SwitchModel",
    "SwitchNode",
    "TargetClock",
    "TokenBatch",
    "TokenStarvationError",
    "TokenWatchdog",
    "TokenWindow",
    "WorkloadSpec",
    "state_digest",
    "config_by_name",
    "cost_report",
    "datacenter_tree",
    "elaborate",
    "mac_address",
    "run_workload",
    "single_rack",
    "two_tier",
]
