"""Block device controller and pluggable storage technology timing models."""
