"""Block device controller (Section III-A3).

The paper adds a block device controller to the server blades so custom
Linux distributions with large root filesystems can boot.  The controller
contains a *frontend* that interfaces with the CPU over MMIO and one or
more *trackers* that move data between memory and the block device:

* To start a transfer the CPU reads the *allocation register*, which
  dispatches a request to a free tracker and returns its ID.
* When the transfer completes, the tracker notifies the frontend, which
  records the tracker ID in the *completion queue* and raises an
  interrupt; the CPU matches the ID against the one it received.
* The device is organized in 512-byte sectors; transfers are multiples of
  512 bytes and must be sector-aligned on the device (memory addresses
  need not be aligned).

The device itself is a software functional + timing model (Table I lists
"Disk — Software Model"); per-sector latency parameters approximate a
modest SSD and are pluggable, anticipating the timing-accurate storage
models of Section VIII.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.tile.caches import MemoryHierarchy

SECTOR_BYTES = 512

InterruptCallback = Callable[[int, int], None]  # (cycle, tracker_id)


@dataclass(frozen=True)
class BlockDeviceConfig:
    """Capacity and timing of the simulated disk.

    Attributes:
        capacity_sectors: device size in 512-byte sectors.
        num_trackers: concurrent outstanding transfers supported.
        request_latency_cycles: fixed per-request device latency.
        sector_cycles: additional device occupancy per sector moved.
    """

    capacity_sectors: int = 32 * 1024 * 1024  # 16 GiB
    num_trackers: int = 4
    request_latency_cycles: int = 32_000  # ~10 us at 3.2 GHz
    sector_cycles: int = 640  # ~0.2 us per 512 B (~2.4 GB/s streaming)


@dataclass
class BlockRequest:
    """One queued transfer (is_write: memory -> device)."""

    sector: int
    num_sectors: int
    mem_addr: int
    is_write: bool


@dataclass
class BlockDeviceStats:
    reads: int = 0
    writes: int = 0
    sectors_moved: int = 0


class BlockDeviceController:
    """Frontend + trackers + functional sector store."""

    def __init__(
        self,
        name: str,
        dma: MemoryHierarchy,
        config: Optional[BlockDeviceConfig] = None,
        timing=None,
    ) -> None:
        self.name = name
        self.dma = dma
        self.config = config or BlockDeviceConfig()
        #: Optional pluggable technology model (Section VIII): a
        #: :class:`repro.blockdev.storage_models.StorageTiming` that
        #: replaces the fixed latency+per-sector constants.
        self.timing = timing
        self._last_sector = 0
        self._tracker_free_cycle: List[int] = [0] * self.config.num_trackers
        self._next_tracker = 0
        #: Functional store: sector index -> opaque contents.
        self.sectors: Dict[int, bytes] = {}
        #: Completion queue of (cycle, tracker_id) the CPU pops.
        self.completion_queue: Deque[tuple[int, int]] = deque()
        self.interrupt_handler: Optional[InterruptCallback] = None
        self.stats = BlockDeviceStats()

    def _check_request(self, request: BlockRequest) -> None:
        if request.num_sectors <= 0:
            raise ValueError("transfer must cover at least one sector")
        if request.sector < 0 or (
            request.sector + request.num_sectors > self.config.capacity_sectors
        ):
            raise ValueError(
                f"sectors [{request.sector}, "
                f"{request.sector + request.num_sectors}) out of range"
            )

    def allocate(self, cycle: int, request: BlockRequest) -> int:
        """The CPU reads the allocation register: dispatch and return ID.

        The returned tracker ID later appears in the completion queue.
        """
        self._check_request(request)
        tracker_id = self._pick_tracker()
        start = max(cycle, self._tracker_free_cycle[tracker_id])
        if self.timing is not None:
            device_time = self.timing.request_cycles(
                request.sector,
                request.num_sectors,
                request.is_write,
                self._last_sector,
            )
            self._last_sector = request.sector + request.num_sectors
        else:
            device_time = (
                self.config.request_latency_cycles
                + request.num_sectors * self.config.sector_cycles
            )
        transfer_bytes = request.num_sectors * SECTOR_BYTES
        if request.is_write:
            dma_done = self.dma.dma_access(
                start, request.mem_addr, transfer_bytes, is_write=False
            )
            completion = dma_done + device_time
            self.stats.writes += 1
        else:
            completion = self.dma.dma_access(
                start + device_time, request.mem_addr, transfer_bytes, is_write=True
            )
            self.stats.reads += 1
        self.stats.sectors_moved += request.num_sectors
        self._tracker_free_cycle[tracker_id] = completion
        self.completion_queue.append((completion, tracker_id))
        if self.interrupt_handler is not None:
            self.interrupt_handler(completion, tracker_id)
        return tracker_id

    def _pick_tracker(self) -> int:
        """Round-robin over trackers, preferring the earliest-free one."""
        best = min(
            range(self.config.num_trackers),
            key=lambda t: (self._tracker_free_cycle[t], t),
        )
        return best

    # -- functional data path (used by filesystem-level tests) -------------

    def write_sectors(self, sector: int, data: bytes) -> None:
        """Functionally store data (sector-aligned, multiple of 512 B)."""
        if len(data) % SECTOR_BYTES != 0:
            raise ValueError(
                f"data length {len(data)} is not a multiple of {SECTOR_BYTES}"
            )
        for i in range(len(data) // SECTOR_BYTES):
            chunk = data[i * SECTOR_BYTES : (i + 1) * SECTOR_BYTES]
            self.sectors[sector + i] = chunk

    def read_sectors(self, sector: int, num_sectors: int) -> bytes:
        """Functionally read sectors (zero-filled where never written)."""
        parts = []
        for i in range(num_sectors):
            parts.append(self.sectors.get(sector + i, b"\x00" * SECTOR_BYTES))
        return b"".join(parts)
