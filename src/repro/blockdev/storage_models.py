"""Pluggable storage timing models (Section VIII).

The paper's ongoing work replaces the functional block device with "a
timing-accurate model with pluggable timing mechanisms for various
storage technologies (Disks, SSDs, 3D XPoint)".  This module implements
that plug point: a :class:`StorageTiming` strategy prices each request,
and :func:`block_config_for` builds a
:class:`~repro.blockdev.controller.BlockDeviceConfig`-compatible device
around it.

Three technologies are modeled:

* :class:`DiskTiming` — spinning rust: seek (distance-dependent) +
  rotational latency + media transfer at the platter rate;
* :class:`SSDTiming` — flash: per-channel parallelism, read/program
  asymmetry, and a write-amplification term standing in for GC;
* :class:`XPointTiming` — 3D XPoint-class persistent memory: near-DRAM
  read latency, modest write penalty, no seek/rotation at all.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.blockdev.controller import SECTOR_BYTES


class StorageTiming(ABC):
    """Prices one transfer: device-side cycles at the 3.2 GHz clock."""

    #: Human-readable technology name.
    name: str = "storage"

    @abstractmethod
    def request_cycles(
        self, sector: int, num_sectors: int, is_write: bool, last_sector: int
    ) -> int:
        """Device occupancy for one request.

        ``last_sector`` is where the head/accessor ended up after the
        previous request, letting seek-class models price locality.
        """


def _us(value: float) -> int:
    """Microseconds to 3.2 GHz cycles."""
    return round(value * 3200)


@dataclass
class DiskTiming(StorageTiming):
    """7200 RPM-class hard disk.

    Attributes:
        full_seek_us: worst-case head sweep.
        rotational_period_us: one revolution (8333 us at 7200 RPM); the
            expected rotational delay is half of it.
        transfer_mbps: sustained media rate.
        total_sectors: geometry for scaling seek distance.
    """

    name: str = "disk"
    full_seek_us: float = 8000.0
    rotational_period_us: float = 8333.0
    transfer_mbps: float = 180.0
    total_sectors: int = 32 * 1024 * 1024

    def request_cycles(self, sector, num_sectors, is_write, last_sector):
        distance = abs(sector - last_sector) / max(self.total_sectors, 1)
        seek_us = self.full_seek_us * (0.3 + 0.7 * distance) if distance else 0.0
        rotation_us = self.rotational_period_us / 2
        transfer_us = (
            num_sectors * SECTOR_BYTES / (self.transfer_mbps * 1e6) * 1e6
        )
        return _us(seek_us + rotation_us + transfer_us)


@dataclass
class SSDTiming(StorageTiming):
    """NVMe-flash-class SSD."""

    name: str = "ssd"
    read_latency_us: float = 80.0
    program_latency_us: float = 500.0
    channels: int = 8
    page_bytes: int = 4096
    write_amplification: float = 1.3

    def request_cycles(self, sector, num_sectors, is_write, last_sector):
        transfer_bytes = num_sectors * SECTOR_BYTES
        pages = -(-transfer_bytes // self.page_bytes)
        waves = -(-pages // self.channels)
        if is_write:
            return _us(waves * self.program_latency_us * self.write_amplification)
        return _us(waves * self.read_latency_us)


@dataclass
class XPointTiming(StorageTiming):
    """3D XPoint-class persistent memory on the storage interface."""

    name: str = "3dxpoint"
    read_latency_us: float = 10.0
    write_latency_us: float = 30.0
    bandwidth_gbps: float = 2.4  # GB/s

    def request_cycles(self, sector, num_sectors, is_write, last_sector):
        base_us = self.write_latency_us if is_write else self.read_latency_us
        transfer_us = (
            num_sectors * SECTOR_BYTES / (self.bandwidth_gbps * 1e9) * 1e6
        )
        return _us(base_us + transfer_us)


class TimedStorageDevice:
    """A sector store whose requests are priced by a pluggable model.

    This is the §VIII upgrade path for the block device: the controller
    keeps its frontend/tracker structure, and the per-request device time
    comes from the chosen technology model instead of the fixed
    latency+per-sector constants.
    """

    def __init__(self, timing: StorageTiming, capacity_sectors: int = 32 * 1024 * 1024) -> None:
        self.timing = timing
        self.capacity_sectors = capacity_sectors
        self._last_sector = 0
        self._busy_until = 0
        self.requests = 0

    def submit(self, cycle: int, sector: int, num_sectors: int, is_write: bool) -> int:
        """Queue one request; returns its completion cycle."""
        if sector < 0 or sector + num_sectors > self.capacity_sectors:
            raise ValueError("request outside device")
        if num_sectors < 1:
            raise ValueError("request must cover at least one sector")
        start = max(cycle, self._busy_until)
        device_cycles = self.timing.request_cycles(
            sector, num_sectors, is_write, self._last_sector
        )
        completion = start + device_cycles
        self._busy_until = completion
        self._last_sector = sector + num_sectors
        self.requests += 1
        return completion


#: Registry for manager configuration by name.
STORAGE_MODELS = {
    "disk": DiskTiming,
    "ssd": SSDTiming,
    "3dxpoint": XPointTiming,
}


def storage_model(name: str, **kwargs) -> StorageTiming:
    try:
        return STORAGE_MODELS[name](**kwargs)
    except KeyError:
        raise ValueError(
            f"unknown storage technology {name!r}; known: {sorted(STORAGE_MODELS)}"
        ) from None
