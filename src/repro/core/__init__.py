"""Core simulation framework: tokens, links, FAME-1 models, orchestration."""
