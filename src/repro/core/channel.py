"""Simulated links: latency-buffered token channels.

A :class:`Link` models a target link of latency ``l`` cycles connecting two
FAME-1 decoupled endpoints.  Exactly ``l`` tokens are in flight in each
direction at any time: if an endpoint issues a token at cycle ``M`` the
other side consumes it at cycle ``M + l`` (paper Section III-B2).  The link
implements this by relabelling batches with ``+l`` as they are sent, and by
priming each direction with ``l`` empty tokens covering cycles ``[0, l)``
(step 1 of the walk-through in Section III-B2).

The simulation advances in rounds of a fixed *quantum* ``Q <= l`` cycles.
Each round, each endpoint consumes one window of ``Q`` input tokens from
each link and produces one window of ``Q`` output tokens, so the in-flight
count is invariant and the distributed simulation is deadlock-free and
deterministic.  Batching up to the link latency does not compromise cycle
accuracy (Section III-B2); a smaller quantum is equally exact, merely
slower on the host.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro.core.token import TokenBatch
from repro import ReproError


class TokenStarvationError(ReproError):
    """A channel stopped advancing: an endpoint lacks input tokens.

    In a healthy token-coordinated simulation this can never happen —
    links are primed with one latency of empty tokens and every round
    conserves the in-flight count.  It *does* happen when a transport
    hop loses a batch (the fault model's lost-heartbeat / stalled-socket
    scenario, injected via :meth:`Link.lose_in_flight`).  The message
    names the stalled endpoint so the diagnosis is actionable.
    """

    def __init__(
        self,
        message: str,
        model_name: str = "",
        port: str = "",
        link_name: str = "",
        cycle: int = 0,
    ) -> None:
        super().__init__(message)
        self.model_name = model_name
        self.port = port
        self.link_name = link_name
        self.cycle = cycle


class LinkEndpoint:
    """One direction's consuming end of a link (a token queue).

    Queue entries are :class:`~repro.core.token.TokenBatch` objects or
    anything duck-typing their window shape (``start_cycle`` /
    ``length`` / ``end_cycle`` / ``flits``) — in practice the batched
    engine's :class:`~repro.perf.stream.TokenStream`.  Every method
    here works on the mix, so the two engines can interleave on one
    simulation (e.g. a scalar replay over queues a batched run filled).

    The batched engine inlines the aligned fast case of :meth:`push`
    and :meth:`pop` (whole-window append/popleft); any change to the
    contiguity or gap semantics here must be mirrored in
    :mod:`repro.perf.engine`.
    """

    __slots__ = ("_queue", "_consumed_until", "_pushed_until", "_gap_at")

    def __init__(self) -> None:
        self._queue: Deque[Any] = deque()
        self._consumed_until = 0
        # End cycle of the newest batch ever pushed.  Normally equals the
        # queue tail's end; after a discard_tail it preserves the
        # producer's cursor so pushes stay aligned across the gap.
        self._pushed_until = 0
        # Start cycle of a lost batch, if any: tokens at or beyond this
        # cycle are unreachable and the consumer will starve there.
        self._gap_at: "int | None" = None

    def push(self, batch: Any) -> None:
        """Enqueue a batch/stream; windows must be contiguous in cycle order."""
        if batch.start_cycle != self._pushed_until:
            raise ValueError(
                f"non-contiguous batch: expected start {self._pushed_until}, "
                f"got {batch.start_cycle}"
            )
        self._queue.append(batch)
        self._pushed_until = batch.end_cycle

    def pop(self, length: int) -> TokenBatch:
        """Consume exactly ``length`` tokens from the head of the queue.

        Gathers across queued batches and splits the final one if needed,
        so any quantum not exceeding the buffered token count works.
        Stream entries are consumed through their lazy ``flits`` view and
        come back as plain batches; split tails are always batches.
        """
        if self.available_tokens < length:
            raise LookupError(
                f"token queue holds {self.available_tokens} tokens, "
                f"need {length}: endpoint would deadlock"
            )
        out = TokenBatch(self._consumed_until, length)
        remaining = length
        while remaining > 0:
            head = self._queue[0]
            if head.length <= remaining:
                self._queue.popleft()
                out.flits.update(head.flits)
                remaining -= head.length
            else:
                split_at = head.start_cycle + remaining
                tail = TokenBatch(split_at, head.length - remaining)
                for cycle, flit in head.flits.items():
                    if cycle < split_at:
                        out.flits[cycle] = flit
                    else:
                        tail.flits[cycle] = flit
                self._queue[0] = tail
                remaining = 0
        self._consumed_until += length
        return out

    def discard_tail(self) -> int:
        """Drop the most recently enqueued batch; returns its length.

        Models a transport hop losing one in-flight token batch (fault
        injection only — a healthy link never discards).  The producer's
        push cursor is left untouched, so later batches still enqueue
        beyond the hole — but the consumer can never advance past it:
        :attr:`available_tokens` stops at the gap, and the pop that
        reaches it starves, which is exactly what the watchdog
        diagnostics are for.
        """
        if not self._queue:
            return 0
        lost = self._queue.pop()
        if self._gap_at is None or lost.start_cycle < self._gap_at:
            self._gap_at = lost.start_cycle
        return lost.length

    def mark_gap(self, start_cycle: int, end_cycle: int) -> None:
        """Record a window ``[start_cycle, end_cycle)`` lost *in transit*.

        The transport twin of :meth:`discard_tail`: a remote producer
        shipped the window but the hop dropped it, so the consumer
        never even enqueues it.  The producer cursor still advances
        past the hole (later windows stay contiguous) while
        :attr:`available_tokens` stops at the gap — the pop that
        reaches it starves with the same diagnostics as a local loss.
        """
        if self._gap_at is None or start_cycle < self._gap_at:
            self._gap_at = start_cycle
        if end_cycle > self._pushed_until:
            self._pushed_until = end_cycle

    @property
    def available_tokens(self) -> int:
        """Tokens consumable contiguously from the consumer's cursor."""
        total = sum(batch.length for batch in self._queue)
        if self._gap_at is not None:
            return min(total, max(0, self._gap_at - self._consumed_until))
        return total

    @property
    def consumed_until(self) -> int:
        return self._consumed_until

    @property
    def pushed_until(self) -> int:
        """End cycle of the newest batch ever pushed (the producer cursor).

        A remote transport hop uses this to assert that batches arriving
        from another worker process are still contiguous in cycle order.
        """
        return self._pushed_until


class Link:
    """A bidirectional target link of fixed latency between sides A and B.

    ``send_from_a(batch)`` relabels the batch by ``+latency`` cycles and
    enqueues it for consumption at side B, and vice versa.  Statistics
    track the number of valid tokens moved in each direction.
    """

    def __init__(self, latency_cycles: int, name: str = "") -> None:
        if latency_cycles <= 0:
            raise ValueError(
                f"link latency must be positive, got {latency_cycles}"
            )
        self.latency = latency_cycles
        self.name = name
        self.to_b = LinkEndpoint()  # tokens travelling A -> B
        self.to_a = LinkEndpoint()  # tokens travelling B -> A
        self.flits_a_to_b = 0
        self.flits_b_to_a = 0
        self._primed = False

    def prime(self) -> None:
        """Seed both directions with one link latency of empty tokens."""
        if self._primed:
            raise RuntimeError(f"link {self.name!r} already primed")
        self.to_b.push(TokenBatch.empty(0, self.latency))
        self.to_a.push(TokenBatch.empty(0, self.latency))
        self._primed = True

    @property
    def primed(self) -> bool:
        return self._primed

    def shift_for_transport(self, batch: TokenBatch) -> TokenBatch:
        """Relabel a batch by ``+latency`` without enqueueing it.

        This is the cycle arithmetic of :meth:`send_from_a` alone — a
        remote link endpoint applies it before handing the batch to a
        host transport (pipe/socket) instead of a local queue, so
        cross-process links keep the exact ``M -> M + l`` timing of
        in-process ones.
        """
        shifted = TokenBatch(batch.start_cycle + self.latency, batch.length)
        for cycle, flit in batch.flits.items():
            shifted.flits[cycle + self.latency] = flit
        return shifted

    _shift = shift_for_transport

    def send_from_a(self, batch: TokenBatch) -> None:
        """Side A transmits a window; side B will consume it ``l`` later."""
        self.flits_a_to_b += batch.valid_count
        self.to_b.push(self._shift(batch))

    def send_from_b(self, batch: TokenBatch) -> None:
        """Side B transmits a window; side A will consume it ``l`` later."""
        self.flits_b_to_a += batch.valid_count
        self.to_a.push(self._shift(batch))

    def in_flight(self, direction: str) -> int:
        """Tokens currently buffered in one direction ('a_to_b'/'b_to_a')."""
        if direction == "a_to_b":
            return self.to_b.available_tokens
        if direction == "b_to_a":
            return self.to_a.available_tokens
        raise ValueError(f"unknown direction {direction!r}")

    def lose_in_flight(self, direction: str = "a_to_b") -> int:
        """Lose the newest in-flight batch in one direction (fault hook).

        Returns the number of tokens lost.  Used by the fault injector
        to model a dropped transport batch; the receiving endpoint will
        raise :class:`TokenStarvationError` when it reaches the gap.
        """
        endpoint = self.to_b if direction == "a_to_b" else self.to_a
        if direction not in ("a_to_b", "b_to_a"):
            raise ValueError(f"unknown direction {direction!r}")
        return endpoint.discard_tail()
