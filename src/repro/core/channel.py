"""Simulated links: latency-buffered token channels.

A :class:`Link` models a target link of latency ``l`` cycles connecting two
FAME-1 decoupled endpoints.  Exactly ``l`` tokens are in flight in each
direction at any time: if an endpoint issues a token at cycle ``M`` the
other side consumes it at cycle ``M + l`` (paper Section III-B2).  The link
implements this by relabelling batches with ``+l`` as they are sent, and by
priming each direction with ``l`` empty tokens covering cycles ``[0, l)``
(step 1 of the walk-through in Section III-B2).

The simulation advances in rounds of a fixed *quantum* ``Q <= l`` cycles.
Each round, each endpoint consumes one window of ``Q`` input tokens from
each link and produces one window of ``Q`` output tokens, so the in-flight
count is invariant and the distributed simulation is deadlock-free and
deterministic.  Batching up to the link latency does not compromise cycle
accuracy (Section III-B2); a smaller quantum is equally exact, merely
slower on the host.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.core.token import Flit, TokenBatch


class LinkEndpoint:
    """One direction's consuming end of a link (a token queue)."""

    __slots__ = ("_queue", "_consumed_until")

    def __init__(self) -> None:
        self._queue: Deque[TokenBatch] = deque()
        self._consumed_until = 0

    def push(self, batch: TokenBatch) -> None:
        """Enqueue a batch; batches must be contiguous in cycle order."""
        if self._queue:
            expected = self._queue[-1].end_cycle
        else:
            expected = self._consumed_until
        if batch.start_cycle != expected:
            raise ValueError(
                f"non-contiguous batch: expected start {expected}, "
                f"got {batch.start_cycle}"
            )
        self._queue.append(batch)

    def pop(self, length: int) -> TokenBatch:
        """Consume exactly ``length`` tokens from the head of the queue.

        Gathers across queued batches and splits the final one if needed,
        so any quantum not exceeding the buffered token count works.
        """
        if self.available_tokens < length:
            raise LookupError(
                f"token queue holds {self.available_tokens} tokens, "
                f"need {length}: endpoint would deadlock"
            )
        out = TokenBatch(self._consumed_until, length)
        remaining = length
        while remaining > 0:
            head = self._queue[0]
            if head.length <= remaining:
                self._queue.popleft()
                out.flits.update(head.flits)
                remaining -= head.length
            else:
                split_at = head.start_cycle + remaining
                tail = TokenBatch(split_at, head.length - remaining)
                for cycle, flit in head.flits.items():
                    if cycle < split_at:
                        out.flits[cycle] = flit
                    else:
                        tail.flits[cycle] = flit
                self._queue[0] = tail
                remaining = 0
        self._consumed_until += length
        return out

    @property
    def available_tokens(self) -> int:
        return sum(batch.length for batch in self._queue)

    @property
    def consumed_until(self) -> int:
        return self._consumed_until


class Link:
    """A bidirectional target link of fixed latency between sides A and B.

    ``send_from_a(batch)`` relabels the batch by ``+latency`` cycles and
    enqueues it for consumption at side B, and vice versa.  Statistics
    track the number of valid tokens moved in each direction.
    """

    def __init__(self, latency_cycles: int, name: str = "") -> None:
        if latency_cycles <= 0:
            raise ValueError(
                f"link latency must be positive, got {latency_cycles}"
            )
        self.latency = latency_cycles
        self.name = name
        self.to_b = LinkEndpoint()  # tokens travelling A -> B
        self.to_a = LinkEndpoint()  # tokens travelling B -> A
        self.flits_a_to_b = 0
        self.flits_b_to_a = 0
        self._primed = False

    def prime(self) -> None:
        """Seed both directions with one link latency of empty tokens."""
        if self._primed:
            raise RuntimeError(f"link {self.name!r} already primed")
        self.to_b.push(TokenBatch.empty(0, self.latency))
        self.to_a.push(TokenBatch.empty(0, self.latency))
        self._primed = True

    @property
    def primed(self) -> bool:
        return self._primed

    def _shift(self, batch: TokenBatch) -> TokenBatch:
        shifted = TokenBatch(batch.start_cycle + self.latency, batch.length)
        for cycle, flit in batch.flits.items():
            shifted.flits[cycle + self.latency] = flit
        return shifted

    def send_from_a(self, batch: TokenBatch) -> None:
        """Side A transmits a window; side B will consume it ``l`` later."""
        self.flits_a_to_b += batch.valid_count
        self.to_b.push(self._shift(batch))

    def send_from_b(self, batch: TokenBatch) -> None:
        """Side B transmits a window; side A will consume it ``l`` later."""
        self.flits_b_to_a += batch.valid_count
        self.to_a.push(self._shift(batch))

    def in_flight(self, direction: str) -> int:
        """Tokens currently buffered in one direction ('a_to_b'/'b_to_a')."""
        if direction == "a_to_b":
            return self.to_b.available_tokens
        if direction == "b_to_a":
            return self.to_a.available_tokens
        raise ValueError(f"unknown direction {direction!r}")
