"""Target clock domain.

FireSim models every target component against a single notion of target
time: when the configuration says the processor runs at ``f`` Hz, every
model that needs target time (the network, the DRAM timing model, the OS
model) treats one cycle as ``1/f`` seconds (paper Section III-A1, Table I).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import units


@dataclass(frozen=True)
class TargetClock:
    """An immutable description of the target clock domain.

    Attributes:
        freq_hz: target clock frequency in Hz.  The paper's server blades
            run at 3.2 GHz.
    """

    freq_hz: float = 3.2e9

    def __post_init__(self) -> None:
        if self.freq_hz <= 0:
            raise ValueError(f"frequency must be positive, got {self.freq_hz}")

    @property
    def period_s(self) -> float:
        """Length of one target cycle in seconds."""
        return 1.0 / self.freq_hz

    def cycles(self, seconds: float) -> int:
        """Convert seconds of target time to cycles (nearest)."""
        return units.cycles_from_seconds(seconds, self.freq_hz)

    def seconds(self, cycles: int) -> float:
        """Convert cycles to seconds of target time."""
        return units.seconds_from_cycles(cycles, self.freq_hz)

    def micros(self, cycles: int) -> float:
        """Convert cycles to microseconds of target time."""
        return self.seconds(cycles) / units.MICROSECONDS

    def cycles_per_microsecond(self) -> float:
        return self.freq_hz * units.MICROSECONDS

    def link_bandwidth_bps(self) -> float:
        """Bandwidth of one flit-per-cycle link in this clock domain."""
        return units.link_bandwidth_bps(self.freq_hz)


#: The default clock used throughout the paper's evaluation (3.2 GHz).
DEFAULT_CLOCK = TargetClock(3.2e9)
