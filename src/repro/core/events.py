"""A minimal deterministic event queue for intra-model scheduling.

Server blades internally run a discrete-event simulation (cores, DMA
engines, interrupts) inside each token window.  This queue is deliberately
tiny: events are ``(cycle, sequence, callback)`` tuples, with the sequence
number breaking ties so same-cycle events fire in insertion order — a
requirement for deterministic simulations (paper Section III-B2 stresses
that token exchange makes every target cycle deterministic; intra-model
scheduling must not reintroduce host nondeterminism).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

EventCallback = Callable[[int], None]


class EventQueue:
    """A deterministic min-heap of cycle-stamped callbacks."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, EventCallback]] = []
        self._seq = itertools.count()
        self._cancelled: set[int] = set()

    def schedule(self, cycle: int, callback: EventCallback) -> int:
        """Schedule ``callback(cycle)`` to fire at the given cycle.

        Returns a handle usable with :meth:`cancel`.
        """
        if cycle < 0:
            raise ValueError(f"cycle must be >= 0, got {cycle}")
        handle = next(self._seq)
        heapq.heappush(self._heap, (cycle, handle, callback))
        return handle

    def cancel(self, handle: int) -> None:
        """Cancel a previously scheduled event (lazy removal)."""
        self._cancelled.add(handle)

    def next_cycle(self) -> Optional[int]:
        """Cycle of the earliest pending event, or None if empty."""
        while self._heap and self._heap[0][1] in self._cancelled:
            _, handle, _ = heapq.heappop(self._heap)
            self._cancelled.discard(handle)
        if not self._heap:
            return None
        return self._heap[0][0]

    def run_until(self, end_cycle: int) -> int:
        """Fire all events with cycle < ``end_cycle``; return count fired.

        Events may schedule further events; newly scheduled events inside
        the window also fire, in cycle order.
        """
        fired = 0
        while True:
            nxt = self.next_cycle()
            if nxt is None or nxt >= end_cycle:
                return fired
            cycle, handle, callback = heapq.heappop(self._heap)
            if handle in self._cancelled:
                self._cancelled.discard(handle)
                continue
            callback(cycle)
            fired += 1

    def __len__(self) -> int:
        return len(self._heap) - len(self._cancelled)

    @property
    def empty(self) -> bool:
        return self.next_cycle() is None
