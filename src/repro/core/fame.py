"""FAME-1 decoupled model framework.

FireSim turns target RTL into simulation models with the FAME-1 transform
(Tan et al. [24]; paper Section III-A4): every I/O interface of the design
is *decoupled* — each target cycle, the model must receive a token on each
input interface and produce a token on each output interface for the
simulation to advance.  If any input lacks a token, the model stalls until
one arrives, which is what makes I/O timing exact.

In this reproduction a :class:`Fame1Model` is a Python object that is
ticked over windows of target cycles.  The contract enforced here is the
token-conservation law at the heart of FAME-1:

* one input batch per port per window, covering exactly the window;
* one output batch per port per window, covering exactly the window.

The orchestrator (:mod:`repro.core.simulation`) refuses to advance a model
without input tokens, mirroring the stall behaviour of the hardware.

:class:`Fame5Multiplexer` implements the FAME-5 optimization sketched in
Section VIII: multiple logical models share one physical pipeline
(host-multithreading), trading simulation performance for capacity.  It is
functionally transparent — outputs are identical to running the models
separately — while the host performance model charges for the sharing.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence

from repro.core.token import TokenBatch, TokenWindow


class Fame1Model(ABC):
    """Base class for token-decoupled cycle-exact models.

    Subclasses define ``ports`` (interface names) and implement
    :meth:`_tick`, which consumes one window of input tokens per port and
    fills one output batch per port.  :meth:`tick` wraps it with the
    token-conservation checks.
    """

    def __init__(self, name: str, ports: Sequence[str]) -> None:
        if not name:
            raise ValueError("model name must be non-empty")
        if len(set(ports)) != len(ports):
            raise ValueError(f"duplicate port names in {list(ports)}")
        self.name = name
        self.ports: List[str] = list(ports)
        self.current_cycle = 0  # first cycle not yet simulated

    # -- subclass interface ------------------------------------------------

    @abstractmethod
    def _tick(
        self, window: TokenWindow, inputs: Dict[str, TokenBatch]
    ) -> Dict[str, TokenBatch]:
        """Advance target time across ``window`` and return output batches."""

    def idle_outputs(
        self, window: TokenWindow
    ) -> "Optional[Dict[str, TokenBatch]]":
        """Outputs for an all-idle input window, or None to force a tick.

        The batched engine (:mod:`repro.perf.engine`) calls this instead
        of :meth:`_tick` when every input batch in the window carries
        zero valid tokens — *only* on subclasses that override it.  An
        override must return exactly what :meth:`_tick` would for
        all-empty inputs while leaving all model state untouched, or
        return None when that cannot be guaranteed (e.g. a switch with
        queued packets still draining).  Models that do work even on
        quiet windows — server blades run their event queues and
        generate traffic — must not override this.

        Subclasses that override this may additionally define
        ``idle_horizon() -> Optional[int]``: the first cycle at or after
        ``current_cycle`` at which the model could act without receiving
        a valid token (``None`` meaning never).  The batched engine uses
        it to fast-forward whole runs of provably idle rounds; returning
        ``current_cycle`` opts a window out.  It is only consulted
        immediately after :meth:`idle_outputs` returned a window, so
        implementations may assume whatever that return established.
        """
        return None

    # -- framework ---------------------------------------------------------

    def tick(
        self, window: TokenWindow, inputs: Dict[str, TokenBatch]
    ) -> Dict[str, TokenBatch]:
        """Advance the model one window, enforcing token conservation."""
        if window.start != self.current_cycle:
            raise ValueError(
                f"{self.name}: window starts at {window.start} but model "
                f"is at cycle {self.current_cycle}"
            )
        self._check_batches("input", window, inputs)
        outputs = self._tick(window, inputs)
        self._check_batches("output", window, outputs)
        self.current_cycle = window.end
        return outputs

    def _check_batches(
        self, kind: str, window: TokenWindow, batches: Dict[str, TokenBatch]
    ) -> None:
        missing = set(self.ports) - set(batches)
        extra = set(batches) - set(self.ports)
        if missing or extra:
            raise ValueError(
                f"{self.name}: {kind} ports mismatch "
                f"(missing={sorted(missing)}, extra={sorted(extra)})"
            )
        for port, batch in batches.items():
            if batch.start_cycle != window.start or batch.length != window.length:
                raise ValueError(
                    f"{self.name}.{port}: {kind} batch "
                    f"[{batch.start_cycle}, {batch.end_cycle}) does not "
                    f"cover window [{window.start}, {window.end})"
                )


class Fame5Multiplexer(Fame1Model):
    """Host-multithreading of several logical models onto one pipeline.

    FAME-5 (paper Section VIII) maps multiple simulated cores onto each
    physical pipeline on the FPGA, at the cost of simulation performance
    and reduced physical memory per simulated core.  This wrapper presents
    the union of its children's ports, prefixed by the child's name, and
    ticks the children round-robin — deterministically — within each
    window.
    """

    def __init__(self, name: str, models: Sequence[Fame1Model]) -> None:
        if not models:
            raise ValueError("Fame5Multiplexer needs at least one model")
        names = [m.name for m in models]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate child model names: {names}")
        ports = [
            f"{model.name}.{port}" for model in models for port in model.ports
        ]
        super().__init__(name, ports)
        self.models = list(models)

    @property
    def multiplexing_factor(self) -> int:
        """How many logical models share the physical pipeline."""
        return len(self.models)

    def _tick(
        self, window: TokenWindow, inputs: Dict[str, TokenBatch]
    ) -> Dict[str, TokenBatch]:
        outputs: Dict[str, TokenBatch] = {}
        for model in self.models:
            child_inputs = {
                port: inputs[f"{model.name}.{port}"] for port in model.ports
            }
            child_outputs = model.tick(window, child_inputs)
            for port, batch in child_outputs.items():
                outputs[f"{model.name}.{port}"] = batch
        return outputs


class NullModel(Fame1Model):
    """A model that sinks all input tokens and emits empty tokens.

    Useful for terminating unused ports (e.g. an unconnected switch port)
    and in tests.
    """

    def _tick(
        self, window: TokenWindow, inputs: Dict[str, TokenBatch]
    ) -> Dict[str, TokenBatch]:
        return {port: window.new_batch() for port in self.ports}

    def idle_outputs(
        self, window: TokenWindow
    ) -> Optional[Dict[str, TokenBatch]]:
        """A null sink is stateless: an idle window needs no tick."""
        if type(self)._tick is not NullModel._tick:
            return None
        return {port: window.new_batch() for port in self.ports}

    def idle_horizon(self) -> Optional[int]:
        """A null sink never acts spontaneously (see the base docstring)."""
        if type(self)._tick is not NullModel._tick:
            return self.current_cycle
        return None
