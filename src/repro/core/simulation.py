"""Global simulation orchestration.

FireSim coordinates target time globally through token exchange: no NIC or
switch port advances unless it has input tokens to consume, so every
server simulation computes each target cycle deterministically even though
host nodes are decoupled (paper Section III-B2).

This orchestrator reproduces that execution model on one host process:

* models (:class:`~repro.core.fame.Fame1Model`) attach their ports to
  :class:`~repro.core.channel.Link` objects of per-link latency;
* simulation advances in rounds of a *quantum* ``Q`` equal to the smallest
  link latency (token batching up to the link latency, Section III-B2);
* each round every model pops one ``Q``-cycle window per input port, ticks,
  and pushes one ``Q``-cycle window per output port.

Because links are primed with one latency of empty tokens, every pop is
guaranteed to succeed — the simulated cluster can never deadlock — and the
result is bit-identical regardless of the order models are ticked in.  We
still tick in deterministic insertion order so host-side state (RNG draws
inside models) is reproducible too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from repro.core.channel import Link, LinkEndpoint, TokenStarvationError
from repro.core.clock import DEFAULT_CLOCK, TargetClock
from repro.core.fame import Fame1Model
from repro.core.token import TokenBatch, TokenWindow


@dataclass
class _Attachment:
    """Where one (model, port) sends to and receives from."""

    link: Link
    side: str  # "a" or "b"

    def receive(self, length: int) -> TokenBatch:
        endpoint = self.link.to_a if self.side == "a" else self.link.to_b
        return endpoint.pop(length)

    def transmit(self, batch: TokenBatch) -> None:
        if self.side == "a":
            self.link.send_from_a(batch)
        else:
            self.link.send_from_b(batch)


@dataclass
class SimulationStats:
    """Aggregate counters the orchestrator maintains while running."""

    rounds: int = 0
    cycles: int = 0
    tokens_moved: int = 0
    valid_tokens_moved: int = 0

    @property
    def utilization(self) -> float:
        """Fraction of moved tokens that carried valid data."""
        if self.tokens_moved == 0:
            return 0.0
        return self.valid_tokens_moved / self.tokens_moved


#: Execution engines ``run_until`` can dispatch to.  "scalar" is the
#: reference round loop below; "batched" is the vectorized hot path in
#: :mod:`repro.perf.engine`, bit-identical in every observable (cycle
#: timestamps, counters, tracer records) but faster on the host.
ENGINES = ("scalar", "batched")


class Simulation:
    """A cycle-exact, token-coordinated simulation of a target cluster."""

    def __init__(
        self,
        clock: TargetClock = DEFAULT_CLOCK,
        quantum_override: Optional[int] = None,
        engine: str = "scalar",
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        #: Which round-loop implementation ``run_until`` uses.  May be
        #: reassigned between runs; both engines leave identical state,
        #: so switching mid-simulation is safe.
        self.engine = engine
        self.clock = clock
        self.models: List[Fame1Model] = []
        self.links: List[Link] = []
        self._attachments: Dict[Tuple[int, str], _Attachment] = {}
        self.current_cycle = 0
        self.stats = SimulationStats()
        #: Optional round observer (a :class:`repro.obs.rate.RateMonitor`).
        #: When None the round loop takes the unobserved fast path, so an
        #: untelemetered run pays one None check per round.
        self.observer: Optional[Any] = None
        #: Optional fault hook (a :class:`repro.faults.plan.FaultInjector`
        #: arms one).  Called as ``hook(cycle, model)`` at each round
        #: start (``model=None``) and after each model's tick; it may
        #: raise to model a simulation-controller crash, or mutate link
        #: state to model transport loss.  None costs one check per
        #: round plus one per tick — the same budget as ``observer``.
        self.fault_hook: Optional[Any] = None
        self._started = False
        if quantum_override is not None and quantum_override < 1:
            raise ValueError("quantum override must be >= 1 cycle")
        #: Optional smaller-than-latency round quantum.  Batching *up to*
        #: the link latency is what preserves cycle accuracy; any smaller
        #: quantum is equally exact, just slower on the host — the
        #: batching-ablation bench demonstrates both properties.
        self.quantum_override = quantum_override

    # -- construction --------------------------------------------------

    def add_model(self, model: Fame1Model) -> Fame1Model:
        """Register a model; all of its ports must be connected later."""
        if self._started:
            raise RuntimeError("cannot add models after simulation start")
        if any(existing is model for existing in self.models):
            raise ValueError(f"model {model.name!r} already added")
        self.models.append(model)
        return model

    def connect(
        self,
        model_a: Fame1Model,
        port_a: str,
        model_b: Fame1Model,
        port_b: str,
        latency_cycles: int,
        name: str = "",
    ) -> Link:
        """Create a link of the given latency between two model ports."""
        if self._started:
            raise RuntimeError("cannot connect links after simulation start")
        for model, port in ((model_a, port_a), (model_b, port_b)):
            if port not in model.ports:
                raise ValueError(f"{model.name} has no port {port!r}")
            key = (id(model), port)
            if key in self._attachments:
                raise ValueError(f"{model.name}.{port} already connected")
        link = Link(latency_cycles, name or f"{model_a.name}.{port_a}<->{model_b.name}.{port_b}")
        self.links.append(link)
        self._attachments[(id(model_a), port_a)] = _Attachment(link, "a")
        self._attachments[(id(model_b), port_b)] = _Attachment(link, "b")
        return link

    # -- execution --------------------------------------------------------

    @property
    def quantum(self) -> int:
        """Cycles advanced per round: the smallest link latency.

        Token batches of up to one link latency preserve cycle accuracy;
        using the minimum across links keeps every link's exchange exact.
        """
        if not self.links:
            return 1
        natural = min(link.latency for link in self.links)
        if self.quantum_override is not None:
            if self.quantum_override > natural:
                raise ValueError(
                    f"quantum override {self.quantum_override} exceeds the "
                    f"smallest link latency {natural}; tokens would be "
                    "consumed before they exist"
                )
            return self.quantum_override
        return natural

    def _start(self) -> None:
        for model in self.models:
            for port in model.ports:
                if (id(model), port) not in self._attachments:
                    raise RuntimeError(
                        f"{model.name}.{port} is not connected; attach a "
                        "NullModel to terminate unused ports"
                    )
        for link in self.links:
            link.prime()
        self._started = True

    def start(self) -> None:
        """Validate connectivity and prime every link (idempotent).

        ``run_until`` calls this lazily; distributed execution calls it
        explicitly so the primed state exists *before* the model/link
        graph is sharded across worker processes.
        """
        if not self._started:
            self._start()

    def run_cycles(self, cycles: int) -> None:
        """Advance the whole target by at least ``cycles`` target cycles.

        Rounds are whole quanta, so the simulation may run up to one
        quantum beyond the requested point (check ``current_cycle``).
        """
        if cycles < 0:
            raise ValueError(f"cycles must be >= 0, got {cycles}")
        self.run_until(self.current_cycle + cycles)

    def run_until(self, target_cycle: int) -> None:
        """Advance until ``current_cycle >= target_cycle``."""
        if not self._started:
            self._start()
        if self.engine == "batched":
            # Imported lazily: repro.perf depends on this module.
            from repro.perf.engine import run_batched

            run_batched(self, target_cycle)
            return
        if self.engine != "scalar":
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )
        quantum = self.quantum
        while self.current_cycle < target_cycle:
            self._run_round(quantum)

    def run_seconds(self, seconds: float) -> None:
        """Advance by a duration of target time."""
        self.run_cycles(self.clock.cycles(seconds))

    def _run_round(self, quantum: int) -> None:
        if self.observer is not None:
            self._run_round_observed(quantum)
            return
        hook = self.fault_hook
        if hook is not None:
            hook(self.current_cycle, None)
        window = TokenWindow(self.current_cycle, self.current_cycle + quantum)
        for model in self.models:
            try:
                inputs = {
                    port: self._attachments[(id(model), port)].receive(quantum)
                    for port in model.ports
                }
            except LookupError as exc:
                raise self._starvation_diagnostic(model, quantum) from exc
            outputs = model.tick(window, inputs)
            for port, batch in outputs.items():
                self._attachments[(id(model), port)].transmit(batch)
                self.stats.tokens_moved += batch.length
                self.stats.valid_tokens_moved += batch.valid_count
            if hook is not None:
                hook(self.current_cycle, model)
        self.current_cycle = window.end
        self.stats.rounds += 1
        self.stats.cycles += quantum

    def _run_round_observed(self, quantum: int) -> None:
        """The observed twin of :meth:`_run_round`.

        Identical token movement, but each model tick is bracketed with
        host timestamps reported to the observer (per-model tick spans
        and per-round wall clock).  Kept separate so the unobserved path
        carries no timing calls at all.
        """
        observer = self.observer
        hook = self.fault_hook
        if hook is not None:
            hook(self.current_cycle, None)
        window = TokenWindow(self.current_cycle, self.current_cycle + quantum)
        round_start = perf_counter()
        for model in self.models:
            try:
                inputs = {
                    port: self._attachments[(id(model), port)].receive(quantum)
                    for port in model.ports
                }
            except LookupError as exc:
                raise self._starvation_diagnostic(model, quantum) from exc
            tick_start = perf_counter()
            outputs = model.tick(window, inputs)
            tick_end = perf_counter()
            observer.record_model_tick(
                model.name, tick_start, tick_end, window.start, window.end
            )
            for port, batch in outputs.items():
                self._attachments[(id(model), port)].transmit(batch)
                self.stats.tokens_moved += batch.length
                self.stats.valid_tokens_moved += batch.valid_count
            if hook is not None:
                hook(self.current_cycle, model)
        self.current_cycle = window.end
        self.stats.rounds += 1
        self.stats.cycles += quantum
        observer.record_round(quantum, perf_counter() - round_start)

    def _starvation_diagnostic(
        self, model: Fame1Model, quantum: int
    ) -> TokenStarvationError:
        """Name the stalled endpoint(s) behind a failed token pop.

        Runs only on the (exceptional) starvation path, so the hot loop
        keeps its plain dict comprehension.
        """
        for port in model.ports:
            attachment = self._attachments[(id(model), port)]
            endpoint = (
                attachment.link.to_a
                if attachment.side == "a"
                else attachment.link.to_b
            )
            if endpoint.available_tokens < quantum:
                return TokenStarvationError(
                    f"channel stalled: {model.name}.{port} on link "
                    f"{attachment.link.name!r} holds "
                    f"{endpoint.available_tokens} of {quantum} tokens at "
                    f"cycle {self.current_cycle} — a transport hop lost a "
                    "token batch or the peer stopped advancing",
                    model_name=model.name,
                    port=port,
                    link_name=attachment.link.name,
                    cycle=self.current_cycle,
                )
        return TokenStarvationError(
            f"channel stalled feeding {model.name} at cycle "
            f"{self.current_cycle}",
            model_name=model.name,
            cycle=self.current_cycle,
        )

    def register_metrics(self, registry: Any, prefix: str = "sim") -> None:
        """Expose the aggregate counters through a metrics registry."""
        registry.register_source(prefix, self.stats)

    # -- partitioning ------------------------------------------------------

    def partition_key(self, model: Fame1Model) -> str:
        """Stable, seed-independent identity of a model for partitioning.

        The key is the model's name: elaboration derives names from the
        topology (``node3``, ``switch1``), never from RNG draws or host
        object identity, so the same target always yields the same keys
        in the same order.  Requires names to be unique across the
        simulation — partitioning is meaningless otherwise.
        """
        self._check_unique_names()
        if not any(existing is model for existing in self.models):
            raise ValueError(f"model {model.name!r} is not part of this simulation")
        return model.name

    def partition_keys(self) -> List[str]:
        """Every model's :meth:`partition_key`, in registration order.

        Registration order is the topology traversal order, so it is
        identical across re-elaborations of the same target regardless
        of seeds — the property distributed partitioning relies on.
        """
        self._check_unique_names()
        return [model.name for model in self.models]

    def _check_unique_names(self) -> None:
        names = [model.name for model in self.models]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(
                f"model names are not unique ({dupes}); partitioning "
                "needs one stable key per model"
            )

    def link_attachments(
        self,
    ) -> List[Tuple[Link, Tuple[Fame1Model, str], Tuple[Fame1Model, str]]]:
        """The link graph: ``(link, (model_a, port_a), (model_b, port_b))``.

        Links appear in creation order; within each entry the "a" side is
        first.  This is the read-only view partitioning uses to find
        links crossing shard boundaries.
        """
        sides: Dict[int, Dict[str, Tuple[Fame1Model, str]]] = {}
        by_id: Dict[int, Fame1Model] = {id(m): m for m in self.models}
        for (model_id, port), attachment in self._attachments.items():
            sides.setdefault(id(attachment.link), {})[attachment.side] = (
                by_id[model_id],
                port,
            )
        out = []
        for link in self.links:
            pair = sides.get(id(link), {})
            if "a" not in pair or "b" not in pair:
                raise RuntimeError(
                    f"link {link.name!r} is missing an attachment"
                )
            out.append((link, pair["a"], pair["b"]))
        return out

    # -- inspection --------------------------------------------------------

    @property
    def current_time_s(self) -> float:
        """Target time reached so far, in seconds."""
        return self.clock.seconds(self.current_cycle)

    def link_between(
        self, model_a: Fame1Model, port_a: str
    ) -> Optional[Link]:
        """The link attached to a model port, if any."""
        attachment = self._attachments.get((id(model_a), port_a))
        return attachment.link if attachment else None
