"""Simulation tokens and token batches.

The fundamental unit of data on a simulated link is a *token* representing
one target cycle's worth of data (paper Section III-B2).  A token consists
of a target payload (data + valid) and a "last" metadata bit marking the
end of a packet so the transport does not need to parse link-layer
protocols.

A link of latency ``N`` always has ``N`` tokens in flight.  Token movement
is batched up to the link latency without compromising cycle accuracy; a
:class:`TokenBatch` is one such batch.

Implementation note: a batch stores only the *valid* tokens (sparse map of
cycle -> flit).  Cycles absent from the map are empty tokens — cycles where
the endpoint received nothing from the network.  This keeps host cost
proportional to traffic while timestamp arithmetic stays identical to
iterating every cycle (tests assert the paper's ``2l + m + n`` delivery
formula holds exactly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class Flit:
    """One valid token's payload.

    Attributes:
        data: opaque payload reference.  For Ethernet links this is the
            owning :class:`repro.net.ethernet.EthernetFrame`; models never
            inspect raw bytes, only sizes and metadata, which is all the
            timing model needs.
        last: True when this token is the final token of a packet.
        index: position of this flit within its packet (0-based), used by
            reassembly buffers to detect truncated packets.
    """

    data: Any
    last: bool = False
    index: int = 0


class TokenBatch:
    """A contiguous window of ``length`` tokens starting at ``start_cycle``.

    The batch covers target cycles ``[start_cycle, start_cycle + length)``.
    Valid tokens live in a sparse dict keyed by absolute target cycle.
    """

    __slots__ = ("start_cycle", "length", "flits")

    def __init__(
        self,
        start_cycle: int,
        length: int,
        flits: Optional[Dict[int, Flit]] = None,
    ) -> None:
        if length <= 0:
            raise ValueError(f"batch length must be positive, got {length}")
        if start_cycle < 0:
            raise ValueError(f"start cycle must be >= 0, got {start_cycle}")
        self.start_cycle = start_cycle
        self.length = length
        self.flits: Dict[int, Flit] = {}
        if flits:
            for cycle, flit in flits.items():
                self.add(cycle, flit)

    # -- construction ---------------------------------------------------

    @classmethod
    def empty(cls, start_cycle: int, length: int) -> "TokenBatch":
        """A batch of all-empty tokens (a quiet link)."""
        return cls(start_cycle, length)

    def add(self, cycle: int, flit: Flit) -> None:
        """Place a valid token at an absolute target cycle.

        Raises:
            ValueError: if the cycle falls outside the batch window or the
                cycle already holds a valid token (a link carries at most
                one flit per cycle).
        """
        if not self.contains_cycle(cycle):
            raise ValueError(
                f"cycle {cycle} outside batch window "
                f"[{self.start_cycle}, {self.end_cycle})"
            )
        if cycle in self.flits:
            raise ValueError(f"cycle {cycle} already carries a flit")
        self.flits[cycle] = flit

    # -- inspection -------------------------------------------------------

    @property
    def end_cycle(self) -> int:
        """One past the last cycle covered by this batch."""
        return self.start_cycle + self.length

    def contains_cycle(self, cycle: int) -> bool:
        return self.start_cycle <= cycle < self.end_cycle

    def __len__(self) -> int:
        return self.length

    @property
    def valid_count(self) -> int:
        """Number of valid (non-empty) tokens in the batch."""
        return len(self.flits)

    def iter_flits(self) -> Iterator[Tuple[int, Flit]]:
        """Yield ``(cycle, flit)`` pairs in cycle order."""
        for cycle in sorted(self.flits):
            yield cycle, self.flits[cycle]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TokenBatch(start={self.start_cycle}, len={self.length}, "
            f"valid={self.valid_count})"
        )


@dataclass
class TokenWindow:
    """The half-open cycle window ``[start, end)`` a model ticks over.

    Models receive one window per tick; every input port supplies a batch
    covering exactly this window, and every output port must produce one.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty window [{self.start}, {self.end})")

    @property
    def length(self) -> int:
        return self.end - self.start

    def new_batch(self) -> TokenBatch:
        """An empty output batch covering this window."""
        return TokenBatch.empty(self.start, self.length)


def split_packets(flits: List[Tuple[int, Flit]]) -> List[List[Tuple[int, Flit]]]:
    """Group an ordered flit stream into packets using the ``last`` bits.

    A trailing group without a ``last`` marker is returned as a partial
    packet (the caller keeps it for the next window).
    """
    packets: List[List[Tuple[int, Flit]]] = []
    current: List[Tuple[int, Flit]] = []
    for cycle, flit in flits:
        current.append((cycle, flit))
        if flit.last:
            packets.append(current)
            current = []
    if current:
        packets.append(current)
    return packets
