"""Unit helpers: frequencies, bandwidths, times, and cycle conversions.

All target-time arithmetic in the simulator is done in integer *cycles* of
the target clock (paper Section III-A1: a target frequency ``f`` means one
cycle is ``1/f`` seconds).  This module centralizes the conversions so that
experiments can be written in natural units (microseconds, Gbit/s) while the
core stays exact.
"""

from __future__ import annotations

# -- SI prefixes -------------------------------------------------------------

KILO = 1_000
MEGA = 1_000_000
GIGA = 1_000_000_000
TERA = 1_000_000_000_000

KHZ = KILO
MHZ = MEGA
GHZ = GIGA

# Times are expressed in seconds (float) at API boundaries.
NANOSECONDS = 1e-9
MICROSECONDS = 1e-6
MILLISECONDS = 1e-3

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024

#: Width of one network flit in bytes (paper Section III-B2: 64-bit data
#: field per token for the 200 Gbit/s links at 3.2 GHz).
FLIT_BYTES = 8
FLIT_BITS = FLIT_BYTES * 8


def cycles_from_seconds(seconds: float, freq_hz: float) -> int:
    """Convert a duration in seconds to a whole number of target cycles.

    Rounds to the nearest cycle; guards against negative durations.

    >>> cycles_from_seconds(2e-6, 3.2e9)
    6400
    """
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    return round(seconds * freq_hz)


def seconds_from_cycles(cycles: int, freq_hz: float) -> float:
    """Convert a cycle count back to seconds of target time."""
    return cycles / freq_hz


def bits_per_cycle(bandwidth_bps: float, freq_hz: float) -> float:
    """How many bits one target cycle carries at a given link bandwidth."""
    return bandwidth_bps / freq_hz


def link_bandwidth_bps(freq_hz: float, flit_bits: int = FLIT_BITS) -> float:
    """Raw bandwidth of a link that moves one flit per target cycle.

    At 3.2 GHz with 64-bit flits this is 204.8 Gbit/s, which the paper
    rounds to the nominal "200 Gbit/s" link.
    """
    return freq_hz * flit_bits


def flits_for_bytes(size_bytes: int, flit_bytes: int = FLIT_BYTES) -> int:
    """Number of flits needed to carry ``size_bytes`` of payload."""
    if size_bytes < 0:
        raise ValueError(f"size must be non-negative, got {size_bytes}")
    if size_bytes == 0:
        return 1  # a zero-length frame still occupies one token
    return -(-size_bytes // flit_bytes)  # ceil division


def gbps(value: float) -> float:
    """Gigabits per second expressed in bits per second."""
    return value * GIGA


def microseconds(value: float) -> float:
    """Microseconds expressed in seconds."""
    return value * MICROSECONDS


def nanoseconds(value: float) -> float:
    """Nanoseconds expressed in seconds."""
    return value * NANOSECONDS
