"""repro.dist — partitioned multi-process execution of a simulation.

FireSim scales past one FPGA by mapping racks onto EC2 instances and
letting simulation *tokens* — not a global clock — keep the distributed
pieces cycle-exact (paper Sections III-B2 and III-C).  This package
reproduces that architecture with OS processes standing in for
instances:

* :mod:`repro.dist.partition` — shard the model/link graph by the
  manager's host placement (:class:`PartitionPlan`);
* :mod:`repro.dist.remote_link` — split boundary links into a local
  consuming queue plus a transport-fed producing side, preserving
  latency priming and gap semantics bit-for-bit;
* :mod:`repro.dist.worker` — the per-process shard round loop,
  lockstepped purely by token exchange;
* :mod:`repro.dist.shm` — zero-copy shared-memory ring transport
  between worker pairs (:class:`ShmRing`), selected with
  ``transport="shm"``;
* :mod:`repro.dist.supervisor` — liveness supervision: workers
  heartbeat into a pre-fork shared control block
  (:class:`HeartbeatBlock`) and the parent's :class:`Supervisor`
  detects and kills hung workers against an adaptive round deadline;
* :mod:`repro.dist.engine` — fork workers, watch for crashes and
  hangs, merge shard counters back (:func:`run_distributed`).

The headline property, enforced by ``tests/test_dist.py``: a
distributed run is *bit-identical* to the serial engine in cycle
timestamps, switch byte counters, and workload results, for any worker
count the topology supports.
"""

from repro.dist.engine import (
    DistributedRunResult,
    RunAborted,
    run_distributed,
)
from repro.dist.partition import (
    BoundaryLink,
    PartitionPlan,
    plan_from_assignment,
    plan_partitions,
)
from repro.dist.remote_link import (
    LostWindow,
    Outbox,
    RemoteAttachment,
    deliver,
)
from repro.dist.shm import ShmRing, leaked_segments
from repro.dist.supervisor import (
    HeartbeatBlock,
    Supervisor,
    SupervisorConfig,
)
from repro.dist.worker import (
    PipeChannel,
    ShardContext,
    WorkerResult,
    run_shard,
)

__all__ = [
    "BoundaryLink",
    "DistributedRunResult",
    "HeartbeatBlock",
    "LostWindow",
    "Outbox",
    "PartitionPlan",
    "PipeChannel",
    "RemoteAttachment",
    "RunAborted",
    "ShardContext",
    "ShmRing",
    "Supervisor",
    "SupervisorConfig",
    "WorkerResult",
    "deliver",
    "leaked_segments",
    "plan_from_assignment",
    "plan_partitions",
    "run_distributed",
    "run_shard",
]
