"""The distributed run driver: fork workers, exchange tokens, merge.

:func:`run_distributed` is the multi-process twin of
:meth:`repro.core.simulation.Simulation.run_until`.  The parent process
elaborates and primes the simulation once, forks one worker per
partition (each inherits the full memory image, so nothing is pickled
on the way in), and then only *watches*: workers synchronize purely by
token exchange over per-pair queues, exactly as FireSim's distributed
simulation needs no global barrier (paper Section III-B2).  When every
worker reports its :class:`~repro.dist.worker.WorkerResult`, the parent
merges shard-local counters — switch statistics, blade result stores,
tracer records, link flit counts, aggregate token counts — back onto
its own model objects, so downstream consumers (workload summaries,
``status`` output, telemetry) see the same objects they would after a
serial run.

A worker that dies — injected controller crash, starvation after a
lost batch, or a genuine defect — is detected by the parent's poll
loop (an ``("error", ...)`` report or a bare nonzero exit), surviving
workers are torn down, and the failure is raised as a
:class:`~repro.faults.plan.WorkerCrash` *host fault* so the manager's
resilience layer can checkpoint-restore onto fewer workers.

Caveat, stated loudly: after a distributed run the parent's model
*internals* (switch queues, blade kernels, link queues) are stale —
only the merged counters above are authoritative.  Checkpoints of a
distributed run must therefore be taken at the pre-fork cycle, which is
what :class:`repro.manager.manager.FireSimManager` does.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from queue import Empty
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from repro.core.simulation import Simulation
from repro.dist.partition import PartitionPlan
from repro.dist.worker import ShardContext, WorkerResult, shard_entry
from repro.faults.plan import WorkerCrash
from repro.net.transport import WORKER_PIPE

#: Pickled wire cost of one boundary batch's sparse header (measured
#: ~95 bytes for an empty 6400-token batch, rounded up) and of one
#: valid token (Flit plus its frame reference).  Unlike FireSim's
#: FPGA-side transport, which ships every token uncompressed, the
#: worker pipe moves the sparse in-memory representation — payload
#: scales with *valid* tokens, not the quantum.
_BATCH_WIRE_BYTES = 128
_VALID_TOKEN_WIRE_BYTES = 64

#: How long the parent waits between liveness sweeps of the workers.
_POLL_INTERVAL_S = 0.2
#: Grace period for a finished worker's process to exit after its
#: result arrived.
_JOIN_TIMEOUT_S = 10.0


@dataclass
class DistributedRunResult:
    """What a distributed run produced, plus its performance envelope."""

    plan: PartitionPlan
    quantum: int
    start_cycle: int
    end_cycle: int
    rounds: int
    #: Parent-observed wall time from first fork to last merge.
    wall_seconds: float
    workers: List[WorkerResult] = field(default_factory=list)
    boundary_link_count: int = 0

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle

    @property
    def num_workers(self) -> int:
        return self.plan.num_workers

    def measured_rate_mhz(self) -> float:
        """Achieved simulation rate as actually observed on this host."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.cycles / self.wall_seconds / 1e6

    def per_worker_rate_mhz(self) -> Dict[int, float]:
        return {w.worker_id: w.rate_mhz() for w in self.workers}

    # -- critical-path model ---------------------------------------------
    #
    # On a host with one core per worker, a round takes as long as its
    # slowest worker: that worker's model-tick time plus its WORKER_PIPE
    # transport cost.  The latency is charged ONCE per round, not per
    # peer: every mp.Queue owns its own feeder thread, so a worker's
    # sends to different peers pickle and fly in parallel, and the
    # receiver only ever blocks on the slowest in-flight hop.  The
    # bandwidth term uses the *actual* wire payload — batches ship in
    # their sparse representation, so bytes scale with valid tokens
    # carried, not with the quantum (see _BATCH_WIRE_BYTES above).  The
    # serial engine's round is the *sum* of all tick times with no
    # transport.  Both sides are derived from the same measured
    # per-model host seconds, so the modeled speedup isolates the
    # partitioning benefit from this container's core count — the same
    # technique repro.host.perfmodel uses for the Figure 8 curves.

    def _measured_tick_seconds(self) -> Optional[Dict[int, float]]:
        if not self.workers or self.rounds == 0:
            return None
        if not any(w.model_host_seconds for w in self.workers):
            return None  # run was not measured
        return {
            w.worker_id: sum(w.model_host_seconds.values())
            for w in self.workers
        }

    def _pipe_seconds_per_round(self, worker: WorkerResult) -> float:
        if worker.peer_count == 0 or self.rounds == 0:
            return 0.0
        valid_per_round = worker.boundary_valid_tokens / self.rounds
        wire_bytes = (
            worker.boundary_link_count * _BATCH_WIRE_BYTES
            + valid_per_round * _VALID_TOKEN_WIRE_BYTES
        )
        return (
            WORKER_PIPE.one_way_latency_s
            + wire_bytes / WORKER_PIPE.bandwidth_bytes_per_s
        )

    def modeled_round_seconds(self) -> Optional[Dict[int, float]]:
        """Per-worker modeled seconds per round; None unless measured."""
        ticks = self._measured_tick_seconds()
        if ticks is None:
            return None
        return {
            w.worker_id: ticks[w.worker_id] / self.rounds
            + self._pipe_seconds_per_round(w)
            for w in self.workers
        }

    def modeled_rate_mhz(self) -> Optional[float]:
        """Modeled distributed rate: quantum over the slowest worker's round."""
        per_round = self.modeled_round_seconds()
        if not per_round:
            return None
        critical = max(per_round.values())
        if critical <= 0.0:
            return None
        return self.quantum / critical / 1e6

    def modeled_serial_rate_mhz(self) -> Optional[float]:
        """Modeled serial rate from the same tick measurements."""
        ticks = self._measured_tick_seconds()
        if ticks is None or self.rounds == 0:
            return None
        total_round = sum(ticks.values()) / self.rounds
        if total_round <= 0.0:
            return None
        return self.quantum / total_round / 1e6

    def modeled_speedup(self) -> Optional[float]:
        distributed = self.modeled_rate_mhz()
        serial = self.modeled_serial_rate_mhz()
        if distributed is None or serial is None or serial == 0.0:
            return None
        return distributed / serial

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly summary for ``status`` output and benchmarks."""
        out: Dict[str, Any] = {
            "num_workers": self.num_workers,
            "quantum": self.quantum,
            "cycles": self.cycles,
            "rounds": self.rounds,
            "boundary_links": self.boundary_link_count,
            "wall_seconds": self.wall_seconds,
            "measured_rate_mhz": self.measured_rate_mhz(),
            "per_worker_rate_mhz": {
                str(worker): rate
                for worker, rate in sorted(self.per_worker_rate_mhz().items())
            },
        }
        modeled = self.modeled_rate_mhz()
        if modeled is not None:
            out["modeled_rate_mhz"] = modeled
            out["modeled_serial_rate_mhz"] = self.modeled_serial_rate_mhz()
            out["modeled_speedup"] = self.modeled_speedup()
        return out


def _directed_pairs(
    plan: PartitionPlan, simulation: Simulation
) -> List[Tuple[int, int]]:
    pairs = set()
    for boundary in plan.boundaries(simulation):
        pairs.add((boundary.worker_a, boundary.worker_b))
        pairs.add((boundary.worker_b, boundary.worker_a))
    return sorted(pairs)


def _merge_results(
    simulation: Simulation,
    plan: PartitionPlan,
    results: Dict[int, WorkerResult],
) -> None:
    """Fold every worker's shard-local counters back onto parent objects."""
    by_key = {
        simulation.partition_key(model): model for model in simulation.models
    }
    links = simulation.links
    for worker_id in sorted(results):
        result = results[worker_id]
        for name, stats in result.switch_stats.items():
            by_key[name].stats = stats
        for name, stores in result.blade_results.items():
            kernel_results = by_key[name].kernel.results
            kernel_results.clear()
            kernel_results.update(stores)
        for name, records in result.tracer_records.items():
            tracer = by_key[name]
            tracer.records[:] = records
        for index, (a_to_b, b_to_a) in result.link_flits.items():
            if a_to_b is not None:
                links[index].flits_a_to_b = a_to_b
            if b_to_a is not None:
                links[index].flits_b_to_a = b_to_a


def run_distributed(
    simulation: Simulation,
    plan: PartitionPlan,
    target_cycle: int,
    *,
    measure: bool = False,
) -> DistributedRunResult:
    """Advance ``simulation`` to ``target_cycle`` across forked workers.

    Bit-identical to ``simulation.run_until(target_cycle)`` in cycle
    timestamps, switch counters, and blade results (see
    ``tests/test_dist.py`` for the enforced equivalence).  Fault hooks
    armed on the simulation before the call are inherited by every
    worker; a hook that fires in a worker kills that worker and
    surfaces here as :class:`~repro.faults.plan.WorkerCrash`.

    Requires a platform with the ``fork`` start method (Linux): workers
    must inherit the elaborated simulation by memory image, because
    model closures (workload jobs) are not picklable.
    """
    plan.validate_against(simulation)
    simulation.start()
    start_cycle = simulation.current_cycle
    if target_cycle <= start_cycle:
        return DistributedRunResult(
            plan=plan,
            quantum=simulation.quantum,
            start_cycle=start_cycle,
            end_cycle=start_cycle,
            rounds=0,
            wall_seconds=0.0,
            boundary_link_count=len(plan.boundaries(simulation)),
        )

    context = multiprocessing.get_context("fork")
    queues = {pair: context.Queue() for pair in _directed_pairs(plan, simulation)}
    result_queue = context.Queue()
    shard_context = ShardContext(
        simulation=simulation,
        plan=plan,
        target_cycle=target_cycle,
        quantum=simulation.quantum,
        measure=measure,
        queues=queues,
        result_queue=result_queue,
    )

    wall_start = perf_counter()
    processes: Dict[int, Any] = {}
    for worker_id in range(plan.num_workers):
        process = context.Process(
            target=shard_entry,
            args=(shard_context, worker_id),
            name=f"repro-dist-w{worker_id}",
        )
        process.start()
        processes[worker_id] = process

    results: Dict[int, WorkerResult] = {}
    failure: Optional[Tuple[int, Optional[int], str]] = None
    try:
        while len(results) < plan.num_workers and failure is None:
            try:
                message = result_queue.get(timeout=_POLL_INTERVAL_S)
            except Empty:
                for worker_id, process in processes.items():
                    if (
                        worker_id not in results
                        and not process.is_alive()
                        and process.exitcode not in (0, None)
                    ):
                        failure = (
                            worker_id,
                            None,
                            f"worker process exited with code "
                            f"{process.exitcode} before reporting",
                        )
                        break
                continue
            if message[0] == "ok":
                _, worker_id, result = message
                results[worker_id] = result
            else:
                _, worker_id, at_cycle, detail = message
                failure = (worker_id, at_cycle, detail)
    finally:
        if failure is not None:
            for process in processes.values():
                if process.is_alive():
                    process.terminate()
        for process in processes.values():
            process.join(timeout=_JOIN_TIMEOUT_S)

    if failure is not None:
        worker_id, at_cycle, detail = failure
        raise WorkerCrash(
            f"distributed worker {worker_id} died: {detail}",
            worker_index=worker_id,
            at_cycle=at_cycle,
        )

    wall_seconds = perf_counter() - wall_start
    _merge_results(simulation, plan, results)
    ordered = [results[worker_id] for worker_id in sorted(results)]
    rounds = ordered[0].rounds
    end_cycle = ordered[0].end_cycle
    simulation.current_cycle = end_cycle
    simulation.stats.rounds += rounds
    simulation.stats.cycles += end_cycle - start_cycle
    simulation.stats.tokens_moved += sum(w.tokens_moved for w in ordered)
    simulation.stats.valid_tokens_moved += sum(
        w.valid_tokens_moved for w in ordered
    )
    return DistributedRunResult(
        plan=plan,
        quantum=shard_context.quantum,
        start_cycle=start_cycle,
        end_cycle=end_cycle,
        rounds=rounds,
        wall_seconds=wall_seconds,
        workers=ordered,
        boundary_link_count=len(plan.boundaries(simulation)),
    )
