"""The distributed run driver: fork workers, exchange tokens, merge.

:func:`run_distributed` is the multi-process twin of
:meth:`repro.core.simulation.Simulation.run_until`.  The parent process
elaborates and primes the simulation once, forks one worker per
partition (each inherits the full memory image, so nothing is pickled
on the way in), and then only *watches*: workers synchronize purely by
token exchange over per-pair queues, exactly as FireSim's distributed
simulation needs no global barrier (paper Section III-B2).  When every
worker reports its :class:`~repro.dist.worker.WorkerResult`, the parent
merges shard-local counters — switch statistics, blade result stores,
tracer records, link flit counts, aggregate token counts — back onto
its own model objects, so downstream consumers (workload summaries,
``status`` output, telemetry) see the same objects they would after a
serial run.

A worker that dies — injected controller crash, starvation after a
lost batch, or a genuine defect — is detected by the parent's poll
loop (an ``("error", ...)`` report or a bare dead-without-result
process), surviving workers are torn down, and the failure is raised
as a :class:`~repro.faults.plan.WorkerCrash` *host fault* so the
manager's resilience layer can checkpoint-restore onto fewer workers.
A worker that *hangs* is caught by the same loop through the
:mod:`repro.dist.supervisor` heartbeat block: zero heartbeat progress
past an adaptive deadline gets the worker killed (SIGTERM -> SIGKILL)
and surfaces as :class:`~repro.faults.plan.WorkerHang`, and a shm
frame that fails its integrity check is re-raised as the typed
:class:`~repro.faults.plan.RingCorruption` the worker reported.

Caveat, stated loudly: after a distributed run the parent's model
*internals* (switch queues, blade kernels, link queues) are stale —
only the merged counters above are authoritative.  Checkpoints of a
distributed run must therefore be taken at the pre-fork cycle, which is
what :class:`repro.manager.manager.FireSimManager` does.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from queue import Empty
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import ConfigError, ReproError
from repro.core.simulation import Simulation
from repro.dist.partition import PartitionPlan
from repro.dist.shm import (
    DEFAULT_RING_CAPACITY,
    DEFAULT_TRANSPORT_TIMEOUT_S,
    ShmRing,
)
from repro.dist.supervisor import (
    HeartbeatBlock,
    Supervisor,
    SupervisorConfig,
)
from repro.dist.worker import (
    PipeChannel,
    ShardContext,
    WorkerResult,
    shard_entry,
)
from repro.faults.plan import RingCorruption, WorkerCrash, WorkerHang
from repro.host.perfmodel import exchange_quantum
from repro.net.transport import SHM_RING, WORKER_PIPE, TransportSpec
from repro.obs.prof import ProfileConfig

#: Per-transport wire cost of one boundary window's entry-table row and
#: of one valid token.  Unlike FireSim's FPGA-side transport, which
#: ships every token uncompressed, both worker transports move the
#: sparse in-memory representation — payload scales with *valid*
#: tokens, not the quantum.  Both now ship the same coalesced
#: :mod:`repro.dist.frame` payload (one 25-byte table row per window,
#: 8 raw cycle bytes plus the pickled flit payload per valid token);
#: the small constant covers table row + amortized blob overhead.
_TRANSPORT_SPEC: Dict[str, TransportSpec] = {
    "pipe": WORKER_PIPE,
    "shm": SHM_RING,
}
_BATCH_WIRE_BYTES = {"pipe": 32, "shm": 32}
_VALID_TOKEN_WIRE_BYTES = {"pipe": 72, "shm": 72}

#: How long the parent waits between liveness sweeps of the workers.
_POLL_INTERVAL_S = 0.2
#: Grace period for a finished worker's process to exit after its
#: result arrived.
_JOIN_TIMEOUT_S = 10.0
#: Grace period for a cleanly exited (code 0) worker's result to drain
#: out of the queue's feeder pipe before the parent declares it dead
#: without a result.  The put happens before the exit, so anything
#: longer than a scheduler hiccup means the result is genuinely gone.
_RESULT_GRACE_S = 2.0


class RunAborted(ReproError, RuntimeError):
    """A distributed run was stopped on purpose, not by a fault.

    Raised when the caller's ``should_abort`` hook (the job server's
    preemption/cancel seam) asks :func:`run_distributed` to stop
    mid-run.  The parent simulation is left exactly as it was before
    the call — no partial worker state is merged — so the caller can
    restore its pre-fork checkpoint and later rerun deterministically.
    Deliberately *not* a :class:`~repro.faults.plan.FaultError`: the
    manager's retry/restore machinery must not treat an intentional
    eviction as a host failure.
    """


@dataclass
class DistributedRunResult:
    """What a distributed run produced, plus its performance envelope."""

    plan: PartitionPlan
    quantum: int
    start_cycle: int
    end_cycle: int
    rounds: int
    #: Parent-observed wall time from first fork to last merge.
    wall_seconds: float
    workers: List[WorkerResult] = field(default_factory=list)
    boundary_link_count: int = 0
    #: Cycles between boundary token exchanges — equals ``quantum``
    #: unless the adaptive derivation found headroom under the
    #: partition's boundary-latency floor (paper Fig 9: rate grows with
    #: batch size, bounded by link latency).
    round_quantum: int = 0
    #: Transport that actually carried the boundary tokens ("pipe" or
    #: "shm") — may differ from the requested one after a fallback.
    transport: str = "pipe"
    #: Directed channels built for the run (queues or rings) — one per
    #: worker pair that actually shares boundary links.
    channel_count: int = 0
    #: Transport the caller asked for; differs from ``transport`` only
    #: after a shm-unavailable fallback to pipes.
    requested_transport: str = "pipe"
    #: The run's :meth:`Supervisor.report` — heartbeat/hang telemetry
    #: for ``status --json`` and the ``dist.supervisor.*`` gauges.
    supervision: Optional[Dict[str, Any]] = None

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle

    @property
    def profiled(self) -> bool:
        """True when workers carried phase profiles back."""
        return any(w.profile is not None for w in self.workers)

    @property
    def num_workers(self) -> int:
        return self.plan.num_workers

    @property
    def rounds_per_exchange(self) -> int:
        """Local rounds between boundary exchanges (>= 1)."""
        round_quantum = self.round_quantum or self.quantum
        return max(1, round_quantum // self.quantum)

    @property
    def exchange_rounds(self) -> int:
        """Boundary exchanges actually performed (messages per channel)."""
        return self.rounds // self.rounds_per_exchange

    def measured_rate_mhz(self) -> float:
        """Achieved simulation rate as actually observed on this host."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.cycles / self.wall_seconds / 1e6

    def measured_critical_path_mhz(self) -> float:
        """Rate implied by the busiest worker's CPU seconds.

        On hosts with fewer cores than workers the wall clock
        serializes the workers, so ``measured_rate_mhz`` measures the
        host, not the partitioning.  Blocking recv waits burn ~no CPU,
        so the max per-worker ``process_time`` is the run's critical
        path — what the same run achieves with a core per worker, which
        is the deployment the paper's scale-out claim is about.
        """
        if not self.workers:
            return 0.0
        busiest = max(w.cpu_seconds for w in self.workers)
        if busiest <= 0.0:
            return 0.0
        return self.cycles / busiest / 1e6

    def per_worker_rate_mhz(self) -> Dict[int, float]:
        return {w.worker_id: w.rate_mhz() for w in self.workers}

    # -- critical-path model ---------------------------------------------
    #
    # On a host with one core per worker, a round takes as long as its
    # slowest worker: that worker's model-tick time plus the transport
    # cost of the hop that carried its boundary tokens (WORKER_PIPE or
    # SHM_RING, matching the run's actual transport).  The latency is
    # charged ONCE per round, not per peer: pipe sends to different
    # peers pickle and fly on parallel feeder threads, and shm sends
    # are non-blocking ring publishes, so the receiver only ever blocks
    # on the slowest in-flight hop.  The bandwidth term uses the
    # *actual* wire payload — batches ship in their sparse
    # representation, so bytes scale with valid tokens carried, not
    # with the quantum (see _BATCH_WIRE_BYTES above).  The serial
    # engine's round is the *sum* of all tick times with no transport.
    # Both sides are derived from the same measured per-model host
    # seconds, so the modeled speedup isolates the partitioning benefit
    # from this container's core count — the same technique
    # repro.host.perfmodel uses for the Figure 8 curves.

    def _measured_tick_seconds(self) -> Optional[Dict[int, float]]:
        if not self.workers or self.rounds == 0:
            return None
        if not any(w.model_host_seconds for w in self.workers):
            return None  # run was not measured
        return {
            w.worker_id: sum(w.model_host_seconds.values())
            for w in self.workers
        }

    def _transport_seconds_per_round(self, worker: WorkerResult) -> float:
        if worker.peer_count == 0 or self.rounds == 0:
            return 0.0
        spec = _TRANSPORT_SPEC[self.transport]
        # The hop latency is paid once per *exchange*, amortized over
        # the rounds it covers (Fig 9's batch-size lever); the
        # bandwidth term is per-round regardless — each round still
        # contributes one table row per boundary link plus its valid
        # tokens to the coalesced payload.
        valid_per_round = worker.boundary_valid_tokens / self.rounds
        wire_bytes = (
            worker.boundary_link_count * _BATCH_WIRE_BYTES[self.transport]
            + valid_per_round * _VALID_TOKEN_WIRE_BYTES[self.transport]
        )
        return (
            spec.one_way_latency_s / self.rounds_per_exchange
            + wire_bytes / spec.bandwidth_bytes_per_s
        )

    def modeled_round_seconds(self) -> Optional[Dict[int, float]]:
        """Per-worker modeled seconds per round; None unless measured."""
        ticks = self._measured_tick_seconds()
        if ticks is None:
            return None
        return {
            w.worker_id: ticks[w.worker_id] / self.rounds
            + self._transport_seconds_per_round(w)
            for w in self.workers
        }

    def measured_transport_seconds(self) -> Dict[str, float]:
        """Host seconds all workers spent in transport calls (measured runs).

        ``send`` covers serialize + enqueue/publish, ``recv`` covers
        dequeue/spin + decode; ``per_round`` is the mean of their sum
        over workers and rounds — the number the benches compare across
        transports.
        """
        send = sum(w.transport_send_seconds for w in self.workers)
        recv = sum(w.transport_recv_seconds for w in self.workers)
        per_round = 0.0
        if self.rounds and self.workers:
            per_round = (send + recv) / self.rounds / len(self.workers)
        return {"send": send, "recv": recv, "per_round": per_round}

    def modeled_rate_mhz(self) -> Optional[float]:
        """Modeled distributed rate: quantum over the slowest worker's round."""
        per_round = self.modeled_round_seconds()
        if not per_round:
            return None
        critical = max(per_round.values())
        if critical <= 0.0:
            return None
        return self.quantum / critical / 1e6

    def modeled_serial_rate_mhz(self) -> Optional[float]:
        """Modeled serial rate from the same tick measurements."""
        ticks = self._measured_tick_seconds()
        if ticks is None or self.rounds == 0:
            return None
        total_round = sum(ticks.values()) / self.rounds
        if total_round <= 0.0:
            return None
        return self.quantum / total_round / 1e6

    def modeled_speedup(self) -> Optional[float]:
        distributed = self.modeled_rate_mhz()
        serial = self.modeled_serial_rate_mhz()
        if distributed is None or serial is None or serial == 0.0:
            return None
        return distributed / serial

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly summary for ``status`` output and benchmarks."""
        out: Dict[str, Any] = {
            "num_workers": self.num_workers,
            "quantum": self.quantum,
            "round_quantum": self.round_quantum or self.quantum,
            "rounds_per_exchange": self.rounds_per_exchange,
            "exchange_rounds": self.exchange_rounds,
            "cycles": self.cycles,
            "rounds": self.rounds,
            "boundary_links": self.boundary_link_count,
            "transport": self.transport,
            "requested_transport": self.requested_transport,
            "profiled": self.profiled,
            "channels": self.channel_count,
            "transport_seconds": self.measured_transport_seconds(),
            "wall_seconds": self.wall_seconds,
            "measured_rate_mhz": self.measured_rate_mhz(),
            "measured_critical_path_mhz": self.measured_critical_path_mhz(),
            "worker_cpu_seconds_max": max(
                (w.cpu_seconds for w in self.workers), default=0.0
            ),
            "per_worker_rate_mhz": {
                str(worker): rate
                for worker, rate in sorted(self.per_worker_rate_mhz().items())
            },
        }
        modeled = self.modeled_rate_mhz()
        if modeled is not None:
            out["modeled_rate_mhz"] = modeled
            out["modeled_serial_rate_mhz"] = self.modeled_serial_rate_mhz()
            out["modeled_speedup"] = self.modeled_speedup()
        if self.supervision is not None:
            out["supervision"] = self.supervision
        return out


def _directed_pair_links(
    plan: PartitionPlan, simulation: Simulation
) -> Dict[Tuple[int, int], int]:
    """Boundary-link count per *directed* worker pair.

    Channels are only built for pairs that actually share at least one
    boundary link — a pair with zero links would get a queue/ring that
    no round ever touches, costing a feeder thread or a mapped segment
    for nothing.
    """
    pairs: Dict[Tuple[int, int], int] = {}
    for boundary in plan.boundaries(simulation):
        forward = (boundary.worker_a, boundary.worker_b)
        reverse = (boundary.worker_b, boundary.worker_a)
        pairs[forward] = pairs.get(forward, 0) + 1
        pairs[reverse] = pairs.get(reverse, 0) + 1
    return pairs


def _build_channels(
    pairs: Dict[Tuple[int, int], int],
    transport: str,
    context: Any,
    shm_capacity: int,
    timeout_s: float = DEFAULT_TRANSPORT_TIMEOUT_S,
) -> Tuple[Dict[Tuple[int, int], Any], List[ShmRing], str]:
    """One channel per directed pair, honoring the requested transport.

    Returns ``(channels, rings, transport_used)``.  A host that cannot
    provide POSIX shared memory (no ``/dev/shm``, or permission denied)
    degrades to the pipe transport instead of failing the run — the
    caller records the substitution in the result's ``transport``.
    """
    if transport == "shm":
        rings: List[ShmRing] = []
        try:
            channels: Dict[Tuple[int, int], Any] = {}
            for src, dst in sorted(pairs):
                ring = ShmRing.create(
                    src, dst, capacity=shm_capacity, timeout_s=timeout_s
                )
                rings.append(ring)
                channels[(src, dst)] = ring
            return channels, rings, "shm"
        except OSError:
            for ring in rings:
                ring.destroy()
    return (
        {
            (src, dst): PipeChannel(
                context.Queue(), src, dst, timeout_s=timeout_s
            )
            for src, dst in sorted(pairs)
        },
        [],
        "pipe",
    )


def _merge_results(
    simulation: Simulation,
    plan: PartitionPlan,
    results: Dict[int, WorkerResult],
) -> None:
    """Fold every worker's shard-local counters back onto parent objects."""
    by_key = {
        simulation.partition_key(model): model for model in simulation.models
    }
    links = simulation.links
    for worker_id in sorted(results):
        result = results[worker_id]
        for name, stats in result.switch_stats.items():
            by_key[name].stats = stats
        for name, stores in result.blade_results.items():
            kernel_results = by_key[name].kernel.results
            kernel_results.clear()
            kernel_results.update(stores)
        for name, records in result.tracer_records.items():
            tracer = by_key[name]
            tracer.records[:] = records
        for index, (a_to_b, b_to_a) in result.link_flits.items():
            if a_to_b is not None:
                links[index].flits_a_to_b = a_to_b
            if b_to_a is not None:
                links[index].flits_b_to_a = b_to_a


def run_distributed(
    simulation: Simulation,
    plan: PartitionPlan,
    target_cycle: int,
    *,
    measure: bool = False,
    transport: str = "pipe",
    shm_capacity: int = DEFAULT_RING_CAPACITY,
    round_quantum: Optional[int] = None,
    profile: Optional[Any] = None,
    supervision: Optional[SupervisorConfig] = None,
    transport_timeout_s: float = DEFAULT_TRANSPORT_TIMEOUT_S,
    stats: Optional[Any] = None,
    should_abort: Optional[Callable[[], bool]] = None,
) -> DistributedRunResult:
    """Advance ``simulation`` to ``target_cycle`` across forked workers.

    Bit-identical to ``simulation.run_until(target_cycle)`` in cycle
    timestamps, switch counters, and blade results (see
    ``tests/test_dist.py`` for the enforced equivalence).  Fault hooks
    armed on the simulation before the call are inherited by every
    worker; a hook that fires in a worker kills that worker and
    surfaces here as :class:`~repro.faults.plan.WorkerCrash`.

    ``transport`` selects how boundary tokens cross process boundaries:
    ``"pipe"`` (the ``mp.Queue`` oracle, default) or ``"shm"``
    (:class:`~repro.dist.shm.ShmRing` zero-copy rings — same bits,
    less host time).  A host without usable POSIX shared memory falls
    back to pipes; the result's ``transport`` field records what
    actually ran.  Ring segments are created pre-fork and unlinked in
    this function's ``finally``, so normal completion, worker crashes,
    and checkpoint-restore reruns all leave ``/dev/shm`` clean.

    ``round_quantum`` sets how many cycles pass between boundary token
    exchanges.  ``None`` (default) derives it adaptively: the largest
    multiple of the simulation quantum that fits under the partition's
    boundary-latency floor (paper Fig 9 — simulation rate grows with
    token batch size, and link priming makes any exchange window up to
    the link latency bit-exact).  An explicit value must be a positive
    multiple of the quantum no larger than that floor.

    ``profile`` enables the distributed round-phase profiler: pass a
    :class:`~repro.obs.prof.ProfileConfig` (or ``True`` for defaults)
    and every worker records per-round phase timings into a
    preallocated ring, anchored to a parent clock epoch stamped just
    before the forks; the shipped
    :class:`~repro.obs.prof.WorkerProfile` objects land on each
    ``WorkerResult.profile`` for
    :class:`~repro.obs.prof.PhaseReport` aggregation.

    ``supervision`` configures the liveness supervisor (defaults to an
    enabled :class:`~repro.dist.supervisor.SupervisorConfig`): workers
    heartbeat into a pre-fork shared control block and a worker with
    zero progress past the adaptive deadline is killed and raised as
    :class:`~repro.faults.plan.WorkerHang`.  ``transport_timeout_s``
    bounds how long either transport's ``recv`` waits for peer
    progress.  ``stats`` is an optional
    :class:`~repro.faults.plan.ResilienceStats` that collects hang /
    kill / join-timeout counters.

    ``should_abort`` is the cooperative-stop seam for long-lived
    callers (the :mod:`repro.serve` job server's preemption and cancel
    paths): it is polled once per liveness sweep (~every
    ``_POLL_INTERVAL_S``) and a truthy return tears the workers down
    through the normal cleanup path — rings unlinked, processes
    reaped — and raises :class:`RunAborted` without merging any worker
    state into the parent simulation.

    Requires a platform with the ``fork`` start method (Linux): workers
    must inherit the elaborated simulation by memory image, because
    model closures (workload jobs) are not picklable.
    """
    if transport not in _TRANSPORT_SPEC:
        raise ConfigError(
            f"unknown transport {transport!r}; expected one of "
            f"{sorted(_TRANSPORT_SPEC)}"
        )
    if transport_timeout_s <= 0:
        raise ConfigError(
            f"transport_timeout_s must be positive, got {transport_timeout_s}"
        )
    if profile is True:
        profile = ProfileConfig()
    if supervision is None:
        supervision = SupervisorConfig()
    plan.validate_against(simulation)
    simulation.start()
    quantum = simulation.quantum
    latency_floor = plan.boundary_latency_floor(simulation)
    if round_quantum is None:
        round_quantum = exchange_quantum(latency_floor, quantum)
    else:
        if round_quantum < quantum or round_quantum % quantum != 0:
            raise ConfigError(
                f"round_quantum must be a positive multiple of the "
                f"simulation quantum ({quantum}), got {round_quantum}"
            )
        if latency_floor is not None and round_quantum > latency_floor:
            raise ConfigError(
                f"round_quantum {round_quantum} exceeds the partition's "
                f"boundary link-latency floor ({latency_floor} cycles); "
                f"workers would outrun the primed token window"
            )
    start_cycle = simulation.current_cycle
    if target_cycle <= start_cycle:
        return DistributedRunResult(
            plan=plan,
            quantum=quantum,
            start_cycle=start_cycle,
            end_cycle=start_cycle,
            rounds=0,
            wall_seconds=0.0,
            boundary_link_count=len(plan.boundaries(simulation)),
            round_quantum=round_quantum,
            transport=transport,
            requested_transport=transport,
        )

    context = multiprocessing.get_context("fork")
    pairs = _directed_pair_links(plan, simulation)
    channels, rings, transport_used = _build_channels(
        pairs, transport, context, shm_capacity, transport_timeout_s
    )
    heartbeats: Optional[HeartbeatBlock] = None
    if supervision.enabled:
        try:
            heartbeats = HeartbeatBlock.create(plan.num_workers)
        except OSError:
            # No usable POSIX shared memory: supervision degrades to
            # crash-only detection; the report records it disabled.
            heartbeats = None
    result_queue = context.Queue()
    shard_context = ShardContext(
        simulation=simulation,
        plan=plan,
        target_cycle=target_cycle,
        quantum=quantum,
        measure=measure,
        channels=channels,
        result_queue=result_queue,
        round_quantum=round_quantum,
        profile=profile,
        heartbeats=heartbeats,
    )

    wall_start = perf_counter()
    # Clock-sync epoch: the parent's monotonic reading just before the
    # forks.  Every worker's ClockSync anchors to this one stamp, so
    # merged trace timestamps share a timeline.
    shard_context.epoch_s = wall_start
    processes: Dict[int, Any] = {}
    results: Dict[int, WorkerResult] = {}
    # failure = (worker_id, at_cycle, detail, exception_name, target)
    failure: Optional[Tuple[int, Optional[int], str, str, Optional[str]]] = (
        None
    )
    supervisor = Supervisor(
        heartbeats, plan.num_workers, supervision, stats=stats
    )
    # Workers seen dead with exit code 0 but no result yet, and when:
    # the result may still be draining out of the queue's feeder pipe,
    # so they get _RESULT_GRACE_S before being declared failed.
    dead_ok_since: Dict[int, float] = {}
    aborted = False
    try:
        for worker_id in range(plan.num_workers):
            process = context.Process(
                target=shard_entry,
                args=(shard_context, worker_id),
                name=f"repro-dist-w{worker_id}",
            )
            process.start()
            processes[worker_id] = process

        while len(results) < plan.num_workers and failure is None:
            try:
                message = result_queue.get(timeout=_POLL_INTERVAL_S)
            except Empty:
                if should_abort is not None and should_abort():
                    aborted = True
                    break
                verdict = supervisor.poll(set(results))
                if verdict is not None:
                    supervisor.kill(processes[verdict.worker_id])
                    failure = (
                        verdict.worker_id,
                        None,
                        f"worker {verdict.worker_id} {verdict.describe()}",
                        "WorkerHang",
                        None,
                    )
                    break
                now = perf_counter()
                for worker_id, process in processes.items():
                    if worker_id in results or process.is_alive():
                        continue
                    if process.exitcode not in (0, None):
                        failure = (
                            worker_id,
                            None,
                            f"worker process exited with code "
                            f"{process.exitcode} before reporting",
                            "WorkerCrash",
                            None,
                        )
                        break
                    # Exit code 0 without a result: give the queue
                    # feeder a grace window to flush, then treat it as
                    # dead — the old `exitcode not in (0, None)` test
                    # excluded 0 and spun on such a worker forever.
                    since = dead_ok_since.setdefault(worker_id, now)
                    if now - since > _RESULT_GRACE_S:
                        failure = (
                            worker_id,
                            None,
                            "worker process exited cleanly without "
                            "reporting a result",
                            "WorkerCrash",
                            None,
                        )
                        break
                continue
            if message[0] == "ok":
                _, worker_id, result = message
                results[worker_id] = result
            else:
                _, worker_id, at_cycle, detail, kind_name, target = message
                failure = (worker_id, at_cycle, detail, kind_name, target)
    finally:
        if failure is not None or aborted:
            for process in processes.values():
                if process.is_alive():
                    process.terminate()
        for process in processes.values():
            process.join(timeout=_JOIN_TIMEOUT_S)
            if process.is_alive():
                # Join-timeout escalation: a worker that survives
                # SIGTERM through the whole grace is SIGKILLed and
                # reaped — leaving it behind would leak a process (and
                # its shm mappings) per restore.
                process.kill()
                process.join()
                if stats is not None:
                    stats.join_timeouts += 1
                    stats.workers_killed += 1
        # The one teardown path for ring segments: normal exit, worker
        # crash, and the manager's checkpoint-restore rerun all come
        # through here, so /dev/shm never accumulates segments.
        for ring in rings:
            ring.destroy()
        if heartbeats is not None:
            heartbeats.destroy()

    if aborted:
        raise RunAborted(
            f"distributed run aborted by caller at cycle {start_cycle} "
            f"start (workers torn down, no state merged)"
        )

    if failure is not None:
        worker_id, at_cycle, detail, kind_name, target = failure
        if kind_name == "RingCorruption":
            raise RingCorruption(
                f"distributed worker {worker_id} hit transport "
                f"corruption: {detail}",
                ring=target if target else "ring:?",
                at_cycle=at_cycle,
            )
        if kind_name == "WorkerHang":
            raise WorkerHang(
                f"distributed worker {worker_id} hung: {detail}",
                worker_index=worker_id,
                at_cycle=at_cycle,
            )
        raise WorkerCrash(
            f"distributed worker {worker_id} died: {detail}",
            worker_index=worker_id,
            at_cycle=at_cycle,
        )

    wall_seconds = perf_counter() - wall_start
    _merge_results(simulation, plan, results)
    ordered = [results[worker_id] for worker_id in sorted(results)]
    rounds = ordered[0].rounds
    end_cycle = ordered[0].end_cycle
    simulation.current_cycle = end_cycle
    simulation.stats.rounds += rounds
    simulation.stats.cycles += end_cycle - start_cycle
    simulation.stats.tokens_moved += sum(w.tokens_moved for w in ordered)
    simulation.stats.valid_tokens_moved += sum(
        w.valid_tokens_moved for w in ordered
    )
    return DistributedRunResult(
        plan=plan,
        quantum=shard_context.quantum,
        start_cycle=start_cycle,
        end_cycle=end_cycle,
        rounds=rounds,
        wall_seconds=wall_seconds,
        workers=ordered,
        boundary_link_count=len(plan.boundaries(simulation)),
        round_quantum=round_quantum,
        transport=transport_used,
        channel_count=len(channels),
        requested_transport=transport,
        supervision=supervisor.report(),
    )
