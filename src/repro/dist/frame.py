"""Coalesced wire codec for one worker's per-exchange boundary traffic.

Before this module, each transport encoded boundary windows one entry
at a time: a struct-packed header, a ``pickle.dumps`` per busy window,
and a per-entry cycle-column copy — so a worker talking to a peer over
N boundary links paid N serializer round-trips per round (and the pipe
transport pickled the whole entry list object graph on its feeder
thread).  Switchboard's single-publish queues are the exemplar: all of
a module's outgoing traffic leaves as **one** contiguous write.

:func:`encode_entries` flattens an entire ``(link_index, window)`` list
into one columnar payload:

* **entry table** — ``entry_count`` packed rows of
  ``link_index (i32) | kind (u8) | start_cycle (i64) | length (i64) |
  valid_count (i32)`` (25 bytes, no padding).  The consumer decodes the
  whole table with a single ``np.frombuffer`` over a packed dtype —
  no per-entry ``struct.unpack`` loop.
* **cycle column** — every DATA entry's int64 token cycles,
  concatenated in entry order.  Each producer-side window contributes
  one vectorized copy (``TokenStream``'s cycle column goes straight in
  as raw bytes); the consumer slices windows back out of one
  ``np.frombuffer`` view by cumulative ``valid_count``.
* **flit blob** — ONE ``pickle.dumps`` of the list of per-entry flit
  payload lists (DATA entries only, in entry order), running to the
  end of the payload.  One pickle call per exchange per peer replaces
  one per busy window.

``kind`` keeps the gap semantics of the per-entry format: ``DATA``
carries tokens, ``IDLE`` is table-row-only, and ``LOST`` marks a window
dropped in transit (the consumer records a queue gap).  Framing —
round tags, CRCs, sequence numbers — stays with the transport
(:mod:`repro.dist.shm` wraps this payload in its integrity-checked ring
header; the pipe channel ships it as one bytes object).
"""

from __future__ import annotations

import pickle
from typing import Any, List, Sequence, Tuple

import numpy as np

from repro.core.token import TokenBatch
from repro.dist.remote_link import LostWindow
from repro.perf.stream import TokenStream

__all__ = [
    "DATA",
    "IDLE",
    "LOST",
    "ENTRY_BYTES",
    "decode_entries",
    "encode_entries",
]

# Entry kinds: the table bits that carry window semantics.
DATA = 0  # valid tokens follow (cycles in the column + flits in the blob)
IDLE = 1  # empty window, table row only
LOST = 2  # window lost in transit: consumer records a queue gap

#: One packed entry-table row.  numpy decodes the whole table at once;
#: ``align=False`` keeps the layout identical to the producer's packing.
_ENTRY_DTYPE = np.dtype(
    [
        ("link", "<i4"),
        ("kind", "u1"),
        ("start", "<i8"),
        ("length", "<i8"),
        ("valid", "<i4"),
    ]
)
ENTRY_BYTES = _ENTRY_DTYPE.itemsize
assert ENTRY_BYTES == 25, "entry table rows must pack without padding"

_EMPTY_CYCLES = np.empty(0, dtype=np.int64)


def encode_entries(
    entries: Sequence[Tuple[int, Any]], out: bytearray
) -> int:
    """Append the coalesced payload for ``entries`` to ``out``.

    ``entries`` are ``(link_index, window)`` pairs in the producer's own
    representation — ``TokenStream`` for busy batched windows,
    ``TokenBatch`` for scalar or idle windows, ``LostWindow`` for
    fault-injected transport loss.  Returns the entry count.
    """
    count = len(entries)
    table = np.empty(count, dtype=_ENTRY_DTYPE)
    link_col = table["link"]
    kind_col = table["kind"]
    start_col = table["start"]
    length_col = table["length"]
    valid_col = table["valid"]
    columns: List[Any] = []
    flit_lists: List[list] = []
    for row, (link_index, window) in enumerate(entries):
        link_col[row] = link_index
        if type(window) is LostWindow:
            kind_col[row] = LOST
            start_col[row] = window.start_cycle
            length_col[row] = window.length
            valid_col[row] = 0
            continue
        start_col[row] = window.start_cycle
        length_col[row] = window.length
        if isinstance(window, TokenStream):
            tokens = window.tokens
            valid = tokens.shape[0]
            if valid:
                kind_col[row] = DATA
                valid_col[row] = valid
                columns.append(np.ascontiguousarray(tokens["cycle"]))
                flit_lists.append(tokens["flit"].tolist())
            else:
                kind_col[row] = IDLE
                valid_col[row] = 0
            continue
        flits = window.flits
        if flits:
            cycles_list = sorted(flits)
            kind_col[row] = DATA
            valid_col[row] = len(cycles_list)
            columns.append(np.asarray(cycles_list, dtype=np.int64))
            flit_lists.append([flits[cycle] for cycle in cycles_list])
        else:
            kind_col[row] = IDLE
            valid_col[row] = 0
    out += table.tobytes()
    for cycles in columns:
        out += memoryview(cycles).cast("B")
    if flit_lists:
        # Omitted entirely for all-idle payloads: an empty exchange is
        # just its table (and an empty entry list is zero bytes, so the
        # ring's header CRC alone still covers it).
        out += pickle.dumps(flit_lists, protocol=pickle.HIGHEST_PROTOCOL)
    return count


def decode_entries(
    payload: Any, entry_count: int, offset: int = 0
) -> List[Tuple[int, Any]]:
    """Decode a coalesced payload back into ``(link_index, window)`` pairs.

    ``payload`` is any buffer (the shm ring's copied-out bytes, the pipe
    channel's shipped bytes object); ``offset`` is where the entry table
    starts.  One ``frombuffer`` reads the table, one more reads the
    whole cycle column, and one ``pickle.loads`` restores every flit
    payload — decode cost is per *exchange*, not per window.
    """
    table = np.frombuffer(
        payload, dtype=_ENTRY_DTYPE, count=entry_count, offset=offset
    )
    valid_col = table["valid"]
    total_valid = int(valid_col.sum())
    cycles_at = offset + entry_count * ENTRY_BYTES
    cycles = (
        np.frombuffer(
            payload, dtype=np.int64, count=total_valid, offset=cycles_at
        )
        if total_valid
        else _EMPTY_CYCLES
    )
    blob = memoryview(payload)[cycles_at + 8 * total_valid:]
    flit_lists = pickle.loads(blob) if len(blob) else []
    entries: List[Tuple[int, Any]] = []
    cursor = 0
    blob_row = 0
    kind_col = table["kind"]
    link_col = table["link"]
    start_col = table["start"]
    length_col = table["length"]
    for row in range(entry_count):
        kind = kind_col[row]
        start_cycle = int(start_col[row])
        length = int(length_col[row])
        window: Any
        if kind == IDLE:
            window = TokenBatch(start_cycle, length)
        elif kind == LOST:
            window = LostWindow(start_cycle, length)
        else:
            valid = int(valid_col[row])
            window = TokenStream.from_wire(
                start_cycle,
                length,
                cycles[cursor:cursor + valid],
                flit_lists[blob_row],
            )
            cursor += valid
            blob_row += 1
        entries.append((int(link_col[row]), window))
    return entries
