"""Partitioning a model/link graph into per-worker shards.

FireSim distributes a cluster simulation by *host*: each EC2 instance
runs the server simulations and switch models mapped onto it, and only
cross-host links exchange token batches over a host transport (paper
Section III-B2/III-C).  This module reproduces that decomposition for
the multi-process engine:

* a :class:`PartitionPlan` assigns every model (by its stable
  :meth:`~repro.core.simulation.Simulation.partition_key`) to one worker
  index;
* :func:`plan_partitions` derives the assignment from the
  :mod:`repro.manager.mapper` deployment, so worker shards mirror the
  paper's instance mapping — a ToR and its rack's blades land in one
  worker, aggregation/root switches in others;
* :meth:`PartitionPlan.boundaries` names the links whose endpoints live
  in different workers; only these move tokens over the
  :data:`~repro.net.transport.WORKER_PIPE` transport, everything else
  stays an ordinary in-process :class:`~repro.core.channel.Link`.

Determinism: the assignment is a pure function of the topology and the
worker count.  Hosts are ordered (F1 instances by physical id, then M4
instances by index) and chunked contiguously, with chunk boundaries
placed to balance modeled host load (a switch model's tick is several
times a blade's), so the same target and ``num_workers`` always produce
byte-identical plans — the property the equivalence and resume
guarantees stand on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro import ConfigError
from repro.core.simulation import Simulation
from repro.net.transport import TransportKind


@dataclass(frozen=True)
class BoundaryLink:
    """One link whose two sides live in different workers."""

    link_index: int  # index into Simulation.links
    name: str
    latency: int
    worker_a: int  # worker owning the side-"a" model
    worker_b: int  # worker owning the side-"b" model
    #: Host transport carrying this link's tokens.  The plan is
    #: transport-agnostic (the same partitioning serves both); the run
    #: driver stamps the hop that actually ran.
    transport: TransportKind = TransportKind.PIPE


@dataclass(frozen=True)
class PartitionPlan:
    """An assignment of every model to one of ``num_workers`` shards."""

    num_workers: int
    assignment: Mapping[str, int]  # partition_key -> worker index
    #: Host strings backing each worker (informational; empty for plans
    #: built from an explicit assignment).
    worker_hosts: Tuple[Tuple[str, ...], ...] = ()

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ConfigError(
                f"need at least 1 worker, got {self.num_workers}"
            )
        for name, worker in self.assignment.items():
            if not 0 <= worker < self.num_workers:
                raise ConfigError(
                    f"model {name!r} assigned to worker {worker}, outside "
                    f"0..{self.num_workers - 1}"
                )
        used = {worker for worker in self.assignment.values()}
        missing = sorted(set(range(self.num_workers)) - used)
        if missing:
            raise ConfigError(
                f"workers {missing} have no models; use fewer workers"
            )

    # -- queries ---------------------------------------------------------

    def partition_of(self, key: str) -> int:
        try:
            return self.assignment[key]
        except KeyError:
            raise ConfigError(
                f"model {key!r} is not covered by this partition plan"
            ) from None

    def models_for(self, simulation: Simulation, worker: int) -> List[Any]:
        """The worker's shard, in the simulation's global model order.

        Keeping the global relative order means each worker ticks its
        models in exactly the sequence the serial engine would have, so
        per-model host-side state (RNG draws, sequence counters) evolves
        identically.
        """
        return [
            model
            for model in simulation.models
            if self.partition_of(simulation.partition_key(model)) == worker
        ]

    def validate_against(self, simulation: Simulation) -> None:
        """Every model must be assigned; fail with the full list if not."""
        unassigned = [
            key
            for key in simulation.partition_keys()
            if key not in self.assignment
        ]
        if unassigned:
            raise ConfigError(
                f"partition plan does not cover models {unassigned}; "
                "replan after changing the simulation"
            )

    def boundaries(self, simulation: Simulation) -> List[BoundaryLink]:
        """Links crossing worker boundaries, in link creation order."""
        out: List[BoundaryLink] = []
        for index, (link, (model_a, _), (model_b, _)) in enumerate(
            simulation.link_attachments()
        ):
            worker_a = self.partition_of(simulation.partition_key(model_a))
            worker_b = self.partition_of(simulation.partition_key(model_b))
            if worker_a != worker_b:
                out.append(
                    BoundaryLink(
                        link_index=index,
                        name=link.name,
                        latency=link.latency,
                        worker_a=worker_a,
                        worker_b=worker_b,
                    )
                )
        return out

    def boundary_latency_floor(self, simulation: Simulation) -> Optional[int]:
        """Smallest boundary-link latency, or None without boundaries.

        This is the partition's token-exchange bound: link priming puts
        ``latency`` tokens in flight per boundary direction, so workers
        can batch up to this many cycles between exchanges without ever
        outrunning a peer (paper Fig 9 — batch size is capped by link
        latency).  The adaptive round quantum in
        :func:`repro.dist.engine.run_distributed` derives from it.
        """
        return min(
            (boundary.latency for boundary in self.boundaries(simulation)),
            default=None,
        )

    def describe(
        self,
        simulation: Optional[Simulation] = None,
        transport: str = TransportKind.PIPE.value,
    ) -> Dict[str, Any]:
        """A JSON-friendly summary for ``status`` output and telemetry.

        ``transport`` names the worker-to-worker hop the boundary links
        ride ("pipe" or "shm"); callers that ran distributed pass the
        transport the run actually used, fallback included.
        """
        shards: List[Dict[str, Any]] = []
        for worker in range(self.num_workers):
            models = sorted(
                name for name, w in self.assignment.items() if w == worker
            )
            entry: Dict[str, Any] = {"worker": worker, "models": models}
            if worker < len(self.worker_hosts):
                entry["hosts"] = list(self.worker_hosts[worker])
            shards.append(entry)
        summary: Dict[str, Any] = {
            "num_workers": self.num_workers,
            "shards": shards,
        }
        if simulation is not None:
            boundaries = self.boundaries(simulation)
            summary["boundary_links"] = [b.name for b in boundaries]
            summary["boundary_transport"] = transport
        return summary


#: Relative per-round host cost of ticking one model, used to place
#: chunk boundaries.  Measured on the reference container: a
#: SwitchModel's tick (per-port arbitration and byte accounting) costs
#: roughly 3.5x an idle ServerBlade's; rounded up for headroom.  These
#: are *balance hints* only — correctness never depends on them.
_SWITCH_TICK_WEIGHT = 4
_BLADE_TICK_WEIGHT = 1


def _chunk_weighted(
    items: Sequence[str], weights: Sequence[int], bins: int
) -> List[Tuple[str, ...]]:
    """Split contiguously into ``bins`` non-empty chunks of even weight.

    Greedy scan: each bin keeps absorbing the next item while that
    strictly improves its distance to the ideal share of the remaining
    weight, always leaving at least one item for every later bin.
    Deterministic — a pure function of the ordered items and weights.
    """
    out: List[Tuple[str, ...]] = []
    cursor = 0
    remaining_weight = float(sum(weights))
    for index in range(bins):
        bins_left = bins - index
        max_take = len(items) - cursor - (bins_left - 1)
        target = remaining_weight / bins_left
        take = 1
        acc = float(weights[cursor])
        while take < max_take:
            candidate = acc + weights[cursor + take]
            if abs(candidate - target) < abs(acc - target):
                acc = candidate
                take += 1
            else:
                break
        out.append(tuple(items[cursor : cursor + take]))
        cursor += take
        remaining_weight -= acc
    return out


def plan_partitions(
    running: Any,
    deployment: Any,
    num_workers: int,
) -> PartitionPlan:
    """Derive a partition plan from the mapper's host placement.

    ``running`` is a :class:`~repro.manager.runfarm.RunningSimulation`
    and ``deployment`` the :class:`~repro.manager.mapper.Deployment`
    produced by ``map_topology`` for the same topology.  Each host the
    mapper used (F1 instances in physical-id order, then M4 instances)
    becomes one *shard*; shards are chunked contiguously across
    ``num_workers`` workers, with boundaries placed so chunks carry
    roughly even modeled tick load (switch-hosting M4s weigh more than
    blade-hosting F1s).  Requesting more workers than there are shards
    is a configuration error — there is nothing left to split.
    """
    if num_workers < 1:
        raise ConfigError(f"need at least 1 worker, got {num_workers}")
    if running.config.fame5_blades_per_pipeline != 1:
        raise ConfigError(
            "distributed execution requires fame5_blades_per_pipeline == 1; "
            "FAME-5 multiplexed pipelines cannot span worker processes"
        )

    # Model name -> host string, mirroring the mapper's placement.  The
    # mapper iterates servers in the same deterministic order elaborate()
    # used to number blades, so positional correspondence is exact.
    host_of_model: Dict[str, str] = {}
    for position, placement in enumerate(deployment.server_placements):
        host_of_model[f"node{position}"] = f"f1:{placement.instance_index}"
    for placement in deployment.switch_placements:
        host_of_model[f"switch{placement.switch.switch_id}"] = placement.host

    hosts = list(deployment.partition_hosts())
    if num_workers > len(hosts):
        raise ConfigError(
            f"topology maps onto {len(hosts)} partitionable shard(s) "
            f"({', '.join(hosts)}), fewer than the {num_workers} requested "
            "workers; reduce --workers or grow the topology"
        )
    weight_of_host: Dict[str, int] = {host: 0 for host in hosts}
    for key, host in host_of_model.items():
        weight_of_host[host] += (
            _SWITCH_TICK_WEIGHT
            if key.startswith("switch")
            else _BLADE_TICK_WEIGHT
        )
    worker_hosts = _chunk_weighted(
        hosts, [weight_of_host[host] for host in hosts], num_workers
    )
    worker_of_host = {
        host: worker
        for worker, chunk in enumerate(worker_hosts)
        for host in chunk
    }

    simulation = running.simulation
    assignment: Dict[str, int] = {}
    for key in simulation.partition_keys():
        host = host_of_model.get(key)
        if host is None:
            raise ConfigError(
                f"model {key!r} has no host placement; the deployment does "
                "not match this simulation"
            )
        assignment[key] = worker_of_host[host]
    plan = PartitionPlan(
        num_workers=num_workers,
        assignment=assignment,
        worker_hosts=worker_hosts,
    )
    plan.validate_against(simulation)
    return plan


def plan_from_assignment(
    assignment: Mapping[str, int], num_workers: Optional[int] = None
) -> PartitionPlan:
    """A plan from an explicit ``model name -> worker`` mapping.

    For hand-built simulations (spliced tracers, custom models) that
    never went through the mapper.
    """
    if not assignment:
        raise ConfigError("assignment must cover at least one model")
    workers = (
        num_workers
        if num_workers is not None
        else max(assignment.values()) + 1
    )
    return PartitionPlan(num_workers=workers, assignment=dict(assignment))
