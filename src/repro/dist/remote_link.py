"""Remote link endpoints: boundary ports of a partitioned simulation.

A link whose two models live in different worker processes is split into
two halves.  Each half keeps using the worker's local copy of the
:class:`~repro.core.channel.Link` object for its *consuming* queue (the
side that was primed with one latency of empty tokens), while the
*producing* direction bypasses the local queue: the outgoing batch is
relabelled ``+latency`` exactly as ``send_from_a``/``send_from_b`` would
(:meth:`~repro.core.channel.Link.shift_for_transport`) and handed to the
transport outbox instead.  The peer worker pushes the received batch
into its local copy of the same endpoint.

Because relabelling, priming, and the contiguity check in
:meth:`~repro.core.channel.LinkEndpoint.push` are all unchanged, a
token's producer-cycle-``M`` → consumer-cycle-``M + l`` timing is
bit-identical to the in-process link — the distributed engine differs
from the serial one only in *which host process* holds each queue,
which is precisely the paper's host-decoupling claim (Section III-B2).
Gap semantics survive too: a batch lost in transit (fault injection)
leaves the consumer starving at the hole, raising the same
:class:`~repro.core.channel.TokenStarvationError` diagnostics.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.core.channel import Link, LinkEndpoint
from repro.core.token import TokenBatch

#: One wire message entry: (link index, relabelled window).  The window
#: ships in whatever representation the producing engine holds — a
#: sparse ``TokenBatch`` (scalar engine, or an idle window under the
#: batched engine) or a :class:`~repro.perf.stream.TokenStream` (a busy
#: window under the batched engine).  The consuming endpoint's ``push``
#: is duck-typed over both, so there is no convert/deconvert hop on
#: either side of the wire.
WireEntry = Tuple[int, Any]


class RemoteAttachment:
    """A boundary port's attachment: local consume, remote transmit.

    Duck-types the orchestrator's ``_Attachment`` (``receive`` /
    ``transmit`` plus ``link``/``side`` for starvation diagnostics), so
    the worker round loop treats boundary and interior ports uniformly.
    """

    __slots__ = (
        "link", "side", "link_index", "sent_valid", "_inbound", "_outbox",
    )

    def __init__(
        self,
        link: Link,
        side: str,
        link_index: int,
        outbox: List[WireEntry],
    ) -> None:
        if side not in ("a", "b"):
            raise ValueError(f"side must be 'a' or 'b', got {side!r}")
        self.link = link
        self.side = side
        self.link_index = link_index
        #: Valid tokens actually shipped over the transport; batches are
        #: pickled sparse, so this — not the quantum — is what sizes the
        #: wire payload in the engine's performance model.
        self.sent_valid = 0
        # Side "a" consumes tokens travelling b->a and vice versa.
        self._inbound: LinkEndpoint = link.to_a if side == "a" else link.to_b
        self._outbox = outbox

    def receive(self, length: int) -> TokenBatch:
        return self._inbound.pop(length)

    def transmit(self, batch: TokenBatch) -> None:
        # Keep the per-direction flit counters the local Link would have
        # maintained, so merged statistics match the serial engine.
        if self.side == "a":
            self.link.flits_a_to_b += batch.valid_count
        else:
            self.link.flits_b_to_a += batch.valid_count
        self.sent_valid += batch.valid_count
        self._outbox.append(
            (self.link_index, self.link.shift_for_transport(batch))
        )

    def ship(self, shifted: Any, valid_count: int) -> None:
        """Outbox an *already relabelled* window (batched-engine path).

        The batched engine applies the ``+latency`` shift in the
        producer's own representation — in place for idle batches, one
        vectorized cycle-add for streams — so this method only does the
        counter bookkeeping :meth:`transmit` would and appends the
        object as-is; the wire carries exactly what a local queue
        would have held.
        """
        if self.side == "a":
            self.link.flits_a_to_b += valid_count
        else:
            self.link.flits_b_to_a += valid_count
        self.sent_valid += valid_count
        self._outbox.append((self.link_index, shifted))

    @property
    def available_tokens(self) -> int:
        return self._inbound.available_tokens


def deliver(link: Link, consumer_side: str, batch: Any) -> None:
    """Push a window received from the peer into the local consuming queue.

    The window was already relabelled by the sender and may be a batch
    or a stream (see :data:`WireEntry`); the endpoint's own contiguity
    check rejects any reordered or dropped-and-resumed delivery, so
    transport bugs surface as loud errors rather than silent timing
    skew.
    """
    endpoint = link.to_a if consumer_side == "a" else link.to_b
    endpoint.push(batch)
