"""Remote link endpoints: boundary ports of a partitioned simulation.

A link whose two models live in different worker processes is split into
two halves.  Each half keeps using the worker's local copy of the
:class:`~repro.core.channel.Link` object for its *consuming* queue (the
side that was primed with one latency of empty tokens), while the
*producing* direction bypasses the local queue: the outgoing batch is
relabelled ``+latency`` exactly as ``send_from_a``/``send_from_b`` would
(:meth:`~repro.core.channel.Link.shift_for_transport`) and handed to the
transport outbox instead.  The peer worker pushes the received batch
into its local copy of the same endpoint.

Because relabelling, priming, and the contiguity check in
:meth:`~repro.core.channel.LinkEndpoint.push` are all unchanged, a
token's producer-cycle-``M`` → consumer-cycle-``M + l`` timing is
bit-identical to the in-process link — the distributed engine differs
from the serial one only in *which host process* holds each queue,
which is precisely the paper's host-decoupling claim (Section III-B2).
Gap semantics survive too: a batch lost in transit (fault injection)
leaves the consumer starving at the hole, raising the same
:class:`~repro.core.channel.TokenStarvationError` diagnostics.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.core.channel import Link, LinkEndpoint
from repro.core.token import TokenBatch

#: One wire message entry: (link index, relabelled window).  The window
#: ships in whatever representation the producing engine holds — a
#: sparse ``TokenBatch`` (scalar engine, or an idle window under the
#: batched engine) or a :class:`~repro.perf.stream.TokenStream` (a busy
#: window under the batched engine).  The consuming endpoint's ``push``
#: is duck-typed over both, so there is no convert/deconvert hop on
#: either side of the wire.
WireEntry = Tuple[int, Any]


class LostWindow:
    """A window whose payload was lost in transit (fault injection).

    Carries only the cycle extent; :func:`deliver` turns it into a
    consumer-side queue gap via
    :meth:`~repro.core.channel.LinkEndpoint.mark_gap`.  Picklable, so
    the pipe transport ships it like any other window; the shm ring
    encodes it as a header flag instead (:mod:`repro.dist.shm`).
    """

    __slots__ = ("start_cycle", "length")

    def __init__(self, start_cycle: int, length: int) -> None:
        self.start_cycle = start_cycle
        self.length = length

    @property
    def end_cycle(self) -> int:
        return self.start_cycle + self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LostWindow(start={self.start_cycle}, len={self.length})"


class Outbox:
    """One peer's outgoing wire entries for the round in progress.

    Attachments append; the transport *drains* — :meth:`drain` hands
    the accumulated list over by reference and replaces it, so neither
    transport copies batch contents.  The shm ring serializes entries
    synchronously inside ``send`` and the pipe transport hands the
    drained list (which nothing mutates afterwards — shipped windows
    are immutable once relabelled) to ``mp.Queue``'s feeder thread,
    eliminating the defensive per-round ``list(outbox)`` copy the
    queue transport used to make.
    """

    __slots__ = ("entries", "total_entries", "peak_entries")

    def __init__(self) -> None:
        self.entries: List[WireEntry] = []
        #: Entries ever drained / most entries in a single drain —
        #: per-peer coalescing stats the distributed profiler reports
        #: (peak == boundary links toward the peer in a healthy run).
        self.total_entries = 0
        self.peak_entries = 0

    def append(self, entry: WireEntry) -> None:
        self.entries.append(entry)

    def drain(self) -> List[WireEntry]:
        entries = self.entries
        self.entries = []
        count = len(entries)
        self.total_entries += count
        if count > self.peak_entries:
            self.peak_entries = count
        return entries

    def lose_tail(self) -> int:
        """Replace the newest pending entry's payload with a gap marker.

        The transport-loss fault hook for boundary links: the window
        still occupies its cycle extent on the wire (so later windows
        stay contiguous at the consumer) but arrives as a
        :class:`LostWindow`.  Returns the number of tokens lost, like
        :meth:`~repro.core.channel.Link.lose_in_flight`.
        """
        if not self.entries:
            return 0
        link_index, window = self.entries[-1]
        if isinstance(window, LostWindow):
            return 0
        self.entries[-1] = (
            link_index, LostWindow(window.start_cycle, window.length)
        )
        return window.length

    def __len__(self) -> int:
        return len(self.entries)


class RemoteAttachment:
    """A boundary port's attachment: local consume, remote transmit.

    Duck-types the orchestrator's ``_Attachment`` (``receive`` /
    ``transmit`` plus ``link``/``side`` for starvation diagnostics), so
    the worker round loop treats boundary and interior ports uniformly.
    """

    __slots__ = (
        "link", "side", "link_index", "sent_valid", "_inbound", "_outbox",
    )

    def __init__(
        self,
        link: Link,
        side: str,
        link_index: int,
        outbox: Outbox,
    ) -> None:
        if side not in ("a", "b"):
            raise ValueError(f"side must be 'a' or 'b', got {side!r}")
        self.link = link
        self.side = side
        self.link_index = link_index
        #: Valid tokens actually shipped over the transport; batches are
        #: pickled sparse, so this — not the quantum — is what sizes the
        #: wire payload in the engine's performance model.
        self.sent_valid = 0
        # Side "a" consumes tokens travelling b->a and vice versa.
        self._inbound: LinkEndpoint = link.to_a if side == "a" else link.to_b
        self._outbox = outbox

    def receive(self, length: int) -> TokenBatch:
        return self._inbound.pop(length)

    def transmit(self, batch: TokenBatch) -> None:
        # Keep the per-direction flit counters the local Link would have
        # maintained, so merged statistics match the serial engine.
        if self.side == "a":
            self.link.flits_a_to_b += batch.valid_count
        else:
            self.link.flits_b_to_a += batch.valid_count
        self.sent_valid += batch.valid_count
        self._outbox.append(
            (self.link_index, self.link.shift_for_transport(batch))
        )

    def ship(self, shifted: Any, valid_count: int) -> None:
        """Outbox an *already relabelled* window (batched-engine path).

        The batched engine applies the ``+latency`` shift in the
        producer's own representation — in place for idle batches, one
        vectorized cycle-add for streams — so this method only does the
        counter bookkeeping :meth:`transmit` would and appends the
        object as-is; the wire carries exactly what a local queue
        would have held.
        """
        if self.side == "a":
            self.link.flits_a_to_b += valid_count
        else:
            self.link.flits_b_to_a += valid_count
        self.sent_valid += valid_count
        self._outbox.append((self.link_index, shifted))

    @property
    def available_tokens(self) -> int:
        return self._inbound.available_tokens


def deliver(link: Link, consumer_side: str, batch: Any) -> None:
    """Push a window received from the peer into the local consuming queue.

    The window was already relabelled by the sender and may be a batch
    or a stream (see :data:`WireEntry`); the endpoint's own contiguity
    check rejects any reordered or dropped-and-resumed delivery, so
    transport bugs surface as loud errors rather than silent timing
    skew.  A :class:`LostWindow` never enqueues — it becomes a queue
    gap, preserving the fault model's starve-at-the-hole semantics
    across the process boundary.
    """
    endpoint = link.to_a if consumer_side == "a" else link.to_b
    if isinstance(batch, LostWindow):
        endpoint.mark_gap(batch.start_cycle, batch.end_cycle)
    else:
        endpoint.push(batch)
