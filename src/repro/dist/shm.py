"""Zero-copy shared-memory ring transport between worker processes.

The pipe transport pays for every boundary window three times: the
producer pickles it on an ``mp.Queue`` feeder thread, the kernel copies
it through a pipe, and the consumer unpickles it.  On the sparse ping
workloads that dominate our benchmarks most windows are *idle*, yet the
pipe still ships a full pickled ``TokenBatch`` per link per round.

:class:`ShmRing` replaces that with one ``multiprocessing.shared_memory``
segment per directed worker pair, laid out as a byte ring with two
monotonic cursors (Switchboard-style single-producer single-consumer
queues; Herbst et al., 2024):

* bytes ``[0, 8)``  — write cursor: total bytes ever published;
* bytes ``[8, 16)`` — read cursor: total bytes ever consumed;
* bytes ``[16, 16 + capacity)`` — the data ring.

The producer copies a message into the ring *first* and publishes the
write cursor *after* (payload-then-publish), so a reader that observes
``write - read >= n`` may safely copy ``n`` bytes out.  Cursors are
aligned 8-byte stores through a numpy view of the mapped segment —
atomic on every platform CPython runs multiprocessing on — and each
side only ever writes its own cursor, so no locks are needed.

Message arrival is signalled through a per-ring POSIX semaphore (one
post per published message, one wait per consumed one): workers
outnumber cores on CI containers, so a reader that merely spun on the
write cursor would steal the very CPU its peer needs to produce the
message — the futex puts it to sleep for free and wakes it the moment
the publish lands.  Only the *interior* waits — mid-message streaming
and ring-full backpressure, both rare — spin, with adaptive backoff
that falls to ``sched_yield`` almost immediately for the same reason.

Lockstep makes the sizing easy: a worker entering round ``r`` has
already consumed its peers' round ``r - 1`` messages, so at most one
round of traffic is ever in flight per direction and the default
1 MiB ring never fills on realistic topologies.  When a message *is*
larger than the ring (a worst-case dense window), the writer streams
it through in chunks while the reader drains — ring-full is
backpressure, not an error.

Wire format, per exchange and per directed pair (the payload is the
coalesced frame of :mod:`repro.dist.frame` — one entry table, one
concatenated cycle column, ONE flit pickle for the whole exchange)::

    round header:  round_tag (i64) | entry_count (i32) | payload_bytes (i64)
                   | seq (i64) | payload_crc32 (u32) | header_crc32 (u32)
    entry table:   entry_count rows of link_index (i32) | kind (u8)
                   | start_cycle (i64) | length (i64) | valid_count (i32)
    cycle column:  sum(valid_count) int64 cycles, concatenated in entry
                   order (vectorized copies straight from each
                   TokenStream's cycle column)
    flit blob:     one pickled list of per-DATA-entry flit lists,
                   running to the payload's end.

``kind`` encodes the window's gap semantics in the table so
fault-injection paths survive the transport swap: ``DATA`` carries
valid tokens, ``IDLE`` is a table-row-only empty window (the common
case — no pickling at all), and ``LOST`` marks a window dropped in
transit, which the consumer turns into a queue gap exactly as
:meth:`~repro.core.channel.LinkEndpoint.discard_tail` would.

Integrity: the round header carries a CRC32 over itself, a CRC32 over
the payload, and a per-ring monotonic sequence number.  A reader that
sees a mismatched checksum or a skewed sequence raises a typed
:class:`~repro.faults.plan.RingCorruption` — corruption becomes a host
fault routed through checkpoint-restore, never silently-wrong
simulation results.  The checks cost two ``zlib.crc32`` calls per
round per direction, noise next to the encode loop.

Flit payloads are arbitrary Python objects (Ethernet frames), so they
still serialize through ``pickle`` — but only once per exchange per
peer; "zero-copy" buys the cycle column (vectorized copies into the
ring) and the idle windows (25 table bytes, no object traffic), which
together are nearly all of the per-round wire cost.

Segments are created by the parent *before* forking, inherited by the
workers as mapped memory, and unlinked by the parent in the run
driver's ``finally`` — normal exit, worker crash, and
checkpoint-restore all tear down through that one path, so nothing
leaks into ``/dev/shm`` (``tests/test_dist_shm.py`` and
``scripts/check_resilience.py`` enforce this).
"""

from __future__ import annotations

import multiprocessing
import os
import struct
import time
import zlib
from multiprocessing import shared_memory
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.channel import TokenStarvationError
from repro.dist.frame import decode_entries, encode_entries
from repro.faults.plan import RingCorruption
from repro.obs.prof import P_COALESCE, P_SERIALIZE

__all__ = [
    "DEFAULT_RING_CAPACITY",
    "DEFAULT_TRANSPORT_TIMEOUT_S",
    "HEARTBEAT_PREFIX",
    "SEGMENT_PREFIX",
    "ShmRing",
    "leaked_segments",
]

#: Per-direction ring capacity.  One round of sparse boundary traffic is
#: a few hundred bytes; 1 MiB absorbs dense windows without streaming.
DEFAULT_RING_CAPACITY = 1 << 20

#: How long either transport waits for peer progress before declaring
#: token starvation.  Shared by the shm ring waits and (since the
#: supervisor PR) the pipe transport's ``recv``; the CLI exposes it as
#: ``--transport-timeout``.
DEFAULT_TRANSPORT_TIMEOUT_S = 120.0

#: ``/dev/shm`` names all start with this, so leak checks can tell our
#: segments from unrelated tenants of the same host.
SEGMENT_PREFIX = "repro-ring-"

#: Heartbeat control blocks (:mod:`repro.dist.supervisor`) use this
#: prefix; the leak audit covers both families.
HEARTBEAT_PREFIX = "repro-hb-"

_CURSOR_BYTES = 16

# round_tag, entry_count, payload_bytes, seq, payload_crc, header_crc.
# The header CRC covers everything before itself; it is verified first
# so a corrupted payload_bytes can never drive a garbage-sized read.
# The payload that follows is the coalesced repro.dist.frame format.
_ROUND = struct.Struct("<qiqqII")
_HEADER_CRC_OFFSET = _ROUND.size - 4

#: Spin iterations before the first ``sched_yield``; on a shared core
#: the peer cannot run while we spin, so this is deliberately tiny.
_SPINS_BEFORE_YIELD = 32
#: Yields before escalating to real sleeps (ring-full while the peer is
#: mid-tick, or a genuinely slow round).
_YIELDS_BEFORE_SLEEP = 2048
_SLEEP_S = 200e-6


class _Backoff:
    """Adaptive wait for one cursor to move: spin, yield, then sleep."""

    __slots__ = ("waits", "deadline", "ring", "what")

    def __init__(self, ring: "ShmRing", what: str) -> None:
        self.waits = 0
        self.deadline = time.monotonic() + ring.timeout_s
        self.ring = ring
        self.what = what

    def pause(self) -> None:
        waits = self.waits = self.waits + 1
        if waits < _SPINS_BEFORE_YIELD:
            return
        if waits < _YIELDS_BEFORE_SLEEP:
            time.sleep(0)
            return
        time.sleep(_SLEEP_S)
        if time.monotonic() > self.deadline:
            ring = self.ring
            raise TokenStarvationError(
                f"shm ring {ring.name} (worker {ring.src} -> "
                f"{ring.dst}) stalled waiting for {self.what}: peer made "
                f"no progress for {ring.timeout_s:.0f}s",
                link_name=ring.name,
            )

    def reset(self) -> None:
        self.waits = 0


class ShmRing:
    """One directed worker pair's lock-free token ring.

    The parent creates rings pre-fork (:meth:`create`); both the
    producing and consuming worker inherit the same mapped segment, so
    :meth:`send` and :meth:`recv` need no per-side setup.  Only the
    parent may :meth:`destroy` (close + unlink); workers merely
    :meth:`close` their mapping on the way out.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        capacity: int,
        src: int,
        dst: int,
        timeout_s: float,
        wakeup: Any = None,
    ) -> None:
        self._segment: Optional[shared_memory.SharedMemory] = segment
        self.capacity = capacity
        self.src = src
        self.dst = dst
        self.timeout_s = timeout_s
        self.name = segment.name
        # One permit per published-but-unconsumed message.  None is
        # allowed (single-process unit tests fall back to spinning).
        self._wakeup = wakeup
        # Cursor views must be dropped before the segment's mmap can
        # close; close()/destroy() handle the ordering.
        self._cursors = np.frombuffer(
            segment.buf, dtype=np.uint64, count=2
        )
        self._data = segment.buf[_CURSOR_BYTES:_CURSOR_BYTES + capacity]
        self._stage = bytearray()
        self._header = bytearray(_ROUND.size)
        # -- occupancy / backpressure counters (profiler telemetry) ----
        # Plain per-process ints: after the fork each side accumulates
        # only what *it* did (the producer its sends, the consumer its
        # receives), which is exactly the attribution the profiler
        # wants.  Always on — an int add per message is noise next to
        # the encode loop.
        self.sent_messages = 0
        self.sent_bytes = 0
        #: Peak published-but-unconsumed bytes observed at send time.
        self.high_water_bytes = 0
        #: Sends whose message exceeded free ring space (reader-drains-
        #: while-writer-fills streaming mode).
        self.streaming_sends = 0
        #: Times the writer found the ring completely full and had to
        #: back off mid-message.
        self.backpressure_stalls = 0
        #: Receives that found no published message and went to sleep
        #: on the wakeup semaphore.
        self.blocked_wakeups = 0
        #: Receives that found data published with no wakeup permit —
        #: a lost wakeup self-healed by the cursor check instead of
        #: timing out (see ``recv``).
        self.wakeup_recoveries = 0
        self.recv_messages = 0
        self.recv_bytes = 0
        # -- integrity state ------------------------------------------
        # Per-direction monotonic frame sequence.  Each side of the
        # fork owns one counter: the producer stamps _send_seq into
        # every frame, the consumer checks frames against _recv_seq.
        self._send_seq = 0
        self._recv_seq = 0
        #: Fault injection (repro.faults ``ring-corrupt`` verb): flip
        #: one staged byte *after* the checksums are computed, so the
        #: reader's CRC check must catch it.
        self.corrupt_next_send = False
        #: Fault injection (``wakeup-loss`` verb): skip one semaphore
        #: release, exercising the reader's cursor-check recovery.
        self.drop_next_wakeup = False
        #: Optional PhaseRecorder: when set by a profiled worker, the
        #: encode loop's time is accrued to its ``serialize`` phase.
        self.phase_sink: Any = None

    @classmethod
    def create(
        cls,
        src: int,
        dst: int,
        capacity: int = DEFAULT_RING_CAPACITY,
        timeout_s: float = DEFAULT_TRANSPORT_TIMEOUT_S,
    ) -> "ShmRing":
        """Allocate a fresh zeroed segment for the ``src -> dst`` hop.

        Raises ``OSError`` when the host cannot provide POSIX shared
        memory (read-only or absent ``/dev/shm``); the run driver
        catches that and falls back to the pipe transport.
        """
        if capacity < _ROUND.size:
            raise ValueError(f"ring capacity too small: {capacity}")
        name = f"{SEGMENT_PREFIX}{os.getpid()}-{src}to{dst}"
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=_CURSOR_BYTES + capacity
        )
        wakeup = multiprocessing.get_context("fork").Semaphore(0)
        # A fresh segment is zero-filled, so both cursors start at 0.
        return cls(segment, capacity, src, dst, timeout_s, wakeup)

    # -- ring mechanics --------------------------------------------------

    def _write(self, payload: Any) -> None:
        """Copy ``payload`` into the ring, publishing as space allows."""
        view = memoryview(payload)
        if view.format != "B":
            view = view.cast("B")
        total = len(view)
        capacity = self.capacity
        cursors = self._cursors
        data = self._data
        write = int(cursors[0])
        # Fast path: the whole message fits in free space right now —
        # one or two slice copies, one cursor publish, no loop state.
        if total <= capacity - (write - int(cursors[1])):
            position = write % capacity
            first = capacity - position
            if total <= first:
                data[position:position + total] = view
            else:
                data[position:position + first] = view[:first]
                data[0:total - first] = view[first:]
            cursors[0] = write + total  # publish after the bytes landed
            return
        sent = 0
        backoff = None
        while sent < total:
            free = capacity - (write - int(cursors[1]))
            if free == 0:
                if backoff is None:
                    self.backpressure_stalls += 1
                    self.high_water_bytes = capacity
                    backoff = _Backoff(self, "ring space")
                backoff.pause()
                continue
            if backoff is not None:
                backoff.reset()
            chunk = min(free, total - sent)
            position = write % capacity
            first = min(chunk, capacity - position)
            data[position:position + first] = view[sent:sent + first]
            if chunk > first:
                data[0:chunk - first] = view[sent + first:sent + chunk]
            write += chunk
            sent += chunk
            cursors[0] = write  # publish only after the bytes landed

    def _read(self, count: int) -> bytearray:
        """Copy exactly ``count`` bytes out, freeing ring space as we go."""
        out = bytearray(count)
        capacity = self.capacity
        cursors = self._cursors
        data = self._data
        read = int(cursors[1])
        # Fast path: everything we need is already published.
        if count <= int(cursors[0]) - read:
            position = read % capacity
            first = capacity - position
            if count <= first:
                out[:] = data[position:position + count]
            else:
                out[:first] = data[position:position + first]
                out[first:] = data[0:count - first]
            cursors[1] = read + count  # free the space for the writer
            return out
        filled = 0
        backoff = None
        while filled < count:
            available = int(cursors[0]) - read
            if available == 0:
                if backoff is None:
                    backoff = _Backoff(self, "peer tokens")
                backoff.pause()
                continue
            if backoff is not None:
                backoff.reset()
            chunk = min(available, count - filled)
            position = read % capacity
            first = min(chunk, capacity - position)
            out[filled:filled + first] = data[position:position + first]
            if chunk > first:
                out[filled + first:filled + chunk] = data[0:chunk - first]
            read += chunk
            filled += chunk
            cursors[1] = read  # free the space for the writer
        return out

    # -- wire codec ------------------------------------------------------

    def send(self, round_tag: int, entries: Sequence[Tuple[int, Any]]) -> None:
        """Encode and publish one exchange's wire entries as ONE frame.

        ``entries`` are ``(link_index, window)`` pairs in the producer's
        own representation — ``TokenStream`` for busy batched windows,
        ``TokenBatch`` for scalar or idle windows, ``LostWindow`` for
        fault-injected transport loss.  All of them leave as a single
        coalesced payload (:mod:`repro.dist.frame`) under one ring
        header — one publish, one wakeup, one pickle per peer per
        exchange.
        """
        sink = self.phase_sink
        stage_start = time.perf_counter() if sink is not None else 0.0
        stage = self._stage
        del stage[:]
        stage += self._header  # round-header placeholder, packed below
        entry_count = encode_entries(entries, stage)
        frame_done = time.perf_counter() if sink is not None else 0.0
        self._send_seq += 1
        payload_view = memoryview(stage)[_ROUND.size:]
        _ROUND.pack_into(
            stage, 0, round_tag, entry_count, len(stage) - _ROUND.size,
            self._send_seq, zlib.crc32(payload_view), 0,
        )
        header_crc = zlib.crc32(memoryview(stage)[:_HEADER_CRC_OFFSET])
        struct.pack_into("<I", stage, _HEADER_CRC_OFFSET, header_crc)
        payload_view.release()
        if self.corrupt_next_send:
            # Injected bit-flip, applied after both checksums so the
            # reader's integrity check must be what catches it.
            self.corrupt_next_send = False
            victim = _ROUND.size if len(stage) > _ROUND.size else 0
            stage[victim] ^= 0x01
        if sink is not None:
            # The encode ran inside the round loop's send segment; hand
            # the payload build to ``coalesce`` and the header/CRC
            # framing to ``serialize`` so ``send`` nets out to the
            # publish alone.
            sink.accrue(P_COALESCE, frame_done - stage_start)
            sink.accrue(P_SERIALIZE, time.perf_counter() - frame_done)
        self.sent_messages += 1
        self.sent_bytes += len(stage)
        cursors = self._cursors
        wakeup = self._wakeup
        if wakeup is None:
            self._write(stage)
        elif len(stage) > self.capacity - int(cursors[0]) + int(cursors[1]):
            # The message must stream through the ring: wake the reader
            # *first* so it drains while we fill — releasing after the
            # write would deadlock (writer waits for space, reader
            # sleeps on the semaphore).
            self.streaming_sends += 1
            wakeup.release()
            self._write(stage)
        else:
            # Common case: the write cannot block, so publish the bytes
            # before the wakeup and the reader never spins.
            self._write(stage)
            if self.drop_next_wakeup:
                # Injected wakeup loss: the bytes are published but the
                # permit never posts; the reader's cursor check must
                # recover on its own.
                self.drop_next_wakeup = False
            else:
                wakeup.release()
        pending = int(cursors[0]) - int(cursors[1])
        if pending > self.high_water_bytes:
            self.high_water_bytes = pending

    def recv(
        self, expected_round: int, block: bool = True
    ) -> Optional[List[Tuple[int, Any]]]:
        """Decode one exchange message; block for it unless told not to.

        With ``block=False`` (the worker's lazy-receive sweep) a ring
        with no published message returns ``None`` immediately instead
        of sleeping on the wakeup semaphore — no permit is consumed and
        no recovery heuristics run, so the sweep can never race the
        peer's publish/release window.
        """
        wakeup = self._wakeup
        cursors = self._cursors
        if wakeup is not None:
            if not wakeup.acquire(False):
                if not block:
                    return None
                if int(cursors[0]) > int(cursors[1]):
                    # Data is published but no permit posted: a lost
                    # wakeup (injected or a genuinely dropped post).
                    # Self-heal by trusting the cursors — the
                    # payload-then-publish order guarantees the bytes
                    # are complete.
                    self.wakeup_recoveries += 1
                else:
                    # Sleep on the futex until the peer's publish, so
                    # the peer gets the whole core; cap the wait so a
                    # dead peer still surfaces as starvation rather
                    # than a hang.
                    self.blocked_wakeups += 1
                    deadline = time.monotonic() + self.timeout_s
                    while not wakeup.acquire(True, 1.0):
                        if int(cursors[0]) > int(cursors[1]):
                            # Published without a permit mid-wait:
                            # recover rather than starve on the
                            # missing post.
                            self.wakeup_recoveries += 1
                            break
                        if time.monotonic() > deadline:
                            raise TokenStarvationError(
                                f"shm ring {self.name} (worker "
                                f"{self.src} -> {self.dst}) stalled: "
                                f"peer published nothing for "
                                f"{self.timeout_s:.0f}s",
                                link_name=self.name,
                            )
        elif not block and int(cursors[0]) == int(cursors[1]):
            # No wakeup semaphore (single-process tests): the cursor
            # pair is the only publish signal.
            return None
        header = self._read(_ROUND.size)
        (
            round_tag, entry_count, payload_bytes, seq,
            payload_crc, header_crc,
        ) = _ROUND.unpack(header)
        if zlib.crc32(memoryview(header)[:_HEADER_CRC_OFFSET]) != header_crc:
            raise RingCorruption(
                f"shm ring {self.name} (worker {self.src} -> {self.dst}): "
                f"round header failed its CRC32 check",
                ring=f"ring:{self.src}->{self.dst}",
            )
        expected_seq = self._recv_seq + 1
        if seq != expected_seq:
            raise RingCorruption(
                f"shm ring {self.name} (worker {self.src} -> {self.dst}): "
                f"frame sequence skew: got {seq}, expected {expected_seq}",
                ring=f"ring:{self.src}->{self.dst}",
            )
        self._recv_seq = seq
        if round_tag != expected_round:
            raise TokenStarvationError(
                f"worker {self.dst}: out-of-order token message from "
                f"worker {self.src}: round {round_tag}, expected "
                f"{expected_round}"
            )
        payload = self._read(payload_bytes)
        if zlib.crc32(payload) != payload_crc:
            raise RingCorruption(
                f"shm ring {self.name} (worker {self.src} -> {self.dst}): "
                f"round {round_tag} payload failed its CRC32 check "
                f"({payload_bytes} bytes)",
                ring=f"ring:{self.src}->{self.dst}",
            )
        entries = decode_entries(payload, entry_count)
        self.recv_messages += 1
        self.recv_bytes += _ROUND.size + payload_bytes
        return entries

    # -- telemetry -------------------------------------------------------

    def counters(self) -> dict:
        """This process's view of the ring's traffic counters.

        Counters are per-process plain ints (shared memory holds only
        the byte ring), so the producer's copy reports the send side
        and the consumer's copy the receive side — which is exactly how
        a profiled worker attributes its own directions.
        """
        return {
            "sent_messages": self.sent_messages,
            "sent_bytes": self.sent_bytes,
            "high_water_bytes": self.high_water_bytes,
            "streaming_sends": self.streaming_sends,
            "backpressure_stalls": self.backpressure_stalls,
            "blocked_wakeups": self.blocked_wakeups,
            "wakeup_recoveries": self.wakeup_recoveries,
            "recv_messages": self.recv_messages,
            "recv_bytes": self.recv_bytes,
            "capacity": self.capacity,
        }

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (workers, on the way out)."""
        segment = self._segment
        if segment is None:
            return
        self._segment = None
        # numpy/memoryview exports must die before mmap.close() or it
        # raises BufferError during interpreter shutdown.
        self._cursors = None  # type: ignore[assignment]
        self._data = None  # type: ignore[assignment]
        segment.close()

    def destroy(self) -> None:
        """Close and unlink the segment (parent only; idempotent)."""
        segment = self._segment
        self.close()
        if segment is None:
            return
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def leaked_segments() -> List[str]:
    """Names of repro shared-memory segments still present on this host.

    Empty on platforms without ``/dev/shm``; used by the leak checks in
    ``tests/test_dist_shm.py`` and ``scripts/check_resilience.py``.
    """
    try:
        names = os.listdir("/dev/shm")
    except OSError:
        return []
    prefixes = (SEGMENT_PREFIX, HEARTBEAT_PREFIX)
    return sorted(name for name in names if name.startswith(prefixes))
