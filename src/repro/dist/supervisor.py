"""Liveness supervision for distributed runs: heartbeats and hang kills.

The crash path in :mod:`repro.dist.engine` only covers workers that
*die* — an ``("error", ...)`` report or a nonzero exit surfaces as
:class:`~repro.faults.plan.WorkerCrash` and checkpoint-restores.  A
worker that *hangs* (deadlocked pipe recv, lost shm wakeup, livelocked
round loop) kept its process alive and its result pending, so the
parent's poll loop would wait forever.  This module closes that gap the
way the paper's manager supervises simulation hosts (Section III-C):
progress must be *observable*, and a host that stops progressing is
declared failed and recycled.

Two pieces:

:class:`HeartbeatBlock`
    A small pre-fork ``multiprocessing.shared_memory`` control block
    with one fixed slot per worker.  Each slot is a tiny single-writer
    ring of ``(round, phase, stamp)`` entries published through a
    monotonic sequence counter (payload-then-publish, same discipline
    as :class:`~repro.dist.shm.ShmRing` cursors): the worker writes the
    entry at ``seq % depth`` first and bumps ``seq`` after, so the
    parent always reads a complete beat at ``(seq - 1) % depth`` and
    the counter itself is the progress signal.  Workers beat several
    times per lockstep round (entering recv, entering compute, entering
    send), so the parent can name the *phase* a hung worker died in.

:class:`Supervisor`
    The parent-side monitor, polled from the collection loop whenever
    the result queue is idle.  It tracks per-worker sequence advance
    against an adaptive deadline — a grace multiple of the observed
    per-round time (EMA over round advances), clamped below by a
    configurable floor so short rounds never false-positive — and
    returns a :class:`HangVerdict` for the first worker that blows it.
    The engine then escalates SIGTERM -> SIGKILL via :meth:`kill` and
    raises :class:`~repro.faults.plan.WorkerHang`, which the manager
    handles exactly like a crash: checkpoint-restore, one fewer worker.

A host without usable POSIX shared memory simply runs without the
block (``HeartbeatBlock.create`` raising ``OSError`` degrades
supervision to crash-only detection); the report records it disabled.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Set

import numpy as np

from repro import ConfigError
from repro.dist.shm import HEARTBEAT_PREFIX

__all__ = [
    "HB_STARTUP",
    "HB_RECV",
    "HB_COMPUTE",
    "HB_SEND",
    "HB_DONE",
    "PHASE_NAMES",
    "Heartbeat",
    "HeartbeatBlock",
    "HeartbeatWriter",
    "SupervisorConfig",
    "HangVerdict",
    "Supervisor",
]

# Beat phases: where in the lockstep round the worker last checked in.
HB_STARTUP = 0  # forked, not yet in the round loop
HB_RECV = 1  # waiting on peer tokens
HB_COMPUTE = 2  # ticking models
HB_SEND = 3  # publishing boundary tokens
HB_DONE = 4  # round loop finished, result being shipped

PHASE_NAMES = {
    HB_STARTUP: "startup",
    HB_RECV: "recv",
    HB_COMPUTE: "compute",
    HB_SEND: "send",
    HB_DONE: "done",
}

#: Beats retained per worker slot.  The newest beat is all the monitor
#: needs; the short history exists for post-mortem diagnostics (what
#: phases led up to the hang) and must survive sequence wraparound
#: within the slot — see ``tests/test_supervisor.py``.
SLOT_DEPTH = 8

_SLOT_DTYPE = np.dtype(
    {
        "names": ["seq", "round", "phase", "stamp"],
        "formats": [
            "<u8",
            ("<u8", (SLOT_DEPTH,)),
            ("<u8", (SLOT_DEPTH,)),
            ("<f8", (SLOT_DEPTH,)),
        ],
    }
)

# Heartbeat segments share a pid prefix with token rings but need a
# per-process serial too: a manager that restarts a run (checkpoint
# restore) creates a second block before the kernel has necessarily
# reaped the first name.
_block_serial = 0


@dataclass(frozen=True)
class Heartbeat:
    """One decoded beat: the worker's latest published progress."""

    worker_id: int
    seq: int
    round: int
    phase: int
    stamp_s: float

    @property
    def phase_name(self) -> str:
        return PHASE_NAMES.get(self.phase, f"phase{self.phase}")


class HeartbeatWriter:
    """A worker's handle for publishing beats into its own slot.

    Single writer per slot (the worker), single reader (the parent);
    the payload-then-publish order on ``seq`` is the only discipline
    needed.  ``beat`` sits inside the round loop, so it is a few numpy
    scalar stores and nothing else.
    """

    __slots__ = ("_block", "_worker_id")

    def __init__(self, block: "HeartbeatBlock", worker_id: int) -> None:
        # Hold the block, not a numpy view: a cached view would pin the
        # mmap's exported-pointer count and make close() a BufferError
        # whenever a writer outlives the block.  The per-beat record
        # lookup is a refcounted temporary that dies immediately.
        self._block = block
        self._worker_id = worker_id

    def beat(self, round_index: int, phase: int) -> None:
        slot = self._block._slots[self._worker_id]
        seq = int(slot["seq"])
        index = seq % SLOT_DEPTH
        slot["round"][index] = round_index
        slot["phase"][index] = phase
        slot["stamp"][index] = time.monotonic()
        slot["seq"] = seq + 1  # publish after the entry landed


class HeartbeatBlock:
    """Pre-fork shared control block: one beat slot per worker."""

    def __init__(
        self, segment: shared_memory.SharedMemory, num_workers: int
    ) -> None:
        self._segment: Optional[shared_memory.SharedMemory] = segment
        self.num_workers = num_workers
        self.name = segment.name
        self._slots = np.frombuffer(
            segment.buf, dtype=_SLOT_DTYPE, count=num_workers
        )

    @classmethod
    def create(cls, num_workers: int) -> "HeartbeatBlock":
        """Allocate a zeroed block (parent, before forking).

        Raises ``OSError`` when the host cannot provide POSIX shared
        memory; the run driver degrades to crash-only supervision.
        """
        global _block_serial
        _block_serial += 1
        name = f"{HEARTBEAT_PREFIX}{os.getpid()}-{_block_serial}"
        segment = shared_memory.SharedMemory(
            name=name,
            create=True,
            size=_SLOT_DTYPE.itemsize * num_workers,
        )
        # Zero-filled on creation: seq == 0 means "no beat yet".
        return cls(segment, num_workers)

    def writer(self, worker_id: int) -> HeartbeatWriter:
        return HeartbeatWriter(self, worker_id)

    def read(self, worker_id: int) -> Optional[Heartbeat]:
        """The worker's newest published beat, or None before the first."""
        slot = self._slots[worker_id]
        seq = int(slot["seq"])
        if seq == 0:
            return None
        index = (seq - 1) % SLOT_DEPTH
        return Heartbeat(
            worker_id=worker_id,
            seq=seq,
            round=int(slot["round"][index]),
            phase=int(slot["phase"][index]),
            stamp_s=float(slot["stamp"][index]),
        )

    def history(self, worker_id: int) -> List[Heartbeat]:
        """Up to the last ``SLOT_DEPTH`` beats, oldest first."""
        slot = self._slots[worker_id]
        seq = int(slot["seq"])
        beats: List[Heartbeat] = []
        for past in range(min(seq, SLOT_DEPTH), 0, -1):
            entry_seq = seq - past + 1
            index = (entry_seq - 1) % SLOT_DEPTH
            beats.append(
                Heartbeat(
                    worker_id=worker_id,
                    seq=entry_seq,
                    round=int(slot["round"][index]),
                    phase=int(slot["phase"][index]),
                    stamp_s=float(slot["stamp"][index]),
                )
            )
        return beats

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (workers, on the way out)."""
        segment = self._segment
        if segment is None:
            return
        self._segment = None
        # numpy views must die before the mmap closes (BufferError).
        self._slots = None  # type: ignore[assignment]
        segment.close()

    def destroy(self) -> None:
        """Close and unlink the segment (parent only; idempotent)."""
        segment = self._segment
        self.close()
        if segment is None:
            return
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


@dataclass
class SupervisorConfig:
    """Knobs for the hang detector.

    ``hang_timeout_s`` is the deadline *floor*: a worker is never
    declared hung before this many seconds of zero progress, no matter
    how fast rounds have been.  The effective deadline is
    ``max(floor, round_grace * observed_round_seconds)`` so slow
    topologies (dense windows, big quanta) get proportionally more
    rope.  ``kill_grace_s`` is how long SIGTERM gets before SIGKILL.
    """

    enabled: bool = True
    hang_timeout_s: float = 30.0
    round_grace: float = 16.0
    kill_grace_s: float = 2.0

    def __post_init__(self) -> None:
        if self.hang_timeout_s <= 0:
            raise ConfigError(
                f"hang_timeout_s must be positive, got {self.hang_timeout_s}"
            )
        if self.round_grace < 1.0:
            raise ConfigError(
                f"round_grace must be >= 1, got {self.round_grace}"
            )
        if self.kill_grace_s < 0:
            raise ConfigError(
                f"kill_grace_s must be >= 0, got {self.kill_grace_s}"
            )


@dataclass(frozen=True)
class HangVerdict:
    """A worker declared hung: who, where, and how long it sat."""

    worker_id: int
    idle_s: float
    deadline_s: float
    round: int
    phase: int
    seq: int

    def describe(self) -> str:
        phase = PHASE_NAMES.get(self.phase, f"phase{self.phase}")
        if self.seq == 0:
            where = "before its first heartbeat"
        else:
            where = f"in phase {phase!r} of round {self.round}"
        return (
            f"hung {where}: no progress for {self.idle_s:.1f}s "
            f"(deadline {self.deadline_s:.1f}s)"
        )


class Supervisor:
    """Parent-side liveness monitor over a :class:`HeartbeatBlock`.

    ``poll`` is called from the engine's collection loop on every idle
    queue timeout; it is cheap (one numpy scalar read per live worker)
    and returns at most one :class:`HangVerdict` per call so the
    engine handles a single failure at a time, exactly as it does for
    crashes.
    """

    def __init__(
        self,
        block: Optional[HeartbeatBlock],
        num_workers: int,
        config: SupervisorConfig,
        stats: Optional[Any] = None,
    ) -> None:
        self.block = block
        self.num_workers = num_workers
        self.config = config
        self.stats = stats
        now = time.monotonic()
        self._last_seq = {wid: 0 for wid in range(num_workers)}
        self._last_round = {wid: -1 for wid in range(num_workers)}
        self._last_progress = {wid: now for wid in range(num_workers)}
        self._round_stamp = {wid: now for wid in range(num_workers)}
        self._round_ema: Dict[int, float] = {}
        self.polls = 0
        self.beats_seen = 0
        self.verdicts: List[HangVerdict] = []
        self.workers_killed = 0

    @property
    def enabled(self) -> bool:
        return self.config.enabled and self.block is not None

    def deadline_s(self) -> float:
        """Current adaptive deadline: grace x observed round time, floored."""
        floor = self.config.hang_timeout_s
        if not self._round_ema:
            return floor
        # The slowest worker's cadence sets the deadline: declaring the
        # straggler hung because its *peers* are fast would be wrong.
        return max(floor, self.config.round_grace * max(self._round_ema.values()))

    def poll(self, done: Set[int]) -> Optional[HangVerdict]:
        """Check every unfinished worker's progress; verdict on the first hang."""
        if not self.enabled:
            return None
        assert self.block is not None
        self.polls += 1
        now = time.monotonic()
        for worker_id in range(self.num_workers):
            if worker_id in done:
                continue
            beat = self.block.read(worker_id)
            seq = beat.seq if beat is not None else 0
            if seq > self._last_seq[worker_id]:
                self.beats_seen += seq - self._last_seq[worker_id]
                self._last_seq[worker_id] = seq
                self._last_progress[worker_id] = now
                assert beat is not None
                rounds_advanced = beat.round - self._last_round[worker_id]
                if self._last_round[worker_id] >= 0 and rounds_advanced > 0:
                    per_round = (
                        now - self._round_stamp[worker_id]
                    ) / rounds_advanced
                    previous = self._round_ema.get(worker_id)
                    self._round_ema[worker_id] = (
                        per_round
                        if previous is None
                        else 0.8 * previous + 0.2 * per_round
                    )
                if rounds_advanced > 0 or self._last_round[worker_id] < 0:
                    self._last_round[worker_id] = beat.round
                    self._round_stamp[worker_id] = now
                continue
            idle = now - self._last_progress[worker_id]
            deadline = self.deadline_s()
            if idle <= deadline:
                continue
            verdict = HangVerdict(
                worker_id=worker_id,
                idle_s=idle,
                deadline_s=deadline,
                round=beat.round if beat is not None else -1,
                phase=beat.phase if beat is not None else HB_STARTUP,
                seq=seq,
            )
            self.verdicts.append(verdict)
            if self.stats is not None:
                self.stats.hangs_detected += 1
            return verdict
        return None

    def kill(self, process: Any) -> None:
        """Escalate a hung worker: SIGTERM, grace, SIGKILL, reap."""
        process.terminate()
        process.join(self.config.kill_grace_s)
        if process.is_alive():
            process.kill()
            process.join()
        self.workers_killed += 1
        if self.stats is not None:
            self.stats.workers_killed += 1

    def report(self) -> Dict[str, Any]:
        """Supervision summary for ``DistributedRunResult.supervision``."""
        return {
            "enabled": self.enabled,
            "polls": self.polls,
            "beats": self.beats_seen,
            "hangs": len(self.verdicts),
            "workers_killed": self.workers_killed,
            "deadline_s": self.deadline_s() if self.enabled else 0.0,
            "verdicts": [verdict.describe() for verdict in self.verdicts],
        }
