"""One shard's execution loop inside a worker process.

Each worker owns a contiguous shard of the model graph and executes the
*same* round structure as the serial orchestrator
(:meth:`repro.core.simulation.Simulation._run_round`): pop one
quantum-sized window per input port, tick every shard model in global
registration order, push one window per output port.  The only
difference is where boundary tokens go — interior links use the local
queues, boundary links hand relabelled batches to per-peer outboxes
that are flushed once per round.

Synchronization is pure token exchange, exactly the paper's argument
(Section III-B2), batched into *exchange rounds*: the run driver
derives a ``round_quantum`` from the partition's boundary-latency
floor (paper Fig 9: rate grows with batch size), and workers exchange
one coalesced message per peer per ``round_quantum // quantum`` local
rounds.  A worker entering exchange ``e > 0`` first drains one message
per peer (the peer's exchange ``e - 1`` boundary output).  Link
priming guarantees the whole first exchange needs nothing — the primed
window is at least ``round_quantum`` deep — and from then on each
received message extends every boundary queue by one round quantum, so
no worker can ever run ahead of a peer by more than the in-flight
token window — lockstep without any clock, barrier, or coordinator.

Two latency hides ride on top of the lockstep (Section III-C's
compute/transport overlap): sends are *eager* — each peer's coalesced
message is posted as soon as the last local model producing toward
that peer has ticked, while the rest of the shard is still computing —
and receives are *lazy*: a non-blocking sweep first collects every
peer message that already arrived, and only then does the worker block
on the stragglers, so ``recv_wait`` measures true skew rather than
delivery order.

Workers are forked, so they inherit the fully elaborated simulation
(models, primed links, armed fault hooks) by memory image; nothing is
pickled on the way in.  Only token batches and the final
:class:`WorkerResult` cross process boundaries.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from queue import Empty
from time import perf_counter, process_time
from typing import Any, Dict, List, Optional, Tuple

from repro.core.channel import TokenStarvationError
from repro.core.simulation import Simulation, _Attachment
from repro.core.token import TokenWindow
from repro.dist.frame import decode_entries, encode_entries
from repro.dist.partition import PartitionPlan
from repro.dist.remote_link import (
    LostWindow,
    Outbox,
    RemoteAttachment,
    WireEntry,
)
from repro.dist.shm import DEFAULT_TRANSPORT_TIMEOUT_S
from repro.dist.supervisor import (
    HB_COMPUTE,
    HB_DONE,
    HB_RECV,
    HB_SEND,
    HB_STARTUP,
)
from repro.net.switch import SwitchModel
from repro.net.tracer import LinkTracer
from repro.obs.prof import (
    P_COALESCE,
    P_COMPUTE,
    P_GAP,
    P_RECV_WAIT,
    P_SEND,
    ClockSync,
    PhaseRecorder,
    ProbeRecorder,
    WorkerProfile,
)
from repro.obs.trace import set_trace_sink
from repro.swmodel.server import ServerBlade

# Worker-process identity, published for the fault injector's
# transport chaos verbs (worker-hang / ring-corrupt / wakeup-loss):
# the injector hook runs deep inside the inherited simulation and has
# no handle on the shard context, so :func:`shard_entry` and
# :func:`run_shard` park the id and the outbound channel map here.
# Both stay None/{} in the parent and in serial runs.
_WORKER_ID: Optional[int] = None
_SEND_CHANNELS: Dict[int, Any] = {}


@dataclass
class WorkerResult:
    """Everything a worker ships back after finishing its shard."""

    worker_id: int
    start_cycle: int
    end_cycle: int
    rounds: int
    tokens_moved: int
    valid_tokens_moved: int
    wall_seconds: float
    #: Workers this shard exchanged tokens with (one message per peer
    #: per round), the boundary links it transmitted on, and the valid
    #: tokens those links actually carried — the inputs to the engine's
    #: per-round transport cost model (batches ship sparse, so payload
    #: scales with valid tokens, not the quantum).
    peer_count: int = 0
    boundary_link_count: int = 0
    boundary_valid_tokens: int = 0
    model_names: List[str] = field(default_factory=list)
    #: Host seconds per model tick (populated when measuring).
    model_host_seconds: Dict[str, float] = field(default_factory=dict)
    #: Final counters per switch owned by this shard.
    switch_stats: Dict[str, Any] = field(default_factory=dict)
    switch_queued: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: Final result stores per blade owned by this shard.
    blade_results: Dict[str, Dict[str, list]] = field(default_factory=dict)
    #: Packet records per tracer owned by this shard.
    tracer_records: Dict[str, list] = field(default_factory=dict)
    #: Per-direction flit counters for links whose producer side is
    #: local: ``link_index -> (flits_a_to_b | None, flits_b_to_a | None)``.
    link_flits: Dict[int, Tuple[Optional[int], Optional[int]]] = field(
        default_factory=dict
    )
    #: Host seconds this worker spent inside transport calls (populated
    #: when measuring): ``send`` covers serialize + enqueue/publish,
    #: ``recv`` covers dequeue/spin + decode.  Together with the round
    #: count these give the per-round transport overhead the benches
    #: report per transport.
    transport_send_seconds: float = 0.0
    transport_recv_seconds: float = 0.0
    #: CPU seconds the round loop burned (``time.process_time`` around
    #: the loop).  Blocking recv waits cost ~no CPU, so this isolates
    #: the cycles the worker actually executed from lockstep wait
    #: time; the profiler-overhead bench ships it alongside the
    #: wall-based gate ratio as a diagnostic.
    cpu_seconds: float = 0.0
    #: Per-round phase attribution (a
    #: :class:`~repro.obs.prof.WorkerProfile`), populated only when the
    #: run driver requested profiling.
    profile: Optional[Any] = None

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle

    def rate_mhz(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.cycles / self.wall_seconds / 1e6


class PipeChannel:
    """The ``mp.Queue`` transport in the shm ring's send/recv shape.

    ``send`` coalesces the *drained* entry list into one
    :mod:`repro.dist.frame` payload before enqueueing, so the queue's
    feeder thread pickles a single flat buffer instead of walking the
    window object graph — the same wire bytes the shm ring publishes,
    minus the ring's integrity header.  ``recv`` blocks for the peer's
    message with the same progress deadline as
    :meth:`~repro.dist.shm.ShmRing.recv` — a peer that publishes
    nothing for ``timeout_s`` surfaces as token starvation, not a hang
    — and enforces round ordering the same way.  ``recv(..., block=
    False)`` polls: it returns None when no message is waiting, which
    the lazy receive sweep uses to take whichever peers already
    published before blocking on the rest.
    """

    __slots__ = (
        "_queue", "src", "dst", "timeout_s",
        "sent_messages", "recv_messages", "phase_sink",
    )

    def __init__(
        self, queue: Any, src: int, dst: int,
        timeout_s: float = DEFAULT_TRANSPORT_TIMEOUT_S,
    ) -> None:
        self._queue = queue
        self.src = src
        self.dst = dst
        self.timeout_s = timeout_s
        self.sent_messages = 0
        self.recv_messages = 0
        #: Optional phase recorder; when set, the coalescing cost of
        #: each send is accrued as the ``coalesce`` phase (the queue's
        #: pickle + kernel copy stay in ``send``, where they land on
        #: the feeder thread anyway).
        self.phase_sink: Optional[Any] = None

    def send(self, round_tag: int, entries: List[WireEntry]) -> None:
        sink = self.phase_sink
        start = perf_counter() if sink is not None else 0.0
        payload = bytearray()
        entry_count = encode_entries(entries, payload)
        if sink is not None:
            sink.accrue(P_COALESCE, perf_counter() - start)
        self.sent_messages += 1
        self._queue.put((round_tag, entry_count, payload))

    def recv(
        self, expected_round: int, block: bool = True
    ) -> Optional[List[WireEntry]]:
        if block:
            try:
                message = self._queue.get(timeout=self.timeout_s)
            except Empty:
                raise TokenStarvationError(
                    f"pipe channel (worker {self.src} -> {self.dst}) "
                    f"stalled: peer published nothing for "
                    f"{self.timeout_s:.0f}s",
                ) from None
        else:
            try:
                message = self._queue.get_nowait()
            except Empty:
                return None
        round_tag, entry_count, payload = message
        if round_tag != expected_round:
            raise TokenStarvationError(
                f"worker {self.dst}: out-of-order token message from "
                f"worker {self.src}: round {round_tag}, expected "
                f"{expected_round}"
            )
        self.recv_messages += 1
        return decode_entries(payload, entry_count)

    def counters(self) -> Dict[str, int]:
        """Message counts, shaped like :meth:`ShmRing.counters`.

        Pipes pickle on a feeder thread and copy through the kernel, so
        occupancy/backpressure numbers have no pipe equivalent — only
        the message counts are meaningful here.
        """
        return {
            "sent_messages": self.sent_messages,
            "recv_messages": self.recv_messages,
        }


@dataclass
class ShardContext:
    """Everything a forked worker needs, inherited by memory image."""

    simulation: Simulation
    plan: PartitionPlan
    target_cycle: int
    quantum: int
    measure: bool
    #: channels[(src, dst)] carries src's boundary output toward dst —
    #: a :class:`PipeChannel` or a :class:`~repro.dist.shm.ShmRing`,
    #: chosen by the run driver; the round loop is transport-agnostic.
    channels: Dict[Tuple[int, int], Any]
    result_queue: Any
    #: Cycles between boundary token exchanges — a multiple of
    #: ``quantum`` no larger than the partition's boundary-latency
    #: floor, derived by the run driver (0 means "every round", the
    #: pre-adaptive behavior and the safe default).
    round_quantum: int = 0
    #: A :class:`~repro.obs.prof.ProfileConfig` to enable the per-round
    #: phase profiler, or None (default) for the uninstrumented loop.
    profile: Optional[Any] = None
    #: Parent ``perf_counter`` stamped just before forking — the shared
    #: epoch every worker's :class:`~repro.obs.prof.ClockSync` anchors
    #: its trace timestamps to.
    epoch_s: float = 0.0
    #: A :class:`~repro.dist.supervisor.HeartbeatBlock` created by the
    #: parent pre-fork, or None when supervision is disabled (or the
    #: host has no usable POSIX shared memory).  Workers publish beats
    #: into their slot several times per lockstep round.
    heartbeats: Optional[Any] = None


def _build_attachments(
    simulation: Simulation, plan: PartitionPlan, worker_id: int
) -> Tuple[Dict[Tuple[int, str], Any], Dict[int, Outbox], Dict[int, str]]:
    """Attachment table for one shard.

    Returns ``(attachments, outboxes, inbound_side)`` where
    ``attachments`` maps ``(id(model), port)`` to an attachment object,
    ``outboxes`` maps peer worker -> outgoing wire-entry holder, and
    ``inbound_side`` maps boundary link index -> the side ("a"/"b")
    whose consuming queue lives in this worker.
    """
    attachments: Dict[Tuple[int, str], Any] = {}
    outboxes: Dict[int, Outbox] = {}
    inbound_side: Dict[int, str] = {}
    for index, (link, (model_a, port_a), (model_b, port_b)) in enumerate(
        simulation.link_attachments()
    ):
        worker_of_a = plan.partition_of(simulation.partition_key(model_a))
        worker_of_b = plan.partition_of(simulation.partition_key(model_b))
        if worker_of_a == worker_of_b:
            if worker_of_a == worker_id:
                attachments[(id(model_a), port_a)] = _Attachment(link, "a")
                attachments[(id(model_b), port_b)] = _Attachment(link, "b")
            continue
        if worker_of_a == worker_id:
            outbox = outboxes.get(worker_of_b)
            if outbox is None:
                outbox = outboxes[worker_of_b] = Outbox()
            attachments[(id(model_a), port_a)] = RemoteAttachment(
                link, "a", index, outbox
            )
            inbound_side[index] = "a"
        elif worker_of_b == worker_id:
            outbox = outboxes.get(worker_of_a)
            if outbox is None:
                outbox = outboxes[worker_of_a] = Outbox()
            attachments[(id(model_b), port_b)] = RemoteAttachment(
                link, "b", index, outbox
            )
            inbound_side[index] = "b"
    return attachments, outboxes, inbound_side


def _consumer_endpoints(
    simulation: Simulation, inbound_side: Dict[int, str]
) -> Dict[int, Any]:
    """Boundary link index -> the local consuming endpoint.

    Precomputed once so the round loop delivers received windows with a
    dict lookup instead of re-deriving link and side every time (the
    loop-free twin of :func:`~repro.dist.remote_link.deliver`).
    """
    links = simulation.links
    return {
        index: links[index].to_a if side == "a" else links[index].to_b
        for index, side in inbound_side.items()
    }


def _deliver_entries(
    entries: List[WireEntry], endpoints: Dict[int, Any]
) -> None:
    """Push one peer message's windows into the local consuming queues."""
    for link_index, batch in entries:
        endpoint = endpoints[link_index]
        if type(batch) is LostWindow:
            endpoint.mark_gap(batch.start_cycle, batch.end_cycle)
        else:
            endpoint.push(batch)


def _drain_exchange(
    recv_list: List[Any],
    exchange_tag: int,
    endpoints: Dict[int, Any],
    recorder: Optional[PhaseRecorder],
) -> None:
    """Collect one message per peer for ``exchange_tag``, lazily.

    First a non-blocking sweep takes every message that already
    arrived (delivery order between peers is irrelevant — each link's
    windows ride one channel), then the stragglers are awaited with
    the blocking path's starvation deadline.  Blocking first on an
    arbitrary peer would charge one peer's skew to every channel;
    this way ``recv_wait`` is the *max* peer skew, not the sum.
    """
    waiting = None
    for channel in recv_list:
        entries = channel.recv(exchange_tag, False)
        if entries is None:
            if waiting is None:
                waiting = [channel]
            else:
                waiting.append(channel)
            continue
        if recorder is not None:
            recorder.mark(P_RECV_WAIT)
        _deliver_entries(entries, endpoints)
        if recorder is not None:
            recorder.mark(P_GAP)
    if waiting is not None:
        for channel in waiting:
            entries = channel.recv(exchange_tag)
            if recorder is not None:
                recorder.mark(P_RECV_WAIT)
            _deliver_entries(entries, endpoints)
            if recorder is not None:
                recorder.mark(P_GAP)


def _flush_plan(
    shard: List[Any],
    attachments: Dict[Tuple[int, str], Any],
    outboxes: Dict[int, Outbox],
    send_channels: Dict[int, Any],
) -> Dict[int, List[Tuple[Any, Outbox]]]:
    """Eager-send schedule: ``id(model)`` -> the peers it completes.

    For each peer, find the *last* model in shard (tick) order with a
    boundary port producing toward that peer.  Once that model has
    ticked on an exchange's final round, the peer's outbox holds the
    full exchange payload, so the coalesced send can be posted while
    the remaining shard models are still computing — the paper's
    compute/transport overlap without threads.  Every peer has such a
    model by construction (its outbox exists because some local
    model's :class:`RemoteAttachment` feeds it), so the round loops
    need no fallback flush.
    """
    peer_of_outbox = {id(outbox): peer for peer, outbox in outboxes.items()}
    last_producer: Dict[int, int] = {}
    for model in shard:
        for port in model.ports:
            attachment = attachments[(id(model), port)]
            if isinstance(attachment, RemoteAttachment):
                peer = peer_of_outbox[id(attachment._outbox)]
                last_producer[peer] = id(model)
    plan: Dict[int, List[Tuple[Any, Outbox]]] = {}
    for peer, model_id in last_producer.items():
        plan.setdefault(model_id, []).append(
            (send_channels[peer], outboxes[peer])
        )
    return plan


def _starvation_diagnostic(
    model: Any,
    attachments: Dict[Tuple[int, str], Any],
    quantum: int,
    cycle: int,
    worker_id: int,
) -> TokenStarvationError:
    """Name the stalled boundary endpoint, like the serial orchestrator."""
    for port in model.ports:
        attachment = attachments[(id(model), port)]
        endpoint = (
            attachment.link.to_a
            if attachment.side == "a"
            else attachment.link.to_b
        )
        if endpoint.available_tokens < quantum:
            return TokenStarvationError(
                f"worker {worker_id}: channel stalled: {model.name}.{port} "
                f"on link {attachment.link.name!r} holds "
                f"{endpoint.available_tokens} of {quantum} tokens at cycle "
                f"{cycle} — a transport hop lost a batch or the peer "
                "worker stopped advancing",
                model_name=model.name,
                port=port,
                link_name=attachment.link.name,
                cycle=cycle,
            )
    return TokenStarvationError(
        f"worker {worker_id}: channel stalled feeding {model.name} at "
        f"cycle {cycle}",
        model_name=model.name,
        cycle=cycle,
    )


def _collect_result(
    context: ShardContext,
    worker_id: int,
    shard: List[Any],
    inbound_side: Dict[int, str],
    peer_count: int,
    boundary_valid_tokens: int,
    start_cycle: int,
    end_cycle: int,
    rounds: int,
    tokens_moved: int,
    valid_tokens_moved: int,
    wall_seconds: float,
    model_host_seconds: Dict[str, float],
    transport_send_seconds: float = 0.0,
    transport_recv_seconds: float = 0.0,
) -> WorkerResult:
    simulation = context.simulation
    plan = context.plan
    result = WorkerResult(
        worker_id=worker_id,
        start_cycle=start_cycle,
        end_cycle=end_cycle,
        rounds=rounds,
        tokens_moved=tokens_moved,
        valid_tokens_moved=valid_tokens_moved,
        wall_seconds=wall_seconds,
        peer_count=peer_count,
        boundary_link_count=len(inbound_side),
        boundary_valid_tokens=boundary_valid_tokens,
        model_names=[model.name for model in shard],
        model_host_seconds=model_host_seconds,
        transport_send_seconds=transport_send_seconds,
        transport_recv_seconds=transport_recv_seconds,
    )
    for model in shard:
        if isinstance(model, SwitchModel):
            result.switch_stats[model.name] = model.stats
            result.switch_queued[model.name] = (
                model.queued_packets(),
                model.queued_bytes(),
            )
        elif isinstance(model, LinkTracer):
            result.tracer_records[model.name] = list(model.records)
        elif isinstance(model, ServerBlade):
            result.blade_results[model.name] = {
                key: list(values) for key, values in model.results.items()
            }
    # Flit counters: a worker is authoritative for the directions it
    # produced.  Interior links: both directions.  Boundary links: only
    # the direction leaving the locally owned side.
    for index, (link, (model_a, _), (model_b, _)) in enumerate(
        simulation.link_attachments()
    ):
        worker_of_a = plan.partition_of(simulation.partition_key(model_a))
        worker_of_b = plan.partition_of(simulation.partition_key(model_b))
        if worker_of_a == worker_of_b == worker_id:
            result.link_flits[index] = (link.flits_a_to_b, link.flits_b_to_a)
        elif worker_of_a == worker_id and worker_of_b != worker_id:
            result.link_flits[index] = (link.flits_a_to_b, None)
        elif worker_of_b == worker_id and worker_of_a != worker_id:
            result.link_flits[index] = (None, link.flits_b_to_a)
    return result


def _setup_profile(
    context: ShardContext,
    entry_s: float,
    send_channels: Dict[int, Any],
) -> Tuple[Optional[PhaseRecorder], Optional[ClockSync]]:
    """Build the phase recorder + clock sync for a profiled run.

    Returns ``(None, None)`` on unprofiled runs so every instrumentation
    site below stays behind one ``is not None`` check.  Outgoing shm
    rings get the recorder as their ``phase_sink`` so their staging loop
    shows up as ``serialize`` instead of vanishing into ``send``.
    """
    config = context.profile
    if config is None:
        return None, None
    clock = ClockSync(epoch_s=context.epoch_s, entry_s=entry_s)
    if config.overhead_probe:
        # Alternate in blocks of one exchange period so the periodic
        # drain/flush rounds land equally in both probe populations.
        recorder: PhaseRecorder = ProbeRecorder(
            config.ring_capacity,
            sleep_s=config.probe_sleep_s,
            period=max(
                1, (context.round_quantum or context.quantum)
                // context.quantum,
            ),
        )
    else:
        recorder = PhaseRecorder(config.ring_capacity)
    for channel in send_channels.values():
        if hasattr(channel, "phase_sink"):
            channel.phase_sink = recorder
    return recorder, clock


def _collect_profile(
    recorder: PhaseRecorder,
    clock: ClockSync,
    worker_id: int,
    peers: List[int],
    send_channels: Dict[int, Any],
    recv_channels: Dict[int, Any],
    outboxes: Dict[int, Outbox],
) -> WorkerProfile:
    """Package this worker's recorder + transport counters for shipping.

    A worker is authoritative for the directions it drove: the send
    side of its outgoing channels and the receive side of its incoming
    ones (channel counters are per-process ints, so each fork's copy
    holds exactly that half).
    """
    channel_counters: Dict[str, Dict[str, Any]] = {}
    for peer in peers:
        counters = getattr(send_channels[peer], "counters", None)
        if counters is not None:
            entry = dict(counters())
            entry["role"] = "send"
            channel_counters[f"{worker_id}->{peer}"] = entry
        counters = getattr(recv_channels[peer], "counters", None)
        if counters is not None:
            entry = dict(counters())
            entry["role"] = "recv"
            channel_counters[f"{peer}->{worker_id}"] = entry
    outbox_stats = {
        peer: {
            "total_entries": outbox.total_entries,
            "peak_entries": outbox.peak_entries,
        }
        for peer, outbox in outboxes.items()
    }
    return WorkerProfile.from_recorder(
        worker_id, recorder, clock, channel_counters, outbox_stats
    )


def run_shard(context: ShardContext, worker_id: int) -> WorkerResult:
    """Execute one worker's shard to the target cycle; returns its result."""
    global _SEND_CHANNELS
    entry_s = perf_counter()  # clock-sync stamp: first post-fork reading
    simulation = context.simulation
    plan = context.plan
    quantum = context.quantum
    measure = context.measure
    shard = plan.models_for(simulation, worker_id)
    attachments, outboxes, inbound_side = _build_attachments(
        simulation, plan, worker_id
    )
    peers = sorted(outboxes)
    recv_channels = {
        peer: context.channels[(peer, worker_id)] for peer in peers
    }
    send_channels = {
        peer: context.channels[(worker_id, peer)] for peer in peers
    }
    _SEND_CHANNELS = send_channels
    heartbeats = context.heartbeats
    beat = (
        heartbeats.writer(worker_id).beat if heartbeats is not None else None
    )
    if beat is not None:
        beat(0, HB_STARTUP)
    recorder, clock = _setup_profile(context, entry_s, send_channels)
    if simulation.engine == "batched":
        return _run_shard_batched(
            context, worker_id, shard, attachments, outboxes,
            inbound_side, peers, recv_channels, send_channels,
            recorder, clock, beat,
        )
    hook = simulation.fault_hook
    round_quantum = context.round_quantum or quantum
    rounds_per_exchange = max(1, round_quantum // quantum)

    # Hoist every per-round dict lookup the loop would otherwise repeat:
    # each model's (port, attachment) pairs, each boundary link's local
    # consuming endpoint, and the eager-flush schedule (the per-peer
    # channel/outbox pairs, attached to the last model feeding them).
    flush_plan = _flush_plan(shard, attachments, outboxes, send_channels)
    rows = []
    for model in shard:
        ports = [
            (port, attachments[(id(model), port)]) for port in model.ports
        ]
        rows.append((model, ports, dict(ports), flush_plan.get(id(model))))
    endpoints = _consumer_endpoints(simulation, inbound_side)
    recv_list = [recv_channels[peer] for peer in peers]

    start_cycle = simulation.current_cycle
    cycle = start_cycle
    rounds = 0
    tokens_moved = 0
    valid_tokens_moved = 0
    model_host_seconds: Dict[str, float] = {}
    transport_send_s = 0.0
    transport_recv_s = 0.0
    wall_start = perf_counter()
    cpu_start = process_time()
    while cycle < context.target_cycle:
        if recorder is not None:
            recorder.round_begin()
        if beat is not None:
            beat(rounds, HB_RECV)
        exchange, phase = divmod(rounds, rounds_per_exchange)
        if phase == 0 and rounds > 0:
            recv_start = perf_counter() if measure else 0.0
            _drain_exchange(recv_list, exchange - 1, endpoints, recorder)
            if measure:
                transport_recv_s += perf_counter() - recv_start
        if beat is not None:
            beat(rounds, HB_COMPUTE)
        if hook is not None:
            hook(cycle, None)
        flushing = phase == rounds_per_exchange - 1
        window = TokenWindow(cycle, cycle + quantum)
        for model, ports, attachment_of, flushes in rows:
            try:
                inputs = {
                    port: attachment.receive(quantum)
                    for port, attachment in ports
                }
            except LookupError as exc:
                raise _starvation_diagnostic(
                    model, attachments, quantum, cycle, worker_id
                ) from exc
            if measure:
                tick_start = perf_counter()
                outputs = model.tick(window, inputs)
                model_host_seconds[model.name] = (
                    model_host_seconds.get(model.name, 0.0)
                    + perf_counter()
                    - tick_start
                )
            else:
                outputs = model.tick(window, inputs)
            for port, batch in outputs.items():
                attachment_of[port].transmit(batch)
                tokens_moved += batch.length
                valid_tokens_moved += batch.valid_count
            if hook is not None:
                hook(cycle, model)
            if flushing and flushes is not None:
                # Eager flush: this model was the last producer toward
                # these peers, so their exchange payload is complete —
                # post it while the rest of the shard computes.
                if recorder is not None:
                    recorder.mark(P_COMPUTE)
                send_start = perf_counter() if measure else 0.0
                for channel, outbox in flushes:
                    channel.send(exchange, outbox.drain())
                if measure:
                    transport_send_s += perf_counter() - send_start
                if recorder is not None:
                    recorder.mark(P_SEND)
        if recorder is not None:
            recorder.mark(P_COMPUTE)
        if beat is not None:
            beat(rounds, HB_SEND)
        if recorder is not None:
            recorder.round_end()
        cycle += quantum
        rounds += 1
    if beat is not None:
        beat(rounds, HB_DONE)
    cpu_seconds = process_time() - cpu_start
    wall_seconds = perf_counter() - wall_start
    boundary_valid_tokens = sum(
        attachment.sent_valid
        for attachment in attachments.values()
        if isinstance(attachment, RemoteAttachment)
    )
    result = _collect_result(
        context,
        worker_id,
        shard,
        inbound_side,
        len(peers),
        boundary_valid_tokens,
        start_cycle,
        cycle,
        rounds,
        tokens_moved,
        valid_tokens_moved,
        wall_seconds,
        model_host_seconds,
        transport_send_s,
        transport_recv_s,
    )
    result.cpu_seconds = cpu_seconds
    if recorder is not None and clock is not None:
        result.profile = _collect_profile(
            recorder, clock, worker_id, peers,
            send_channels, recv_channels, outboxes,
        )
    return result


def _run_shard_batched(
    context: ShardContext,
    worker_id: int,
    shard: List[Any],
    attachments: Dict[Tuple[int, str], Any],
    outboxes: Dict[int, Outbox],
    inbound_side: Dict[int, str],
    peers: List[int],
    recv_channels: Dict[int, Any],
    send_channels: Dict[int, Any],
    recorder: Optional[PhaseRecorder] = None,
    clock: Optional[ClockSync] = None,
    beat: Optional[Any] = None,
) -> WorkerResult:
    """The batched-engine twin of the scalar loop in :func:`run_shard`.

    Same lockstep structure, expressed as the engine's round hooks:
    ``pre_round`` drains one peer message per peer on each exchange
    boundary (lazily — already-arrived messages first), and the eager
    flush rides the engine's per-model fault-hook seam: the wrapped
    ``hook`` posts a peer's coalesced send the moment its last
    producing model has ticked on the exchange's final round, while
    the engine is still ticking the rest of the shard.  Boundary
    windows are shipped in the producer's representation (streams for
    busy windows, in-place-shifted empty batches for idle ones) via
    :meth:`~repro.dist.remote_link.RemoteAttachment.ship` — the peer's
    delivery pushes them unchanged.

    Phase recording rides the same hooks: ``pre_round`` opens the row
    and marks the recv/gap segments, the wrapped hook brackets each
    eager flush as compute-then-send, and ``post_round`` marks the
    engine's remaining tick loop as compute and closes the row.
    """
    from repro.perf.engine import RoundProgress, compile_slots, run_rounds

    simulation = context.simulation
    quantum = context.quantum
    measure = context.measure
    round_quantum = context.round_quantum or quantum
    rounds_per_exchange = max(1, round_quantum // quantum)
    endpoints = _consumer_endpoints(simulation, inbound_side)
    recv_list = [recv_channels[peer] for peer in peers]
    flush_plan = _flush_plan(shard, attachments, outboxes, send_channels)
    # [send_seconds, recv_seconds], mutated by the round hooks.
    transport_seconds = [0.0, 0.0]
    # [exchange_tag, flushing], set by pre_round for the wrapped hook.
    exchange_state = [0, False]

    def pre_round(cycle: int, rounds: int) -> None:
        if recorder is not None:
            recorder.round_begin()
        if beat is not None:
            beat(rounds, HB_RECV)
        exchange, round_phase = divmod(rounds, rounds_per_exchange)
        exchange_state[0] = exchange
        exchange_state[1] = round_phase == rounds_per_exchange - 1
        if round_phase == 0 and rounds > 0:
            recv_start = perf_counter() if measure else 0.0
            _drain_exchange(recv_list, exchange - 1, endpoints, recorder)
            if measure:
                transport_seconds[1] += perf_counter() - recv_start
        if beat is not None:
            beat(rounds, HB_COMPUTE)

    base_hook = simulation.fault_hook

    def hook(cycle: int, model: Optional[Any]) -> None:
        if base_hook is not None:
            base_hook(cycle, model)
        if model is None or not exchange_state[1]:
            return
        flushes = flush_plan.get(id(model))
        if flushes is None:
            return
        if recorder is not None:
            recorder.mark(P_COMPUTE)
        send_start = perf_counter() if measure else 0.0
        for channel, outbox in flushes:
            channel.send(exchange_state[0], outbox.drain())
        if measure:
            transport_seconds[0] += perf_counter() - send_start
        if recorder is not None:
            recorder.mark(P_SEND)

    def post_round(cycle: int, rounds: int) -> None:
        if recorder is not None:
            # Everything since the last mark is the engine's tick loop.
            recorder.mark(P_COMPUTE)
            recorder.round_end()
        if beat is not None:
            beat(rounds - 1, HB_SEND)

    def diagnose(model: Any, cycle: int) -> TokenStarvationError:
        return _starvation_diagnostic(
            model, attachments, quantum, cycle, worker_id
        )

    slots = compile_slots(
        shard, lambda model, port: attachments[(id(model), port)]
    )
    start_cycle = simulation.current_cycle
    progress = RoundProgress(start_cycle)
    wall_start = perf_counter()
    cpu_start = process_time()
    run_rounds(
        slots,
        quantum,
        start_cycle,
        context.target_cycle,
        progress,
        hook=hook if (peers or base_hook is not None) else None,
        measure=context.measure,
        pre_round=pre_round,
        post_round=post_round,
        diagnose=diagnose,
    )
    if beat is not None:
        beat(progress.rounds, HB_DONE)
    cpu_seconds = process_time() - cpu_start
    wall_seconds = perf_counter() - wall_start
    boundary_valid_tokens = sum(
        attachment.sent_valid
        for attachment in attachments.values()
        if isinstance(attachment, RemoteAttachment)
    )
    result = _collect_result(
        context,
        worker_id,
        shard,
        inbound_side,
        len(peers),
        boundary_valid_tokens,
        start_cycle,
        progress.cycle,
        progress.rounds,
        progress.tokens_moved,
        progress.valid_tokens_moved,
        wall_seconds,
        progress.model_host_seconds,
        transport_seconds[0],
        transport_seconds[1],
    )
    result.cpu_seconds = cpu_seconds
    if recorder is not None and clock is not None:
        result.profile = _collect_profile(
            recorder, clock, worker_id, peers,
            send_channels, recv_channels, outboxes,
        )
    return result


def _release_channels(context: ShardContext) -> None:
    """Drop this process's transport mappings on the way out.

    Shared-memory rings hold numpy views over the mapped segment;
    releasing them *before* interpreter shutdown keeps the mmap close
    orderly (a view outliving the segment raises ``BufferError`` noise
    at exit).  Pipe channels have no mapping and are left alone.  Only
    the parent unlinks segments.
    """
    for channel in context.channels.values():
        close = getattr(channel, "close", None)
        if close is not None:
            close()
    if context.heartbeats is not None:
        context.heartbeats.close()


def shard_entry(context: ShardContext, worker_id: int) -> None:
    """Process entry point: run the shard, ship the result, exit.

    Any failure — an injected :class:`~repro.faults.plan.ControllerCrash`,
    token starvation after transport loss, or a genuine bug — is reported
    on the result queue and turned into a nonzero exit code, which the
    engine surfaces as a :class:`~repro.faults.plan.WorkerCrash` host
    fault.
    """
    # Worker-local trace events cannot be aggregated into the parent's
    # session; silence the inherited sink rather than buffer them.
    set_trace_sink(None)
    global _WORKER_ID
    _WORKER_ID = worker_id
    try:
        result = run_shard(context, worker_id)
    except BaseException as exc:  # noqa: BLE001 - report, then die loudly
        # Ship the exception's type and fault target alongside the
        # message so the parent can re-raise *typed* faults (a
        # RingCorruption must reach the manager's circuit breaker as
        # itself, not flattened into a generic crash).
        context.result_queue.put(
            (
                "error",
                worker_id,
                context.simulation.current_cycle,
                f"{type(exc).__name__}: {exc}",
                type(exc).__name__,
                getattr(exc, "target", None),
            )
        )
        _release_channels(context)
        sys.exit(1)
    context.result_queue.put(("ok", worker_id, result))
    _release_channels(context)
