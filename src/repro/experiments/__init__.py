"""Evaluation reproduction: one module per table/figure.

* :mod:`repro.experiments.fig5_ping` — ping RTT vs link latency (§IV-A)
* :mod:`repro.experiments.sec4b_iperf` — TCP goodput ceiling (§IV-B)
* :mod:`repro.experiments.sec4c_baremetal` — bare-metal NIC rate (§IV-C)
* :mod:`repro.experiments.fig6_saturation` — bandwidth saturation (§IV-D)
* :mod:`repro.experiments.fig7_memcached` — thread-imbalance tails (§IV-E)
* :mod:`repro.experiments.fig8_simrate` — rate vs cluster size (§V-A)
* :mod:`repro.experiments.fig9_latency_sweep` — rate vs batch size (§V-B)
* :mod:`repro.experiments.table3_datacenter` — 1024-node memcached (§V-C)
* :mod:`repro.experiments.sec5c_scale` — platform/cost headline math (§V-C)
* :mod:`repro.experiments.fig11_pfa` — PFA vs software paging (§VI)
* :mod:`repro.experiments.sec7_comparison` — simulator comparison (§VII)
* :mod:`repro.experiments.sec8_singlenode` — SPECint single-node farm (§VIII)

Each module's ``run(quick=...)`` returns a result object with a
``table()`` that prints the same rows/series the paper reports; the
benchmarks under ``benchmarks/`` drive them and assert the paper's
qualitative findings.
"""
