"""Shared helpers for the evaluation-reproduction experiments.

Each ``repro.experiments.*`` module reproduces one table or figure from
the paper's evaluation and returns a structured result that can print
the same rows/series the paper reports.  Experiments accept a ``quick``
flag: the default parameters match the paper's setup shape; ``quick``
shrinks measurement windows for CI-speed runs without changing the
structure (documented per experiment in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.core.clock import DEFAULT_CLOCK

CLOCK = DEFAULT_CLOCK


def cycles_to_us(cycles: float) -> float:
    """Target cycles to microseconds at the evaluation's 3.2 GHz clock."""
    return cycles / CLOCK.freq_hz * 1e6


def us_to_cycles(us: float) -> int:
    """Microseconds to target cycles at 3.2 GHz."""
    return CLOCK.cycles(us * 1e-6)


def percentile(samples: Sequence[float], p: float) -> float:
    """Nearest-rank percentile (what mutilate reports)."""
    if not samples:
        raise ValueError("no samples")
    if not 0 < p <= 100:
        raise ValueError(f"percentile {p} out of (0, 100]")
    ordered = sorted(samples)
    rank = max(1, round(p / 100 * len(ordered)))
    return float(ordered[rank - 1])


@dataclass
class Table:
    """A printable result table (the bench harness prints these)."""

    title: str
    columns: List[str]
    rows: List[Tuple] = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def __str__(self) -> str:
        widths = [len(c) for c in self.columns]
        rendered_rows = []
        for row in self.rows:
            rendered = [
                f"{v:.2f}" if isinstance(v, float) else str(v) for v in row
            ]
            widths = [max(w, len(r)) for w, r in zip(widths, rendered)]
            rendered_rows.append(rendered)
        lines = [self.title]
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for rendered in rendered_rows:
            lines.append(
                " | ".join(r.ljust(w) for r, w in zip(rendered, widths))
            )
        return "\n".join(lines)
