"""Figure 11: hardware-accelerated vs. software paging (Section VI).

The Page-Fault Accelerator case study runs two benchmarks tuned to a
64 MiB peak footprint — Genome (random hash-table accesses; thrashes)
and Qsort (good locality; pages gracefully) — against remote memory
served by a memory-blade, sweeping the local memory size.

Expected results:

* the PFA significantly reduces paging overhead, by up to ~1.4x;
* the number of evicted pages is identical under both backends (same
  replacement policy — the PFA only moves the fault path to hardware);
* metadata-management time per page is ~2.5x lower with the PFA
  (batched newQ draining has better cache locality).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.common import Table
from repro.pfa.pfa import PageFaultAccelerator, SoftwarePaging
from repro.pfa.remote import AnalyticRemoteMemory, RemoteMemoryParams
from repro.pfa.runtime import PagedExecutor, RunResult, run_trace_all_local
from repro.pfa.workloads import (
    WorkloadConfig,
    genome_trace,
    local_memory_sweep,
    qsort_trace,
)

DEFAULT_FRACTIONS = (0.125, 0.25, 0.5, 0.75)


@dataclass
class PfaPoint:
    workload: str
    local_fraction: float
    sw_slowdown: float
    pfa_slowdown: float
    runtime_ratio: float  # sw runtime / pfa runtime
    metadata_ratio: float  # per-page metadata time, sw / pfa
    evictions_equal: bool
    faults: int


@dataclass
class Fig11Result:
    points: List[PfaPoint]

    def best_improvement(self, workload: str) -> float:
        return max(
            p.runtime_ratio for p in self.points if p.workload == workload
        )

    def table(self) -> Table:
        table = Table(
            "Figure 11: PFA vs software paging "
            "(paper: PFA reduces overhead by up to 1.4x; metadata time "
            "2.5x lower; evicted pages identical)",
            [
                "workload",
                "local mem",
                "sw slowdown",
                "PFA slowdown",
                "sw/PFA runtime",
                "metadata ratio",
                "evictions equal",
            ],
        )
        for p in self.points:
            table.add_row(
                p.workload,
                f"{p.local_fraction:.1%}",
                round(p.sw_slowdown, 2),
                round(p.pfa_slowdown, 2),
                round(p.runtime_ratio, 2),
                round(p.metadata_ratio, 2),
                p.evictions_equal,
            )
        return table


#: Per-workload trace configurations (see repro.pfa.workloads).
WORKLOADS: dict[str, Tuple[Callable[..., Iterable], WorkloadConfig]] = {
    "genome": (genome_trace, WorkloadConfig(steps=60_000)),
    "qsort": (
        qsort_trace,
        WorkloadConfig(
            footprint_bytes=16 * 1024 * 1024, compute_per_step_cycles=16_000
        ),
    ),
}


def run(
    fractions: Sequence[float] = DEFAULT_FRACTIONS, quick: bool = False
) -> Fig11Result:
    """The full Figure 11 sweep: both workloads x local-memory sizes."""
    points = []
    for workload, (trace_fn, config) in WORKLOADS.items():
        if quick:
            config = WorkloadConfig(
                footprint_bytes=config.footprint_bytes // 4,
                steps=config.steps // 4,
                compute_per_step_cycles=config.compute_per_step_cycles,
            )
        for fraction, pages in local_memory_sweep(
            tuple(fractions), config.footprint_bytes
        ):
            points.append(
                _run_with(workload, trace_fn, config, fraction, pages)
            )
    return Fig11Result(points)


def _run_with(
    workload: str,
    trace_fn: Callable[..., Iterable],
    config: WorkloadConfig,
    fraction: float,
    pages: int,
) -> PfaPoint:
    baseline = run_trace_all_local(trace_fn(config))
    sw = PagedExecutor(SoftwarePaging(AnalyticRemoteMemory()), pages).run(
        trace_fn(config)
    )
    pfa = PagedExecutor(
        PageFaultAccelerator(AnalyticRemoteMemory()), pages
    ).run(trace_fn(config))
    sw_md = sw.metadata_cycles / max(sw.faults, 1)
    pfa_md = pfa.metadata_cycles / max(pfa.faults, 1)
    return PfaPoint(
        workload=workload,
        local_fraction=fraction,
        sw_slowdown=sw.slowdown_vs(baseline),
        pfa_slowdown=pfa.slowdown_vs(baseline),
        runtime_ratio=sw.total_cycles / pfa.total_cycles,
        metadata_ratio=sw_md / max(pfa_md, 1e-9),
        evictions_equal=sw.evictions == pfa.evictions,
        faults=sw.faults,
    )


if __name__ == "__main__":  # pragma: no cover - manual run
    print(run(quick=True).table())
