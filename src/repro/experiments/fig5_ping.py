"""Figure 5: ping latency vs. configured link latency (Section IV-A).

Methodology (as in the paper): boot an 8-node cluster behind one ToR
switch, collect pings between two nodes (the first ping of each boot is
ignored — ARP), sweep the configured target link latency, and compare
the measured RTT against the ideal

    RTT_ideal = 4 x link latency + 2 x (10-cycle switching latency).

The expected result: measured parallels ideal with a fixed ~34 us offset
from the Linux networking stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import List, Sequence, Tuple

from repro.experiments.common import Table, cycles_to_us, us_to_cycles
from repro.manager.runfarm import RunFarmConfig, elaborate
from repro.manager.topology import single_rack
from repro.swmodel.apps.ping import RESULT_KEY, make_ping_client

#: Link latencies swept (microseconds); the paper's evaluation centres
#: on 2 us and sweeps outward.
DEFAULT_LATENCIES_US = (0.5, 1.0, 2.0, 4.0, 8.0)


@dataclass
class PingPoint:
    link_latency_us: float
    ideal_rtt_us: float
    measured_rtt_us: float

    @property
    def overhead_us(self) -> float:
        return self.measured_rtt_us - self.ideal_rtt_us


@dataclass
class Fig5Result:
    points: List[PingPoint]

    def table(self) -> Table:
        table = Table(
            "Figure 5: ping RTT vs configured link latency",
            ["link latency (us)", "ideal RTT (us)", "measured RTT (us)", "overhead (us)"],
        )
        for p in self.points:
            table.add_row(
                p.link_latency_us,
                round(p.ideal_rtt_us, 2),
                round(p.measured_rtt_us, 2),
                round(p.overhead_us, 2),
            )
        return table


def run_point(
    link_latency_us: float,
    num_pings: int = 100,
    num_nodes: int = 8,
    switching_cycles: int = 10,
) -> PingPoint:
    """One sweep point: an 8-node cluster at one link latency."""
    latency_cycles = us_to_cycles(link_latency_us)
    sim = elaborate(
        single_rack(num_nodes),
        RunFarmConfig(
            link_latency_cycles=latency_cycles,
            switch_latency_cycles=switching_cycles,
        ),
    )
    target = sim.blade(1)
    interval = max(latency_cycles * 8, 200_000)
    sim.blade(0).spawn(
        "ping",
        make_ping_client(target.mac, count=num_pings + 1, interval_cycles=interval),
    )
    # Run long enough for every ping: RTT + interval per iteration.
    per_ping = 4 * latency_cycles + 2 * switching_cycles + 200_000 + interval
    sim.run_cycles((num_pings + 2) * per_ping)
    rtts = sim.blade(0).results[RESULT_KEY]
    if len(rtts) < num_pings:
        raise RuntimeError(
            f"collected {len(rtts)}/{num_pings} pings at {link_latency_us} us"
        )
    ideal = cycles_to_us(4 * latency_cycles + 2 * switching_cycles)
    return PingPoint(
        link_latency_us=link_latency_us,
        ideal_rtt_us=ideal,
        measured_rtt_us=cycles_to_us(mean(rtts)),
    )


def run(
    latencies_us: Sequence[float] = DEFAULT_LATENCIES_US,
    quick: bool = False,
) -> Fig5Result:
    """Sweep the configured link latency (Figure 5)."""
    num_pings = 20 if quick else 100
    points = [run_point(lat, num_pings=num_pings) for lat in latencies_us]
    return Fig5Result(points)


if __name__ == "__main__":  # pragma: no cover - manual run
    print(run(quick=True).table())
