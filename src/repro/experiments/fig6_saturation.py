"""Figure 6: saturating network bandwidth (Section IV-D).

A 16-node cluster — two ToR switches under one root switch — where each
server on the first ToR streams bare-metal traffic to the corresponding
server on the second ToR, so every flow crosses the root.  Senders enter
staggered in time, and each run sets the NIC token-bucket rate limiter
to a standard Ethernet bandwidth (1, 10, 40, 100 Gbit/s).

Expected series (paper): aggregate root-switch bandwidth ramps by one
sender's rate per entry; the 1 and 10 Gbit/s runs max out at 8 and 80
Gbit/s (never saturating the 200 Gbit/s ToR uplink), the 40 Gbit/s run
saturates at 200 Gbit/s after five senders, and the 100 Gbit/s run after
two.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.experiments.common import Table, us_to_cycles
from repro.manager.runfarm import RunFarmConfig, elaborate
from repro.manager.topology import two_tier
from repro.nic.ratelimit import rate_settings_for_bandwidth
from repro.swmodel.apps.streamer import (
    STREAM_FRAME_BYTES,
    attach_baremetal_receiver,
    make_baremetal_sender,
)

#: The standard Ethernet bandwidths the paper sweeps.
DEFAULT_RATES_GBPS = (1.0, 10.0, 40.0, 100.0)

#: Nominal link rate: one 64-bit flit per 3.2 GHz cycle.
LINK_GBPS = 204.8


@dataclass
class SaturationSeries:
    """One rate-limit setting's bandwidth-over-time series."""

    rate_gbps: float
    bucket_us: float
    #: Aggregate Gbit/s at the root switch per time bucket.
    series_gbps: List[float]
    sender_entry_us: List[float]

    @property
    def peak_gbps(self) -> float:
        return max(self.series_gbps) if self.series_gbps else 0.0

    @property
    def steady_gbps(self) -> float:
        """Mean of the last quarter of the series (all senders active)."""
        if not self.series_gbps:
            return 0.0
        tail = self.series_gbps[-max(1, len(self.series_gbps) // 4):]
        return sum(tail) / len(tail)


@dataclass
class Fig6Result:
    series: List[SaturationSeries]

    def table(self) -> Table:
        table = Table(
            "Figure 6: aggregate bandwidth at the root switch "
            "(paper: maxes at 8 / 80 / 200 / 200 Gbit/s)",
            ["per-sender rate (Gbit/s)", "peak (Gbit/s)", "steady (Gbit/s)"],
        )
        for s in self.series:
            table.add_row(
                s.rate_gbps, round(s.peak_gbps, 1), round(s.steady_gbps, 1)
            )
        return table


def run_rate(
    rate_gbps: float,
    num_senders: int = 8,
    stagger_us: float = 50.0,
    tail_us: float = 150.0,
    bucket_us: float = 25.0,
) -> SaturationSeries:
    """One Figure 6 run at one rate-limit setting."""
    sim = elaborate(two_tier(num_racks=2, servers_per_rack=8), RunFarmConfig())
    root_switch = sim.switches[sim.root.switch_id]
    root_switch.enable_bandwidth_probe()

    duration_us = stagger_us * num_senders + tail_us
    duration_cycles = us_to_cycles(duration_us)
    frame_bits = STREAM_FRAME_BYTES * 8
    entries = []
    for index in range(num_senders):
        sender = sim.blade(index)
        receiver = sim.blade(8 + index)
        attach_baremetal_receiver(receiver)
        k, p = rate_settings_for_bandwidth(rate_gbps * 1e9, LINK_GBPS * 1e9)
        sender.nic.set_bandwidth(k, p)
        start_cycle = us_to_cycles(stagger_us * index)
        active_seconds = (duration_us - stagger_us * index) * 1e-6
        frames = int(rate_gbps * 1e9 * active_seconds / frame_bits) + 64
        sender.spawn(
            f"stream{index}",
            make_baremetal_sender(
                receiver.mac, num_frames=frames, start_delay_cycles=start_cycle
            ),
        )
        entries.append(stagger_us * index)

    sim.run_cycles(duration_cycles)

    bucket_cycles = us_to_cycles(bucket_us)
    num_buckets = duration_cycles // bucket_cycles
    bytes_per_bucket = [0] * num_buckets
    for cycle, size in root_switch.egress_log or []:
        bucket = min(cycle // bucket_cycles, num_buckets - 1)
        bytes_per_bucket[bucket] += size
    bucket_seconds = bucket_cycles / 3.2e9
    series = [b * 8 / bucket_seconds / 1e9 for b in bytes_per_bucket]
    return SaturationSeries(
        rate_gbps=rate_gbps,
        bucket_us=bucket_us,
        series_gbps=series,
        sender_entry_us=entries,
    )


def run(
    rates_gbps: Sequence[float] = DEFAULT_RATES_GBPS, quick: bool = False
) -> Fig6Result:
    """The full Figure 6 sweep."""
    if quick:
        kwargs = dict(stagger_us=30.0, tail_us=90.0, bucket_us=15.0)
    else:
        kwargs = {}
    return Fig6Result([run_rate(rate, **kwargs) for rate in rates_gbps])


if __name__ == "__main__":  # pragma: no cover - manual run
    print(run(quick=True).table())
