"""Figure 7: thread imbalance in memcached and tail latency (Section IV-E).

End-to-end validation against Leverich & Kozyrakis [32]: an 8-node
cluster (200 Gbit/s, 2 us network) with one 4-core blade running
memcached and seven blades running the mutilate load generator.  The
server runs 4 or 5 worker threads; a third configuration pins 4 threads
one-to-a-core.

Expected phenomena:

* **5 threads on 4 cores** — tail (95th percentile) latency rises
  sharply while median latency is essentially unaffected;
* **4 threads unpinned** — at low-to-medium load the tail tracks the
  5-thread curve (poor thread placement), then smooths;
* **4 threads pinned** — the smoothed tail curve, overlapping unpinned
  at high load where the scheduler places threads as if pinned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import Table, cycles_to_us, percentile
from repro.manager.runfarm import RunFarmConfig, elaborate
from repro.manager.topology import single_rack
from repro.swmodel.apps.memcached import MemcachedConfig, start_memcached
from repro.swmodel.apps.mutilate import (
    RESULT_LATENCY,
    MutilateConfig,
    start_mutilate,
)

NUM_CLIENTS = 7
SERVER_NODE = 0

#: The three Figure 7 configurations.
CONFIGS: Dict[str, MemcachedConfig] = {
    "4 threads": MemcachedConfig(num_threads=4, pin_threads=False),
    "5 threads": MemcachedConfig(num_threads=5, pin_threads=False),
    "4 threads pinned": MemcachedConfig(num_threads=4, pin_threads=True),
}

DEFAULT_QPS_SWEEP = (20_000, 40_000, 60_000, 80_000, 100_000, 120_000, 130_000)


@dataclass
class LoadPoint:
    config_name: str
    target_qps: float
    achieved_qps: float
    p50_us: float
    p95_us: float
    samples: int


@dataclass
class Fig7Result:
    points: List[LoadPoint]

    def series(self, config_name: str) -> List[LoadPoint]:
        return [p for p in self.points if p.config_name == config_name]

    def table(self) -> Table:
        table = Table(
            "Figure 7: memcached thread imbalance "
            "(p95 inflates with 5 threads on 4 cores; p50 stays flat)",
            ["config", "target QPS", "achieved QPS", "p50 (us)", "p95 (us)"],
        )
        for p in self.points:
            table.add_row(
                p.config_name,
                int(p.target_qps),
                int(p.achieved_qps),
                round(p.p50_us, 1),
                round(p.p95_us, 1),
            )
        return table


def run_point(
    config: MemcachedConfig,
    config_name: str,
    aggregate_qps: float,
    measure_seconds: float = 0.04,
    warmup_seconds: float = 0.004,
) -> LoadPoint:
    """One (configuration, offered load) measurement."""
    sim = elaborate(single_rack(8), RunFarmConfig())
    server = sim.blade(SERVER_NODE)
    start_memcached(server, config)

    duration_cycles = int((warmup_seconds + measure_seconds) * 3.2e9)
    per_client_qps = aggregate_qps / NUM_CLIENTS
    for client_index in range(NUM_CLIENTS):
        client = sim.blade(1 + client_index)
        start_mutilate(
            client,
            MutilateConfig(
                server_mac=server.mac,
                target_qps=per_client_qps,
                duration_cycles=duration_cycles,
                num_connections=16,
                server_threads=config.num_threads,
                seed=1000 + client_index,
            ),
        )

    sim.run_seconds(warmup_seconds + measure_seconds + 0.002)

    latencies: List[int] = []
    for client_index in range(NUM_CLIENTS):
        samples = sim.blade(1 + client_index).results.get(RESULT_LATENCY, [])
        latencies.extend(samples)
    # Drop the warmup fraction of samples (in arrival order per client).
    if not latencies:
        raise RuntimeError(f"no latency samples at {aggregate_qps} QPS")
    keep = latencies[int(len(latencies) * warmup_seconds / (warmup_seconds + measure_seconds)):]
    achieved = len(keep) / measure_seconds
    return LoadPoint(
        config_name=config_name,
        target_qps=aggregate_qps,
        achieved_qps=achieved,
        p50_us=cycles_to_us(percentile(keep, 50)),
        p95_us=cycles_to_us(percentile(keep, 95)),
        samples=len(keep),
    )


def run(
    qps_sweep: Sequence[float] = DEFAULT_QPS_SWEEP,
    configs: Optional[Dict[str, MemcachedConfig]] = None,
    quick: bool = False,
) -> Fig7Result:
    """The full Figure 7 sweep: three configurations x offered load."""
    configs = configs or CONFIGS
    measure = 0.015 if quick else 0.04
    if quick:
        qps_sweep = tuple(qps_sweep)[::2] or tuple(qps_sweep)
    points = []
    for name, config in configs.items():
        for qps in qps_sweep:
            points.append(
                run_point(config, name, qps, measure_seconds=measure)
            )
    return Fig7Result(points)


if __name__ == "__main__":  # pragma: no cover - manual run
    print(run(quick=True).table())
