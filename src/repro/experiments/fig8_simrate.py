"""Figure 8: simulation rate vs. number of simulated target nodes (§V-A).

The paper's benchmark boots Linux to userspace and powers down, so no
target network traffic flows — but because FireSim performs no token
compression, the host moves exactly as many tokens as a fully loaded
network would, making the measured rate workload-independent.  The
figure shows the overhead of distributing the simulation: first between
FPGAs on one instance, then between instances, for both the standard and
supernode FPGA configurations.

Per DESIGN.md, host wall-clock cannot be measured without an F1 fleet;
this experiment evaluates the calibrated host performance model
(:mod:`repro.host.perfmodel`) across the node-count sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.common import Table
from repro.host.perfmodel import HostPerfConfig, RateEstimate, SimulationRateModel

DEFAULT_NODE_COUNTS = (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
LINK_LATENCY_CYCLES = 6400  # the 2 us network used throughout the paper


@dataclass
class SimRatePoint:
    num_nodes: int
    standard_mhz: float
    supernode_mhz: float
    standard_bottleneck: str
    supernode_bottleneck: str


@dataclass
class Fig8Result:
    points: List[SimRatePoint]

    def table(self) -> Table:
        table = Table(
            "Figure 8: simulation rate vs simulated nodes "
            "(2 us / 200 Gbit/s network; paper anchor: 1024 supernode "
            "nodes at 3.42 MHz)",
            ["nodes", "standard (MHz)", "supernode (MHz)", "bottleneck (std/super)"],
        )
        for p in self.points:
            table.add_row(
                p.num_nodes,
                round(p.standard_mhz, 2),
                round(p.supernode_mhz, 2),
                f"{p.standard_bottleneck}/{p.supernode_bottleneck}",
            )
        return table


def run(
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
    link_latency_cycles: int = LINK_LATENCY_CYCLES,
    config: Optional[HostPerfConfig] = None,
    quick: bool = False,
) -> Fig8Result:
    """Evaluate the simulation-rate model across cluster sizes."""
    model = SimulationRateModel(config)
    points = []
    for num_nodes in node_counts:
        standard = model.cluster_rate(num_nodes, link_latency_cycles)
        supernode = model.cluster_rate(
            num_nodes, link_latency_cycles, supernode=True
        )
        points.append(
            SimRatePoint(
                num_nodes=num_nodes,
                standard_mhz=standard.rate_mhz,
                supernode_mhz=supernode.rate_mhz,
                standard_bottleneck=standard.bottleneck,
                supernode_bottleneck=supernode.bottleneck,
            )
        )
    return Fig8Result(points)


if __name__ == "__main__":  # pragma: no cover - manual run
    print(run().table())
