"""Figure 9: simulation rate vs. simulated network link latency (§V-B).

Moving tokens between distributed simulations is the fundamental
bottleneck; token exchange is batched up to the target link latency, so
decreasing the target latency shrinks the batch and costs simulation
performance (the benefits of request batching are lost).  The paper
focuses on 2 us links as the realistic experimental point.

As with Figure 8, host wall-clock requires the F1 fleet, so the sweep
evaluates the calibrated host performance model.  For cross-checking,
``run_functional_probe`` also measures *this reproduction's own* host
simulation rate across batch sizes, which exhibits the same shape
(bigger batches amortize per-round overhead).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.common import Table, cycles_to_us
from repro.host.perfmodel import HostPerfConfig, SimulationRateModel
from repro.manager.runfarm import RunFarmConfig, elaborate
from repro.manager.topology import single_rack

#: Target link latencies swept, in cycles at 3.2 GHz (100 ns .. 8 us).
DEFAULT_LATENCIES_CYCLES = (320, 800, 1600, 3200, 6400, 12800, 25600)

NUM_NODES = 8


@dataclass
class LatencyPoint:
    link_latency_cycles: int
    link_latency_us: float
    rate_mhz: float
    bottleneck: str


@dataclass
class Fig9Result:
    points: List[LatencyPoint]

    def table(self) -> Table:
        table = Table(
            "Figure 9: simulation rate vs target link latency "
            "(8-node cluster; rate grows with batch size, then saturates)",
            ["link latency (us)", "batch (tokens)", "sim rate (MHz)", "bottleneck"],
        )
        for p in self.points:
            table.add_row(
                round(p.link_latency_us, 2),
                p.link_latency_cycles,
                round(p.rate_mhz, 2),
                p.bottleneck,
            )
        return table


def run(
    latencies_cycles: Sequence[int] = DEFAULT_LATENCIES_CYCLES,
    num_nodes: int = NUM_NODES,
    config: Optional[HostPerfConfig] = None,
    quick: bool = False,
) -> Fig9Result:
    """Evaluate the simulation-rate model across link latencies."""
    model = SimulationRateModel(config)
    points = []
    for latency in latencies_cycles:
        estimate = model.cluster_rate(num_nodes, latency)
        points.append(
            LatencyPoint(
                link_latency_cycles=latency,
                link_latency_us=cycles_to_us(latency),
                rate_mhz=estimate.rate_mhz,
                bottleneck=estimate.bottleneck,
            )
        )
    return Fig9Result(points)


def run_functional_probe(
    latencies_cycles: Sequence[int] = (800, 3200, 12800),
    target_cycles: int = 400_000,
) -> List[LatencyPoint]:
    """Measure this reproduction's own host rate vs batch size.

    An idle 4-node cluster is advanced ``target_cycles`` of target time
    at each link latency; since the orchestrator's quantum equals the
    link latency, this exposes the same batching-amortization shape on
    the Python host that Figure 9 shows on EC2 F1.
    """
    points = []
    for latency in latencies_cycles:
        sim = elaborate(
            single_rack(4), RunFarmConfig(link_latency_cycles=latency)
        )
        start = time.perf_counter()
        sim.run_cycles(target_cycles)
        elapsed = time.perf_counter() - start
        rate = sim.simulation.current_cycle / elapsed
        points.append(
            LatencyPoint(
                link_latency_cycles=latency,
                link_latency_us=cycles_to_us(latency),
                rate_mhz=rate / 1e6,
                bottleneck="python-host",
            )
        )
    return points


if __name__ == "__main__":  # pragma: no cover - manual run
    print(run().table())
