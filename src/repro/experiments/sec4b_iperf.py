"""Section IV-B: iperf3 TCP bandwidth between two nodes.

Runs the iperf3 model on Linux-model nodes behind one ToR switch and
measures goodput.  Paper result: ~1.4 Gbit/s — far below the 200 Gbit/s
link, bottlenecked by the network stack on the single-issue in-order
Rocket core.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import Table
from repro.manager.runfarm import RunFarmConfig, elaborate
from repro.manager.topology import single_rack
from repro.swmodel.apps.iperf import (
    RESULT_BYTES,
    RESULT_CYCLES,
    goodput_bps,
    make_iperf_client,
    make_iperf_server,
)


@dataclass
class IperfResult:
    goodput_gbps: float
    bytes_transferred: int
    link_gbps: float = 200.0

    def table(self) -> Table:
        table = Table(
            "Section IV-B: iperf3 TCP bandwidth (paper: 1.4 Gbit/s)",
            ["nominal link (Gbit/s)", "measured TCP goodput (Gbit/s)"],
        )
        table.add_row(self.link_gbps, round(self.goodput_gbps, 3))
        return table


def run(total_bytes: int = 2_000_000, quick: bool = False) -> IperfResult:
    """Measure single-stream TCP goodput between two cluster nodes."""
    if quick:
        total_bytes = min(total_bytes, 400_000)
    sim = elaborate(single_rack(8), RunFarmConfig())
    server = sim.blade(1)
    server.spawn("iperf-server", make_iperf_server())
    sim.blade(0).spawn("iperf-client", make_iperf_client(server.mac, total_bytes))
    # CPU-bound at ~8.5 us/segment: budget generously, then stop at FIN.
    segments = total_bytes // 1460 + 2
    budget_cycles = segments * 40_000 + 2_000_000
    step = budget_cycles // 20
    for _ in range(20):
        sim.run_cycles(step)
        if RESULT_BYTES in server.results:
            break
    if RESULT_BYTES not in server.results:
        raise RuntimeError("iperf transfer did not complete in budget")
    received = server.results[RESULT_BYTES][0]
    cycles = server.results[RESULT_CYCLES][0]
    return IperfResult(
        goodput_gbps=goodput_bps(received, cycles, 3.2e9) / 1e9,
        bytes_transferred=received,
    )


if __name__ == "__main__":  # pragma: no cover - manual run
    print(run(quick=True).table())
