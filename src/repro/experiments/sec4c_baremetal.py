"""Section IV-C: bare-metal node-to-node bandwidth test.

A bare-metal sender drives Ethernet frames straight at the NIC hardware
at maximum rate; the receiver verifies the data arrived in order and
acknowledges completion.  Paper result: a single NIC drives ~100 Gbit/s
onto the network — confirming the Linux stack (1.4 Gbit/s) is the
bottleneck in Section IV-B, not the NIC or the simulation environment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import Table
from repro.manager.runfarm import RunFarmConfig, elaborate
from repro.manager.topology import single_rack
from repro.swmodel.apps.streamer import (
    RESULT_OK,
    attach_baremetal_receiver,
    make_baremetal_sender,
    measured_bandwidth_bps,
)


@dataclass
class BaremetalResult:
    bandwidth_gbps: float
    in_order: bool

    def table(self) -> Table:
        table = Table(
            "Section IV-C: bare-metal NIC bandwidth (paper: ~100 Gbit/s)",
            ["measured bandwidth (Gbit/s)", "data verified in-order"],
        )
        table.add_row(round(self.bandwidth_gbps, 1), self.in_order)
        return table


def run(num_frames: int = 5000, quick: bool = False) -> BaremetalResult:
    """Stream MTU frames NIC-to-NIC and measure receive-side bandwidth."""
    if quick:
        num_frames = min(num_frames, 1500)
    sim = elaborate(single_rack(8), RunFarmConfig())
    receiver = sim.blade(1)
    attach_baremetal_receiver(receiver)
    sim.blade(0).spawn(
        "stream", make_baremetal_sender(receiver.mac, num_frames=num_frames)
    )
    # ~100 Gbit/s -> ~385 cycles/frame; budget 3x plus boot slack.
    budget = num_frames * 1200 + 2_000_000
    step = budget // 10
    for _ in range(10):
        sim.run_cycles(step)
        if RESULT_OK in receiver.results:
            break
    if RESULT_OK not in receiver.results:
        raise RuntimeError("stream did not complete within budget")
    return BaremetalResult(
        bandwidth_gbps=measured_bandwidth_bps(receiver, 3.2e9) / 1e9,
        in_order=receiver.results[RESULT_OK][0],
    )


if __name__ == "__main__":  # pragma: no cover - manual run
    print(run(quick=True).table())
