"""Section V-C: the thousand-node datacenter simulation's platform math.

Assembles every headline number of the 1024-node deployment:

* the Figure 10 topology (32 ToRs x 32 quad-core nodes, 4 aggregation
  switches, 1 root) mapped with supernode packing onto
  **32 f1.16xlarge + 5 m4.16xlarge** instances;
* FPGA utilization: single-node designs use 32.6% of LUTs (14.4% for
  blade RTL); supernodes raise blade utilization to ~57.7% and total to
  ~76% (Section III-A5);
* cost: ~$100/hour at stable spot prices, ~$440/hour on-demand,
  harnessing 256 FPGAs (~$12.8M retail);
* simulation rate: 3.42 MHz at 2 us links (< 1000x slowdown of the
  3.2 GHz target), ~14 billion aggregate instructions per second.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import Table
from repro.host.fpga import STANDARD_FPGA, SUPERNODE_FPGA
from repro.manager.manager import FireSimManager
from repro.manager.mapper import SUPERNODE_HOST
from repro.manager.topology import datacenter_tree


@dataclass
class Sec5cResult:
    num_nodes: int
    num_cores: int
    num_f1: int
    num_m4: int
    spot_per_hour: float
    on_demand_per_hour: float
    total_fpgas: int
    fpga_value_musd: float
    sim_rate_mhz: float
    slowdown: float
    aggregate_bips: float
    single_node_lut_fraction: float
    single_node_blade_fraction: float
    supernode_blade_fraction: float
    supernode_lut_fraction: float

    def table(self) -> Table:
        table = Table(
            "Section V-C: 1024-node datacenter simulation "
            "(paper: 32xf1.16xlarge + 5xm4.16xlarge, ~$100/hr spot, "
            "~$440/hr on-demand, $12.8M FPGAs, 3.42 MHz)",
            ["quantity", "value"],
        )
        table.add_row("simulated nodes", self.num_nodes)
        table.add_row("simulated cores", self.num_cores)
        table.add_row("f1.16xlarge instances", self.num_f1)
        table.add_row("m4.16xlarge instances", self.num_m4)
        table.add_row("spot $/hour", round(self.spot_per_hour, 2))
        table.add_row("on-demand $/hour", round(self.on_demand_per_hour, 2))
        table.add_row("FPGAs harnessed", self.total_fpgas)
        table.add_row("FPGA retail value ($M)", round(self.fpga_value_musd, 1))
        table.add_row("simulation rate (MHz)", round(self.sim_rate_mhz, 2))
        table.add_row("slowdown vs 3.2 GHz", round(self.slowdown, 1))
        table.add_row("aggregate BIPS", round(self.aggregate_bips, 1))
        table.add_row(
            "single-node FPGA LUT util",
            f"{self.single_node_lut_fraction:.1%}",
        )
        table.add_row(
            "supernode FPGA LUT util", f"{self.supernode_lut_fraction:.1%}"
        )
        return table


def run(quick: bool = False) -> Sec5cResult:
    """Map and price the full 1024-node target."""
    topology = datacenter_tree()  # 4 agg x 8 racks x 32 nodes = 1024
    manager = FireSimManager(topology, host_config=SUPERNODE_HOST)
    manager.buildafi()
    deployment = manager.launchrunfarm()
    cost = manager.cost_report()
    rate = manager.rate_estimate()

    num_nodes = len(deployment.server_placements)
    cores_per_node = 4
    num_cores = num_nodes * cores_per_node
    # Aggregate instructions per second: every simulated core retires
    # about one instruction per simulated cycle (Rocket is single-issue,
    # CPI ~1), at the achieved simulation rate.
    aggregate_ips = num_cores * rate.rate_hz

    return Sec5cResult(
        num_nodes=num_nodes,
        num_cores=num_cores,
        num_f1=deployment.num_f1_instances,
        num_m4=deployment.num_m4_instances,
        spot_per_hour=cost.spot_per_hour,
        on_demand_per_hour=cost.on_demand_per_hour,
        total_fpgas=cost.total_fpgas,
        fpga_value_musd=cost.fpga_retail_value / 1e6,
        sim_rate_mhz=rate.rate_mhz,
        slowdown=rate.slowdown_vs_target(3.2e9),
        aggregate_bips=aggregate_ips / 1e9,
        single_node_lut_fraction=STANDARD_FPGA.total_lut_fraction,
        single_node_blade_fraction=STANDARD_FPGA.blade_lut_fraction,
        supernode_blade_fraction=SUPERNODE_FPGA.blade_lut_fraction,
        supernode_lut_fraction=SUPERNODE_FPGA.total_lut_fraction,
    )


if __name__ == "__main__":  # pragma: no cover - manual run
    print(run().table())
