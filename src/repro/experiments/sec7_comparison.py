"""Section VII: comparison against prior scale-out simulators.

Regenerates the related-work comparison as a table: FireSim versus
dist-gem5 (software full-system simulation scaled out), Graphite
(relaxed-synchronization parallel simulation), and DIABLO (custom-FPGA
abstract models), with this Python reproduction's own measured rate as a
bonus row — it is itself a software simulator, and lands orders of
magnitude below FireSim exactly as Section VII describes for software
approaches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.common import Table
from repro.host.baselines import SimulatorEnvelope, comparison_rows


@dataclass
class Sec7Result:
    rows: List[SimulatorEnvelope]

    def envelope(self, name: str) -> SimulatorEnvelope:
        for row in self.rows:
            if row.name == name:
                return row
        raise LookupError(f"no comparison row named {name!r}")

    def table(self) -> Table:
        table = Table(
            "Section VII: scale-out simulator comparison "
            "(FireSim: cycle-exact, full OS, tapeout RTL, no CapEx)",
            [
                "simulator",
                "node rate",
                "slowdown vs 3.2 GHz",
                "cycle-exact",
                "full OS",
                "CapEx ($)",
            ],
        )
        for row in self.rows:
            if row.node_rate_hz >= 1e6:
                rate = f"{row.node_rate_hz / 1e6:.2f} MHz"
            else:
                rate = f"{row.node_rate_hz / 1e3:.0f} KIPS"
            table.add_row(
                row.name,
                rate,
                round(row.slowdown_vs(), 1),
                row.cycle_exact,
                row.runs_full_os,
                int(row.capex_usd),
            )
        return table


def run(include_measured: bool = True, quick: bool = False) -> Sec7Result:
    return Sec7Result(comparison_rows(include_measured=include_measured))


if __name__ == "__main__":  # pragma: no cover - manual run
    print(run().table())
