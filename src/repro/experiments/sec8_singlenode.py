"""Section VIII: reproducible, massively parallel single-node experiments.

FireSim's management framework, built for thousand-node simulations, is
"immensely useful" for single-node work too: the manager distributes jobs
to many parallel single-node simulations, so the entire SPECint17 suite
runs with full reference inputs and yields cycle-exact results "in
roughly one day".

This experiment reproduces that workflow end to end:

* one single-node FireSim simulation per SPECint benchmark, farmed via
  the manager's workload machinery (each blade runs its benchmark's
  profile through the Rocket core + cache + DRAM timing models);
* per-benchmark cycle-exact runtimes collected by the manager;
* the host wall-clock estimate from the performance model: a single node
  simulates at tens of MHz, so a ~10^12-instruction reference input
  (~10^12 cycles at Rocket's CPI) takes ~10^12 / ~30 MHz ≈ 10 hours —
  the paper's "roughly one day" for the suite run in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.common import Table
from repro.host.perfmodel import SimulationRateModel
from repro.manager.manager import FireSimManager
from repro.manager.topology import ServerNode, SwitchNode
from repro.manager.workload import WorkloadSpec
from repro.swmodel.apps.spec import (
    RESULT_KEY,
    SPECINT_2017,
    SpecBenchmark,
    make_spec_runner,
)


@dataclass
class SpecRow:
    benchmark: str
    simulated_cycles: int
    simulated_seconds: float
    #: Estimated host wall-clock to run the *reference* input (scale=1.0)
    #: on one FPGA at the model's single-node rate.
    est_reference_host_hours: float


@dataclass
class Sec8Result:
    rows: List[SpecRow]
    scale: float
    single_node_rate_mhz: float

    @property
    def suite_host_hours(self) -> float:
        """Parallel farm: the suite takes as long as its slowest member."""
        return max(r.est_reference_host_hours for r in self.rows)

    def table(self) -> Table:
        table = Table(
            "Section VIII: SPECint single-node farm "
            f"(scale={self.scale:g}; paper: full suite, reference inputs, "
            "cycle-exact results in roughly one day)",
            ["benchmark", "cycles (scaled)", "est. reference host-hours"],
        )
        for row in self.rows:
            table.add_row(
                row.benchmark,
                row.simulated_cycles,
                round(row.est_reference_host_hours, 1),
            )
        table.add_row(
            "suite (parallel)", "-", round(self.suite_host_hours, 1)
        )
        return table


def run(
    benchmarks: Optional[Sequence[SpecBenchmark]] = None,
    scale: float = 2e-7,
    quick: bool = False,
) -> Sec8Result:
    """Farm one single-node simulation per benchmark and collect."""
    benchmarks = list(benchmarks or SPECINT_2017)
    if quick:
        benchmarks = benchmarks[:3]
        scale = min(scale, 1e-7)

    # One-rack topology with one node per benchmark: each blade is an
    # independent single-node experiment (they never talk).
    tor = SwitchNode()
    tor.add_downlinks([ServerNode("QuadCore") for _ in benchmarks])
    manager = FireSimManager(tor)
    manager.buildafi()
    manager.launchrunfarm()
    sim = manager.infrasetup()

    workload = WorkloadSpec("specint17", duration_seconds=0.0)
    for node_index, benchmark in enumerate(benchmarks):
        workload.add_job(
            node_index,
            benchmark.name,
            lambda b, bench=benchmark: b.spawn(
                bench.name, make_spec_runner(bench, b.soc, scale=scale)
            ),
        )

    # Run until every benchmark reports.  The budget comes from a probe
    # elaboration of each profile (memory stalls push cycles well past
    # the instruction count), doubled for scheduler slack.
    for job in workload.jobs:
        job.setup(sim.blade(job.node_index))
    from repro.swmodel.apps.spec import reference_cycles
    from repro.tile.soc import config_by_name

    probe_soc = config_by_name("QuadCore").build()
    budget = max(
        reference_cycles(benchmark, probe_soc, scale=scale)
        for benchmark in benchmarks
    )
    sim.run_cycles(budget * 2 + 2_000_000)

    rate = SimulationRateModel().cluster_rate(1, 6400)
    rows = []
    for node_index, benchmark in enumerate(benchmarks):
        records = sim.blade(node_index).results.get(RESULT_KEY, [])
        if not records:
            raise RuntimeError(f"{benchmark.name} did not finish in budget")
        _, cycles = records[0]
        reference_cycles = cycles / scale
        rows.append(
            SpecRow(
                benchmark=benchmark.name,
                simulated_cycles=cycles,
                simulated_seconds=cycles / 3.2e9,
                est_reference_host_hours=reference_cycles
                / rate.rate_hz
                / 3600,
            )
        )
    return Sec8Result(
        rows=rows, scale=scale, single_node_rate_mhz=rate.rate_mhz
    )


if __name__ == "__main__":  # pragma: no cover - manual run
    print(run(quick=True).table())
