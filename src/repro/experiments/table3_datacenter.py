"""Table III: 1024-node datacenter memcached experiment (§V-C).

The paper simulates the Figure 10 topology (32 ToR switches x 32 nodes,
4 aggregation switches, 1 root switch) and runs 512 memcached servers
against 512 mutilate load generators in three pairings:

* **Cross-ToR** — client and server under the same ToR switch;
* **Cross-aggregation** — pairs cross an aggregation switch;
* **Cross-datacenter** — pairs cross the root switch.

Expected results (Table III): each added tier raises median latency by
four link latencies plus switching (~8 us at 2 us links), 95th
percentile shows no predictable change (dominated by other variability),
and aggregate QPS decreases slightly (load is limited per pair, so the
effect of latency dominates congestion).

Scaling note (see EXPERIMENTS.md): the full 1024-node topology is
expressible and runs, but the default benchmark uses a structurally
identical scaled-down tree (8 ToRs x 8 nodes = 64 servers + 64 clients,
4 aggregation switches, 1 root) so the cycle-exact Python simulation
finishes in bench-friendly time.  All three pairings cross the same
switch tiers as the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.experiments.common import Table, cycles_to_us, percentile
from repro.manager.runfarm import RunFarmConfig, RunningSimulation, elaborate
from repro.manager.topology import datacenter_tree
from repro.swmodel.apps.memcached import MemcachedConfig, start_memcached
from repro.swmodel.apps.mutilate import (
    RESULT_LATENCY,
    MutilateConfig,
    start_mutilate,
)

PAIRINGS = ("cross-tor", "cross-aggregation", "cross-datacenter")


@dataclass(frozen=True)
class DatacenterShape:
    """Tree geometry (defaults: the paper's Figure 10 shape, scaled)."""

    num_aggregation: int = 4
    racks_per_aggregation: int = 2
    servers_per_rack: int = 8

    @property
    def num_racks(self) -> int:
        return self.num_aggregation * self.racks_per_aggregation

    @property
    def num_nodes(self) -> int:
        return self.num_racks * self.servers_per_rack


#: The paper's full-scale shape: 32 ToRs x 32 nodes = 1024.
PAPER_SHAPE = DatacenterShape(
    num_aggregation=4, racks_per_aggregation=8, servers_per_rack=32
)


@dataclass
class PairingResult:
    pairing: str
    p50_us: float
    p95_us: float
    aggregate_qps: float
    num_pairs: int


@dataclass
class Table3Result:
    rows: List[PairingResult]

    def table(self) -> Table:
        table = Table(
            "Table III: memcached latencies and QPS by pairing "
            "(paper: p50 rises ~8 us per tier; p95 unpredictable; QPS dips)",
            ["pairing", "p50 (us)", "p95 (us)", "aggregate QPS"],
        )
        for r in self.rows:
            table.add_row(
                r.pairing,
                round(r.p50_us, 2),
                round(r.p95_us, 2),
                round(r.aggregate_qps, 1),
            )
        return table


def _pair_nodes(
    shape: DatacenterShape, pairing: str
) -> List[Tuple[int, int]]:
    """(server_node, client_node) index pairs for one pairing mode.

    Within each rack, the first half of nodes are memcached servers and
    the second half are load generators.  Node indices follow the
    deterministic ``iter_servers`` order: rack-major.
    """
    per_rack = shape.servers_per_rack
    half = per_rack // 2
    racks = shape.num_racks
    racks_per_agg = shape.racks_per_aggregation

    def node(rack: int, slot: int) -> int:
        return rack * per_rack + slot

    pairs = []
    for rack in range(racks):
        if pairing == "cross-tor":
            client_rack = rack
        elif pairing == "cross-aggregation":
            # Partner rack under the same aggregation switch.
            group = rack // racks_per_agg
            offset = rack % racks_per_agg
            client_rack = group * racks_per_agg + (offset ^ 1)
        elif pairing == "cross-datacenter":
            # Partner rack under a different aggregation switch.
            client_rack = (rack + racks_per_agg) % racks
        else:
            raise ValueError(f"unknown pairing {pairing!r}")
        for slot in range(half):
            pairs.append(
                (node(rack, slot), node(client_rack, half + slot))
            )
    return pairs


def run_pairing(
    pairing: str,
    shape: DatacenterShape = DatacenterShape(),
    per_pair_qps: float = 6_000,
    measure_seconds: float = 0.012,
    warmup_seconds: float = 0.002,
    server_threads: int = 4,
) -> PairingResult:
    """One Table III row: all pairs active in one pairing mode."""
    topology = datacenter_tree(
        num_aggregation=shape.num_aggregation,
        racks_per_aggregation=shape.racks_per_aggregation,
        servers_per_rack=shape.servers_per_rack,
    )
    sim = elaborate(topology, RunFarmConfig())
    pairs = _pair_nodes(shape, pairing)
    duration_cycles = int((warmup_seconds + measure_seconds) * 3.2e9)
    for index, (server_index, client_index) in enumerate(pairs):
        server = sim.blade(server_index)
        start_memcached(server, MemcachedConfig(num_threads=server_threads))
        start_mutilate(
            sim.blade(client_index),
            MutilateConfig(
                server_mac=server.mac,
                target_qps=per_pair_qps,
                duration_cycles=duration_cycles,
                num_connections=8,
                server_threads=server_threads,
                seed=5000 + index,
            ),
        )
    sim.run_seconds(warmup_seconds + measure_seconds + 0.002)

    latencies: List[int] = []
    for _, client_index in pairs:
        latencies.extend(
            sim.blade(client_index).results.get(RESULT_LATENCY, [])
        )
    if not latencies:
        raise RuntimeError(f"no samples for pairing {pairing}")
    warm_fraction = warmup_seconds / (warmup_seconds + measure_seconds)
    keep = latencies[int(len(latencies) * warm_fraction):]
    return PairingResult(
        pairing=pairing,
        p50_us=cycles_to_us(percentile(keep, 50)),
        p95_us=cycles_to_us(percentile(keep, 95)),
        aggregate_qps=len(keep) / measure_seconds,
        num_pairs=len(pairs),
    )


def run(
    shape: Optional[DatacenterShape] = None,
    quick: bool = False,
    per_pair_qps: float = 6_000,
) -> Table3Result:
    """All three Table III pairings."""
    shape = shape or DatacenterShape()
    measure = 0.008 if quick else 0.012
    rows = [
        run_pairing(
            pairing, shape, per_pair_qps=per_pair_qps, measure_seconds=measure
        )
        for pairing in PAIRINGS
    ]
    return Table3Result(rows)


if __name__ == "__main__":  # pragma: no cover - manual run
    print(run(quick=True).table())
