"""Deterministic fault injection and resilience for the reproduction.

FireSim's manager runs over hundreds of spot instances, so host-level
failure is routine: instance launches are rejected, AGFI builds fail,
simulation controllers die mid-run, heartbeats go quiet.  This package
models that failure surface *deterministically* — every fault is drawn
from a seeded :class:`FaultPlan`, so a chaos run is as reproducible as a
clean one — and proves that recovery is cycle-exact: a crashed-and-
resumed workload reaches the same final target cycle with the same
packet trace as a run that never crashed.

Layout:

* :mod:`repro.faults.plan` — fault taxonomy (:class:`FaultKind`,
  :class:`FaultSpec`, :class:`FaultPlan`) and the seeded
  :class:`FaultInjector` that fires them at manager lifecycle points
  and quantum boundaries.
* :mod:`repro.faults.retry` — :class:`RetryPolicy` (exponential backoff
  with seeded jitter) and the per-host :class:`CircuitBreaker` that
  quarantines repeatedly failing instances.
* :mod:`repro.faults.checkpoint` — quantum-boundary
  :class:`SimulationSnapshot` / :class:`ReplayCheckpoint` state capture
  with :func:`state_digest` verification of cycle-exact restore.
* :mod:`repro.faults.watchdog` — :class:`TokenWatchdog` scanning link
  occupancy for silently stalled channels.
"""

from repro.faults.checkpoint import (
    CheckpointError,
    CheckpointUnsupported,
    ReplayCheckpoint,
    SimulationSnapshot,
    state_digest,
)
from repro.faults.plan import (
    AgfiBuildFault,
    ControllerCrash,
    FaultError,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    HeartbeatLost,
    InstanceLaunchFault,
    ResilienceStats,
    RingCorruption,
    TransientFault,
    WorkerCrash,
    WorkerHang,
)
from repro.faults.retry import CircuitBreaker, RetryPolicy
from repro.faults.watchdog import TokenWatchdog

__all__ = [
    "AgfiBuildFault",
    "CheckpointError",
    "CheckpointUnsupported",
    "CircuitBreaker",
    "ControllerCrash",
    "FaultError",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "HeartbeatLost",
    "InstanceLaunchFault",
    "ReplayCheckpoint",
    "ResilienceStats",
    "RetryPolicy",
    "RingCorruption",
    "SimulationSnapshot",
    "TokenWatchdog",
    "TransientFault",
    "WorkerCrash",
    "WorkerHang",
    "state_digest",
]
