"""Quantum-boundary checkpoint/restore with cycle-exact recovery.

Two complementary mechanisms, both anchored on the determinism of the
token-coordinated simulation (the robustness analogue of the paper's
``2l + m + n`` token-exactness invariant — recovery must not perturb
target-cycle timing by even one cycle):

* :class:`SimulationSnapshot` — a *state* checkpoint: a deep copy of a
  :class:`~repro.core.simulation.Simulation`'s models, links, and
  counters taken at a quantum boundary.  Restoring rewinds the
  simulation in place; re-running from the snapshot is cycle-identical
  to never having crashed.  Models whose state the host cannot copy
  (live generator threads in the software model) are detected and named
  in a :class:`CheckpointUnsupported` diagnostic.

* :class:`ReplayCheckpoint` — a *recipe* checkpoint for full server
  blades: it records the checkpoint cycle plus a :func:`state_digest`
  fingerprint, and restores by re-elaborating the target and replaying
  to the checkpoint cycle.  Because every round is deterministic, the
  replayed state is bit-identical — and the digest check *proves* it on
  every restore rather than assuming it.  This is how the manager
  resumes a workload after a mid-run controller crash.
"""

from __future__ import annotations

import copy
import hashlib
from typing import Any, Callable, Dict, Tuple

from repro import ReproError
from repro.core.simulation import Simulation, _Attachment


class CheckpointError(ReproError):
    """A restore produced state that does not match the checkpoint."""


class CheckpointUnsupported(ReproError):
    """A model holds host state that cannot be snapshotted."""


# -- state digest --------------------------------------------------------


def state_digest(running: Any) -> str:
    """Fingerprint of everything cycle-timing-visible in a running sim.

    Accepts a :class:`~repro.manager.runfarm.RunningSimulation` (or any
    object with ``simulation``/``switches``/``blades`` attributes) and
    hashes the current cycle, orchestrator counters, per-switch stats
    and queue occupancy, per-link flit counts, and per-blade results.
    Two states with equal digests are indistinguishable to a workload.
    Deliberately excludes host-side identifiers (object ids, global
    sequence numbers) that differ across re-elaborations of the same
    target without affecting timing.
    """
    simulation = running.simulation
    parts = [
        ("cycle", simulation.current_cycle),
        ("rounds", simulation.stats.rounds),
        ("tokens", simulation.stats.tokens_moved),
        ("valid", simulation.stats.valid_tokens_moved),
    ]
    for index, link in enumerate(simulation.links):
        parts.append(
            (f"link{index}", link.flits_a_to_b, link.flits_b_to_a)
        )
    # Switch ids come from a process-global counter, so switch *names*
    # differ across re-elaborations of the same topology; key on the
    # topology position (sorted-id rank), which is stable.
    for position, switch_id in enumerate(sorted(running.switches)):
        switch = running.switches[switch_id]
        stats = switch.stats
        parts.append((
            f"switch@{position}", stats.packets_in, stats.packets_out,
            stats.packets_dropped, stats.bytes_in, stats.bytes_out,
            stats.bytes_dropped, stats.broadcasts,
            switch.queued_packets(), switch.queued_bytes(),
        ))
    for node_index in sorted(running.blades):
        blade = running.blades[node_index]
        results = blade.results
        parts.append((
            blade.name,
            tuple(sorted(
                (key, tuple(values)) for key, values in results.items()
            )),
        ))
    return hashlib.sha256(repr(parts).encode()).hexdigest()


# -- state checkpoint ----------------------------------------------------


class SimulationSnapshot:
    """Deep-copied simulation state captured at a quantum boundary."""

    def __init__(
        self,
        cycle: int,
        started: bool,
        models: list,
        links: list,
        stats: Any,
        attach_map: Dict[Tuple[int, str], Tuple[int, str]],
    ) -> None:
        self.cycle = cycle
        self._started = started
        self._models = models
        self._links = links
        self._stats = stats
        self._attach_map = attach_map

    @classmethod
    def capture(cls, simulation: Simulation) -> "SimulationSnapshot":
        """Snapshot a simulation's full token-visible state.

        One shared deepcopy memo keeps cross-references (a frame queued
        in a switch *and* in flight on a link) consistent in the copy.
        """
        memo: Dict[int, Any] = {}
        try:
            models = copy.deepcopy(simulation.models, memo)
            links = copy.deepcopy(simulation.links, memo)
            stats = copy.deepcopy(simulation.stats, memo)
        except TypeError as exc:
            raise CheckpointUnsupported(
                f"{cls._offender(simulation)} holds host state that cannot "
                f"be copied ({exc}); software-model blades run live "
                "generator threads — use ReplayCheckpoint for those"
            ) from exc
        model_index = {id(m): i for i, m in enumerate(simulation.models)}
        link_index = {id(l): i for i, l in enumerate(simulation.links)}
        attach_map = {
            (model_index[model_id], port): (
                link_index[id(attachment.link)], attachment.side
            )
            for (model_id, port), attachment
            in simulation._attachments.items()
        }
        return cls(
            cycle=simulation.current_cycle,
            started=simulation._started,
            models=models,
            links=links,
            stats=stats,
            attach_map=attach_map,
        )

    @staticmethod
    def _offender(simulation: Simulation) -> str:
        """Name the first model that defeats deepcopy, for the diagnostic."""
        for model in simulation.models:
            try:
                copy.deepcopy(model)
            except TypeError:
                return f"model {model.name!r}"
        return "a link or counter"

    def restore(self, simulation: Simulation) -> None:
        """Rewind a simulation to this snapshot, in place.

        The snapshot itself stays pristine (state is deep-copied out
        again), so one checkpoint supports any number of restores.  The
        observer and fault hook are left as-is — telemetry and injection
        belong to the live run, not the saved state.
        """
        memo: Dict[int, Any] = {}
        models = copy.deepcopy(self._models, memo)
        links = copy.deepcopy(self._links, memo)
        simulation.models = models
        simulation.links = links
        simulation.stats = copy.deepcopy(self._stats, memo)
        simulation.current_cycle = self.cycle
        simulation._started = self._started
        simulation._attachments = {
            (id(models[model_i]), port): _Attachment(links[link_i], side)
            for (model_i, port), (link_i, side) in self._attach_map.items()
        }


# -- replay checkpoint ---------------------------------------------------


class ReplayCheckpoint:
    """A digest-verified deterministic-replay checkpoint.

    ``rebuild`` must return a freshly elaborated, workload-deployed
    running simulation at cycle 0; :meth:`restore` replays it to the
    checkpoint cycle and verifies the :func:`state_digest` matches what
    was captured — a failed match means determinism was violated and
    recovery would *not* be cycle-exact, so it raises instead of
    silently resuming wrong.
    """

    def __init__(self, rebuild: Callable[[], Any], cycle: int,
                 digest: str) -> None:
        self.rebuild = rebuild
        self.cycle = cycle
        self.digest = digest

    @classmethod
    def capture(cls, running: Any,
                rebuild: Callable[[], Any]) -> "ReplayCheckpoint":
        return cls(
            rebuild=rebuild,
            cycle=running.simulation.current_cycle,
            digest=state_digest(running),
        )

    def to_dict(self) -> Dict[str, Any]:
        """Portable form: everything but the rebuild recipe.

        A replay checkpoint is just ``(cycle, digest)`` plus knowledge
        of how to re-elaborate the target — and the latter travels as a
        job spec, not a closure.  The job server ships this dict across
        process and serialization boundaries (a preempted job's
        checkpoint lives in the server's records until resume) and
        reconstitutes with :meth:`from_dict` next to a fresh rebuild
        closure built from the same spec.
        """
        return {"cycle": self.cycle, "digest": self.digest}

    @classmethod
    def from_dict(
        cls, rebuild: Callable[[], Any], payload: Dict[str, Any]
    ) -> "ReplayCheckpoint":
        """Reattach a portable checkpoint to a rebuild recipe."""
        try:
            cycle = int(payload["cycle"])
            digest = str(payload["digest"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed portable checkpoint {payload!r}: {exc}"
            ) from exc
        if cycle < 0:
            raise CheckpointError(
                f"portable checkpoint cycle must be >= 0, got {cycle}"
            )
        return cls(rebuild=rebuild, cycle=cycle, digest=digest)

    def restore(self) -> Any:
        """Rebuild, replay to the checkpoint cycle, verify the digest."""
        running = self.rebuild()
        if running.simulation.current_cycle != 0:
            raise CheckpointError(
                "rebuild() must return a fresh simulation at cycle 0, got "
                f"cycle {running.simulation.current_cycle}"
            )
        if self.cycle > 0:
            running.simulation.run_until(self.cycle)
        if running.simulation.current_cycle != self.cycle:
            raise CheckpointError(
                f"replay overshot the checkpoint: expected cycle "
                f"{self.cycle}, reached {running.simulation.current_cycle} "
                "(quantum changed between capture and restore?)"
            )
        replayed = state_digest(running)
        if replayed != self.digest:
            raise CheckpointError(
                f"replayed state diverged from checkpoint at cycle "
                f"{self.cycle}: digest {replayed[:16]} != "
                f"{self.digest[:16]} — recovery would not be cycle-exact"
            )
        return running
