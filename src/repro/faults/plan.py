"""Deterministic fault plans and the injector that executes them.

FireSim's manager runs on an elastic spot-market fleet where host-level
failures are routine (Sections II, III-B3): instance launches fail, FPGA
image builds flake, simulation controllers crash mid-run, and heartbeats
over the socket transport go quiet.  This module models that fault
surface *deterministically*: a :class:`FaultPlan` is a seeded list of
:class:`FaultSpec` entries naming where and when each fault fires, and a
:class:`FaultInjector` executes the plan at the manager's injection
points.  Same seed + same plan → byte-identical fault sequence, so a
chaos run is as reproducible as a clean one.

Fault taxonomy (the exception hierarchy mirrors recoverability):

* :class:`TransientFault` — retryable host failures: instance launch
  (:class:`InstanceLaunchFault`), AGFI build (:class:`AgfiBuildFault`),
  heartbeat loss (:class:`HeartbeatLost`).  The manager retries these
  under its :class:`~repro.faults.retry.RetryPolicy`; repeat offenders
  trip the circuit breaker and are quarantined + remapped.
* :class:`ControllerCrash` — a simulation controller dies mid-run.  Not
  retryable in place: the manager restores the last quantum-boundary
  checkpoint and resumes, cycle-identically.
* ``token-stall`` — not an exception at injection time: the injector
  silently loses an in-flight token batch on a target link; the
  orchestrator's watchdog diagnostics then raise a
  :class:`~repro.core.channel.TokenStarvationError` naming the stalled
  endpoint, and the manager recovers via checkpoint restore.
* distributed-transport chaos verbs — ``worker-hang`` livelocks the
  target worker's round loop (the supervisor must detect and kill it),
  ``ring-corrupt`` flips one byte in a staged shm frame after its
  checksums are computed (the reader must raise
  :class:`RingCorruption`), and ``wakeup-loss`` drops one shm wakeup
  post (the reader's cursor check must self-heal).  All three fire
  inside worker processes through the inherited fault hook.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, List, Optional, Tuple

from repro import ConfigError, ReproError


class FaultKind(Enum):
    """Host-level fault classes the plan can inject."""

    INSTANCE_LAUNCH = "instance-launch"
    AGFI_BUILD = "agfi-build"
    CONTROLLER_CRASH = "controller-crash"
    HEARTBEAT_LOSS = "heartbeat-loss"
    TOKEN_STALL = "token-stall"
    WORKER_HANG = "worker-hang"
    RING_CORRUPT = "ring-corrupt"
    WAKEUP_LOSS = "wakeup-loss"


#: Manager lifecycle points at which faults may fire.
INJECTION_POINTS = (
    "buildafi",
    "launchrunfarm",
    "infrasetup",
    "runworkload",
)

#: Kinds that fire *inside* the running simulation (armed as the
#: orchestrator's fault hook) rather than at a verb boundary.
MID_RUN_KINDS = (
    FaultKind.CONTROLLER_CRASH,
    FaultKind.TOKEN_STALL,
    FaultKind.WORKER_HANG,
    FaultKind.RING_CORRUPT,
    FaultKind.WAKEUP_LOSS,
)

#: Mid-run kinds that only make sense inside a forked dist worker; the
#: injector routes them through :meth:`FaultInjector._fire_transport_fault`.
_TRANSPORT_FAULT_KINDS = (
    FaultKind.WORKER_HANG,
    FaultKind.RING_CORRUPT,
    FaultKind.WAKEUP_LOSS,
)


# -- exceptions ----------------------------------------------------------


class FaultError(ReproError):
    """Base for injected faults; carries the spec that fired."""

    def __init__(self, message: str, kind: FaultKind,
                 target: Optional[str] = None,
                 at_cycle: Optional[int] = None) -> None:
        super().__init__(message)
        self.kind = kind
        self.target = target
        self.at_cycle = at_cycle


class TransientFault(FaultError):
    """A retryable host failure (launch / build / heartbeat)."""


class InstanceLaunchFault(TransientFault):
    """An EC2 instance failed to launch (spot loss, capacity)."""


class AgfiBuildFault(TransientFault):
    """An FPGA image build failed on the build farm."""


class HeartbeatLost(TransientFault):
    """A simulation controller missed a heartbeat over its transport."""


class ControllerCrash(FaultError):
    """A simulation controller died mid-run; recover from checkpoint."""


class WorkerCrash(FaultError):
    """A :mod:`repro.dist` worker process died mid-run.

    Distributed execution treats a lost worker exactly like a lost host
    in the paper's spot-market fleet: the manager restores the last
    checkpoint and resumes the workload partitioned across the
    *surviving* workers.  ``target`` carries ``"worker:<index>"`` so the
    circuit breaker and quarantine bookkeeping see a host-shaped victim.
    """

    def __init__(self, message: str, worker_index: int = -1,
                 at_cycle: Optional[int] = None) -> None:
        super().__init__(
            message,
            kind=FaultKind.CONTROLLER_CRASH,
            target=f"worker:{worker_index}",
            at_cycle=at_cycle,
        )
        self.worker_index = worker_index


class WorkerHang(WorkerCrash):
    """A :mod:`repro.dist` worker stopped making lockstep progress.

    Raised by the run driver after the supervisor's adaptive deadline
    expired and the worker was killed (SIGTERM -> SIGKILL).  Subclasses
    :class:`WorkerCrash` because recovery is identical — checkpoint
    restore onto the survivors — but the distinct type keeps hang
    verdicts countable separately from clean crashes.
    """


class RingCorruption(FaultError):
    """A shm ring frame failed its integrity check (CRC or sequence).

    Carries the directed ring identity (``"ring:<src>-><dst>"``) as the
    fault target so the manager's per-pair circuit breaker can count
    repeat offenders and degrade that run's transport shm -> pipe.
    Corruption is *never* decoded into simulation state — the reader
    raises before any window leaves the transport.
    """

    def __init__(self, message: str, ring: str = "ring:?",
                 at_cycle: Optional[int] = None) -> None:
        super().__init__(
            message,
            kind=FaultKind.RING_CORRUPT,
            target=ring,
            at_cycle=at_cycle,
        )
        self.ring = ring


_EXCEPTION_FOR_KIND = {
    FaultKind.INSTANCE_LAUNCH: InstanceLaunchFault,
    FaultKind.AGFI_BUILD: AgfiBuildFault,
    FaultKind.HEARTBEAT_LOSS: HeartbeatLost,
    FaultKind.CONTROLLER_CRASH: ControllerCrash,
}


# -- the plan ------------------------------------------------------------


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    Attributes:
        kind: which fault class fires.
        point: the lifecycle verb it fires at (one of
            :data:`INJECTION_POINTS`).
        target: optional victim — a host (``"f1:0"``), a build config
            name (``"QuadCore"``), or a link name for token stalls.
            None matches any target the injector is asked about.
        times: how many times the fault fires before it is exhausted.
        at_cycle: for mid-run kinds, the target cycle at (or after)
            which the fault fires.
        after_model: for ``controller-crash``, fire immediately after
            this model's tick (mid-round); None fires at a round start.
        probability: per-opportunity firing probability, drawn from the
            plan's seeded RNG (1.0 = always).
    """

    kind: FaultKind
    point: str
    target: Optional[str] = None
    times: int = 1
    at_cycle: Optional[int] = None
    after_model: Optional[str] = None
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.point not in INJECTION_POINTS:
            raise ConfigError(
                f"unknown injection point {self.point!r}; expected one of "
                f"{', '.join(INJECTION_POINTS)}"
            )
        if self.times < 1:
            raise ConfigError(f"fault times must be >= 1, got {self.times}")
        if not 0.0 < self.probability <= 1.0:
            raise ConfigError(
                f"fault probability must be in (0, 1], got {self.probability}"
            )
        if self.kind in MID_RUN_KINDS:
            if self.at_cycle is None:
                raise ConfigError(
                    f"{self.kind.value} faults need at_cycle"
                )
            if self.point != "runworkload":
                raise ConfigError(
                    f"{self.kind.value} faults fire at runworkload, "
                    f"not {self.point!r}"
                )
        if self.kind is FaultKind.TOKEN_STALL and self.target is None:
            raise ConfigError("token-stall faults need a target link name")

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind.value, "point": self.point}
        if self.target is not None:
            out["target"] = self.target
        if self.times != 1:
            out["times"] = self.times
        if self.at_cycle is not None:
            out["at_cycle"] = self.at_cycle
        if self.after_model is not None:
            out["after_model"] = self.after_model
        if self.probability != 1.0:
            out["probability"] = self.probability
        return out

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "FaultSpec":
        try:
            kind = FaultKind(raw["kind"])
        except KeyError:
            raise ConfigError(f"fault spec missing 'kind': {raw!r}") from None
        except ValueError:
            valid = ", ".join(k.value for k in FaultKind)
            raise ConfigError(
                f"unknown fault kind {raw['kind']!r}; expected one of {valid}"
            ) from None
        known = {"kind", "point", "target", "times", "at_cycle",
                 "after_model", "probability"}
        extra = set(raw) - known
        if extra:
            raise ConfigError(f"unknown fault spec keys: {sorted(extra)}")
        if "point" not in raw:
            raise ConfigError(f"fault spec missing 'point': {raw!r}")
        return cls(
            kind=kind,
            point=raw["point"],
            target=raw.get("target"),
            times=raw.get("times", 1),
            at_cycle=raw.get("at_cycle"),
            after_model=raw.get("after_model"),
            probability=raw.get("probability", 1.0),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered list of faults to inject into one run."""

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.specs],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(raw, dict):
            raise ConfigError(f"fault plan must be an object, got {raw!r}")
        faults = raw.get("faults", [])
        if not isinstance(faults, list):
            raise ConfigError("fault plan 'faults' must be a list")
        return cls(
            seed=raw.get("seed", 0),
            specs=tuple(FaultSpec.from_dict(entry) for entry in faults),
        )

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        try:
            with open(path) as fh:
                raw = json.load(fh)
        except OSError as exc:
            raise ConfigError(f"cannot read fault plan {path!r}: {exc}") from exc
        except ValueError as exc:
            raise ConfigError(
                f"fault plan {path!r} is not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(raw)


# -- resilience counters -------------------------------------------------


@dataclass
class ResilienceStats:
    """Counters for every fault/retry/recovery event (a ``repro.obs``
    source registered under the ``faults`` prefix)."""

    faults_injected: int = 0
    retries: int = 0
    recoveries: int = 0
    giveups: int = 0
    checkpoints_taken: int = 0
    restores: int = 0
    replay_cycles: int = 0
    backoff_seconds: float = 0.0
    hosts_quarantined: int = 0
    heartbeats_missed: int = 0
    stalls_detected: int = 0
    watchdog_scans: int = 0
    #: Distributed runs that asked for the shared-memory transport but
    #: fell back to pipes (``/dev/shm`` unavailable or denied).
    shm_fallbacks: int = 0
    #: Workers the supervisor declared hung (adaptive deadline blown).
    hangs_detected: int = 0
    #: Worker processes forcibly killed (hang kills + join-timeout
    #: escalations), as opposed to exiting on their own.
    workers_killed: int = 0
    #: Worker processes that outlived the post-run join grace and had
    #: to be SIGKILLed to avoid a process leak.
    join_timeouts: int = 0
    #: Shm frames that failed their CRC or sequence check.
    ring_corruptions: int = 0
    #: Runs whose transport was degraded shm -> pipe after the per-pair
    #: ring circuit breaker tripped.
    transport_degradations: int = 0
    #: Distributed runs that exhausted their restart budget and fell
    #: back to the serial engine as the last-resort degraded mode.
    serial_fallbacks: int = 0


# -- the injector --------------------------------------------------------


class _ArmedSpec:
    """Bookkeeping for one spec while its plan is live."""

    __slots__ = ("spec", "remaining")

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.remaining = spec.times


class FaultInjector:
    """Executes a :class:`FaultPlan` at the manager's injection points.

    The injector owns the plan's seeded RNG and an append-only event
    log of deterministic strings; two runs with the same plan produce
    byte-identical logs.  Verb-boundary faults are raised from
    :meth:`fire`; mid-run faults are armed onto the orchestrator's
    ``fault_hook`` via :meth:`arm`.
    """

    def __init__(self, plan: FaultPlan,
                 stats: Optional[ResilienceStats] = None) -> None:
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.stats = stats if stats is not None else ResilienceStats()
        self.log: List[str] = []
        self._armed_specs = [_ArmedSpec(spec) for spec in plan.specs]
        self._simulation: Optional[Any] = None

    # -- introspection ---------------------------------------------------

    @property
    def exhausted(self) -> bool:
        """True once every planned fault has fired."""
        return all(entry.remaining == 0 for entry in self._armed_specs)

    def pending(self, point: Optional[str] = None) -> List[FaultSpec]:
        """Specs with firings left, optionally filtered by point."""
        return [
            entry.spec
            for entry in self._armed_specs
            if entry.remaining > 0
            and (point is None or entry.spec.point == point)
        ]

    def log_text(self) -> str:
        """The run log as one deterministic byte string."""
        return "\n".join(self.log) + ("\n" if self.log else "")

    # -- verb-boundary injection ----------------------------------------

    def fire(self, point: str, target: Optional[str] = None) -> None:
        """Raise the next armed fault for this point/target, if any."""
        for entry in self._armed_specs:
            spec = entry.spec
            if entry.remaining == 0 or spec.point != point:
                continue
            if spec.kind in MID_RUN_KINDS:
                continue
            if spec.target is not None and target is not None \
                    and spec.target != target:
                continue
            if spec.probability < 1.0 \
                    and self.rng.random() >= spec.probability:
                continue
            entry.remaining -= 1
            victim = target if spec.target is None else spec.target
            self._record(point, spec, victim)
            exc_type = _EXCEPTION_FOR_KIND[spec.kind]
            raise exc_type(
                f"injected {spec.kind.value} fault at {point}"
                + (f" on {victim}" if victim else ""),
                kind=spec.kind,
                target=victim,
            )

    # -- mid-run injection ----------------------------------------------

    def arm(self, simulation: Any) -> None:
        """Install this injector as the simulation's fault hook.

        Idempotent; clears the hook once every mid-run fault has fired
        so the orchestrator returns to the unhooked fast path.
        """
        self._simulation = simulation
        if any(
            entry.remaining > 0 and entry.spec.kind in MID_RUN_KINDS
            for entry in self._armed_specs
        ):
            simulation.fault_hook = self._hook
        else:
            simulation.fault_hook = None

    def _hook(self, cycle: int, model: Optional[Any]) -> None:
        for entry in self._armed_specs:
            spec = entry.spec
            if entry.remaining == 0 or spec.kind not in MID_RUN_KINDS:
                continue
            assert spec.at_cycle is not None
            if cycle < spec.at_cycle:
                continue
            if spec.after_model is not None:
                if model is None or model.name != spec.after_model:
                    continue
            elif model is not None:
                continue  # boundary-only spec; skip post-tick calls
            if spec.probability < 1.0 \
                    and self.rng.random() >= spec.probability:
                continue
            if spec.kind in _TRANSPORT_FAULT_KINDS:
                # These only make sense inside a dist worker; in a
                # serial run (or the wrong worker) the spec stays armed
                # so a later distributed phase can still fire it.
                self._fire_transport_fault(cycle, entry)
                continue
            entry.remaining -= 1
            if spec.kind is FaultKind.TOKEN_STALL:
                self._stall_link(cycle, spec)
                continue
            self._record("runworkload", spec, spec.target, cycle=cycle)
            if self.exhausted and self._simulation is not None:
                self._simulation.fault_hook = None
            raise ControllerCrash(
                f"injected controller-crash at cycle {cycle}"
                + (f" after {spec.after_model}" if spec.after_model else ""),
                kind=spec.kind,
                target=spec.target,
                at_cycle=cycle,
            )

    def consume_next_mid_run(self) -> Optional[FaultSpec]:
        """Mark the next pending mid-run fault as fired elsewhere.

        Distributed execution forks workers that inherit *copies* of
        this injector; a mid-run fault fires inside a worker process and
        never decrements the parent's counters.  After the resulting
        :class:`WorkerCrash`, the manager calls this so the resumed run
        does not re-inject the same fault forever.  Specs are consumed
        in plan order, matching the hook's firing order.
        """
        for entry in self._armed_specs:
            if entry.remaining > 0 and entry.spec.kind in MID_RUN_KINDS:
                entry.remaining -= 1
                self._record(
                    "runworkload", entry.spec, entry.spec.target,
                    cycle=entry.spec.at_cycle, note="fired in worker",
                )
                return entry.spec
        return None

    def _fire_transport_fault(self, cycle: int, entry: "_ArmedSpec") -> None:
        """Fire a worker-hang / ring-corrupt / wakeup-loss verb.

        Runs inside a forked dist worker, where :mod:`repro.dist.worker`
        publishes the process's worker id and outbound channels as
        module globals.  Outside a worker (serial run, or a worker that
        is not the spec's target) the spec is left armed untouched.
        """
        spec = entry.spec
        try:
            from repro.dist import worker as dist_worker
        except ImportError:  # pragma: no cover - dist always ships
            return
        worker_id = dist_worker._WORKER_ID
        if worker_id is None:
            return  # serial run: transport verbs have nothing to hit
        if spec.kind is FaultKind.WORKER_HANG:
            if spec.target is not None \
                    and spec.target != f"worker:{worker_id}":
                return
            entry.remaining -= 1
            self._record(
                "runworkload", spec, f"worker:{worker_id}", cycle=cycle,
                note="livelocking round loop",
            )
            while True:  # the supervisor's SIGKILL is the only way out
                time.sleep(60.0)
        # Ring verbs: find the victim send channel.  The spec target
        # names a directed ring ("ring:SRC->DST"); only the producing
        # worker arms the flag.
        channels = dist_worker._SEND_CHANNELS
        ring: Optional[Any] = None
        if spec.target is not None:
            try:
                src_text, dst_text = \
                    spec.target.split(":", 1)[1].split("->")
                src, dst = int(src_text), int(dst_text)
            except (IndexError, ValueError):
                raise ConfigError(
                    f"bad {spec.kind.value} target {spec.target!r}; "
                    f"expected 'ring:SRC->DST'"
                ) from None
            if src != worker_id:
                return  # some other worker produces that ring
            ring = channels.get(dst)
        else:
            for channel in sorted(channels):
                if hasattr(channels[channel], "corrupt_next_send"):
                    ring = channels[channel]
                    break
        entry.remaining -= 1
        if ring is None or not hasattr(ring, "corrupt_next_send"):
            # Pipe transport (or no outbound peer): nothing to corrupt.
            # Consume the spec so the plan still terminates, and log
            # the miss so chaos runs stay diagnosable.
            self._record(
                "runworkload", spec, spec.target, cycle=cycle,
                note="no shm ring on this worker; ignored",
            )
            return
        if spec.kind is FaultKind.RING_CORRUPT:
            ring.corrupt_next_send = True
            self._record(
                "runworkload", spec, f"ring:{ring.src}->{ring.dst}",
                cycle=cycle, note="bit-flip armed",
            )
        else:
            ring.drop_next_wakeup = True
            self._record(
                "runworkload", spec, f"ring:{ring.src}->{ring.dst}",
                cycle=cycle, note="wakeup drop armed",
            )

    def _stall_link(self, cycle: int, spec: FaultSpec) -> None:
        """Lose an in-flight batch on the target link (transport loss)."""
        simulation = self._simulation
        assert simulation is not None and spec.target is not None
        for link in simulation.links:
            if link.name == spec.target:
                lost = link.lose_in_flight("a_to_b")
                self.stats.stalls_detected += 1
                self._record(
                    "runworkload", spec, spec.target, cycle=cycle,
                    note=f"lost {lost} in-flight tokens",
                )
                return
        raise ConfigError(
            f"token-stall target link {spec.target!r} not found; links: "
            f"{[link.name for link in simulation.links][:8]}"
        )

    # -- logging ---------------------------------------------------------

    def _record(self, point: str, spec: FaultSpec,
                target: Optional[str], cycle: Optional[int] = None,
                note: Optional[str] = None) -> None:
        self.stats.faults_injected += 1
        parts = [f"inject {spec.kind.value} at {point}"]
        if target:
            parts.append(f"target={target}")
        if cycle is not None:
            parts.append(f"cycle={cycle}")
        if note:
            parts.append(note)
        self.log.append(
            f"[{self.stats.faults_injected:03d}] " + " ".join(parts)
        )
