"""Retry policies and the host circuit breaker.

Transient host faults (instance launch, AGFI build, heartbeat loss) are
retried under an exponential-backoff policy with *seeded* jitter: the
jitter draw comes from the caller's deterministic RNG, so a chaos run
retries on a byte-identical schedule every time.  Hosts that keep
failing trip a per-host circuit breaker; the manager quarantines them
and remaps their blades onto fresh instances via the mapper.

The reproduction never sleeps on the host — backoff delays are computed
and *recorded* (``faults.backoff_seconds``), the same way the cost model
records dollars without billing anyone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Set

from repro import ConfigError


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with seeded jitter and a retry budget.

    Attributes:
        max_retries: attempts after the first failure before giving up.
        base_delay_s: backoff before the first retry.
        multiplier: backoff growth factor per retry.
        max_delay_s: cap on any single backoff delay.
        jitter: fraction of the delay drawn uniformly at random and
            added, from the caller's seeded RNG (0 disables jitter).
    """

    max_retries: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 5.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ConfigError("backoff delays must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigError(
                f"backoff multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay_for(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry ``attempt`` (1-based), jittered via ``rng``."""
        if attempt < 1:
            raise ConfigError(f"attempt must be >= 1, got {attempt}")
        delay = min(
            self.base_delay_s * self.multiplier ** (attempt - 1),
            self.max_delay_s,
        )
        if self.jitter:
            delay += delay * self.jitter * rng.random()
        return delay

    def schedule(self, rng: random.Random) -> List[float]:
        """The full backoff schedule for a worst-case retry sequence."""
        return [
            self.delay_for(attempt, rng)
            for attempt in range(1, self.max_retries + 1)
        ]


class CircuitBreaker:
    """Quarantines hosts that fail repeatedly.

    Counts *consecutive* failures per host; at ``failure_threshold`` the
    host trips open (quarantined) and stays open — in FireSim terms the
    spot instance is abandoned and its simulated blades are remapped,
    because a flaky host would otherwise stall the whole token-coupled
    fleet at the rate of its slowest retries.
    """

    def __init__(self, failure_threshold: int = 3) -> None:
        if failure_threshold < 1:
            raise ConfigError(
                f"failure threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self._failures: Dict[str, int] = {}
        self.quarantined: Set[str] = set()

    def record_failure(self, host: str) -> bool:
        """Record one failure; returns True if the host just tripped."""
        if host in self.quarantined:
            return False
        count = self._failures.get(host, 0) + 1
        self._failures[host] = count
        if count >= self.failure_threshold:
            self.quarantined.add(host)
            return True
        return False

    def record_success(self, host: str) -> None:
        """A healthy interaction resets the host's consecutive count."""
        self._failures.pop(host, None)

    def is_quarantined(self, host: str) -> bool:
        return host in self.quarantined

    def failures(self, host: str) -> int:
        return self._failures.get(host, 0)
