"""Token-transport watchdog.

In a healthy token-coordinated simulation every link endpoint sits at a
fixed point between rounds: the consumer has drained exactly up to the
current cycle and exactly one link latency of tokens is in flight (the
``2l`` half of the paper's token-exactness invariant).  A transport hop
that loses a batch breaks that invariant *silently* — the run only dies
many cycles later when the consumer reaches the gap.  The watchdog
closes that window: scanned at quantum boundaries, it checks every
endpoint's occupancy and raises a :class:`TokenStarvationError` naming
the stalled endpoint the moment the invariant is violated, instead of
letting the fleet drift toward a distant deadlock.
"""

from __future__ import annotations

from repro.core.channel import Link, TokenStarvationError
from repro.core.simulation import Simulation


class TokenWatchdog:
    """Detects stalled token channels at quantum boundaries.

    Attach one per simulation and call :meth:`scan` between rounds (the
    manager's resilient workload loop does this at every checkpoint
    interval).  ``scans`` and ``stalls_detected`` count activity for the
    ``status`` verb.
    """

    def __init__(self) -> None:
        self.scans = 0
        self.stalls_detected = 0

    def scan(self, simulation: Simulation) -> None:
        """Verify every endpoint holds a full latency of in-flight tokens.

        Raises :class:`TokenStarvationError` naming the first stalled
        endpoint found.  Only meaningful at a quantum boundary (between
        rounds), where the in-flight count is invariant.
        """
        self.scans += 1
        cycle = simulation.current_cycle
        for link in simulation.links:
            if not link.primed:
                continue
            for direction, endpoint in (
                ("a_to_b", link.to_b), ("b_to_a", link.to_a)
            ):
                deficit = link.latency - endpoint.available_tokens
                if deficit > 0:
                    self.stalls_detected += 1
                    consumer = self._consumer_of(simulation, link, direction)
                    raise TokenStarvationError(
                        f"watchdog: link {link.name!r} ({direction}) holds "
                        f"{endpoint.available_tokens} of {link.latency} "
                        f"in-flight tokens at cycle {cycle}; consumer "
                        f"{consumer} will starve {deficit} token(s) short",
                        model_name=consumer.split(".")[0],
                        port=consumer.split(".")[-1] if "." in consumer else "",
                        link_name=link.name,
                        cycle=cycle,
                    )

    @staticmethod
    def _consumer_of(
        simulation: Simulation, link: Link, direction: str
    ) -> str:
        """Name the (model, port) that consumes one direction of a link."""
        want_side = "b" if direction == "a_to_b" else "a"
        for model in simulation.models:
            for port in model.ports:
                attachment = simulation._attachments.get((id(model), port))
                if (
                    attachment is not None
                    and attachment.link is link
                    and attachment.side == want_side
                ):
                    return f"{model.name}.{port}"
        return "<unattached>"
