"""EC2 F1 host platform: instances, FPGAs, costs, performance, energy, baselines."""
