"""Baseline simulators for the Section VII comparison.

The paper positions FireSim against three kinds of prior tools:

* **software full-system simulators scaled out** (dist-gem5): flexible
  but bottlenecked at 5-100 KIPS per simulated node (Section I);
* **relaxed-synchronization parallel simulators** (Graphite): as low as
  41x slowdown, but only by dropping cycle accuracy and OS support;
* **custom FPGA platforms** (DIABLO): fast, but ~$100K up-front hardware
  with abstract (hand-written) models rather than transformed RTL.

This module encodes those published envelopes, measures *this
reproduction's own* throughput (it is itself a software simulator, so it
slots into the same comparison), and produces the Section VII table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from repro.host.perfmodel import SimulationRateModel
from repro.manager.runfarm import RunFarmConfig, elaborate
from repro.manager.topology import single_rack
from repro.swmodel.apps.ping import make_ping_client


@dataclass(frozen=True)
class SimulatorEnvelope:
    """One simulator's published operating point.

    Attributes:
        name: tool name.
        node_rate_hz: simulated target cycles per host second per node
            (for CPU models, cycles ~ instructions at CPI ~ 1).
        cycle_exact: whether microarchitectural timing is exact.
        runs_full_os: boots an OS and runs unmodified software stacks.
        model_source: where the CPU model comes from.
        capex_usd: up-front hardware cost to deploy it.
    """

    name: str
    node_rate_hz: float
    cycle_exact: bool
    runs_full_os: bool
    model_source: str
    capex_usd: float

    def slowdown_vs(self, target_hz: float = 3.2e9) -> float:
        return target_hz / self.node_rate_hz


#: Published envelopes (Sections I and VII).
DIST_GEM5 = SimulatorEnvelope(
    name="dist-gem5",
    node_rate_hz=50e3,  # 5-100 KIPS; take the geometric middle
    cycle_exact=False,  # "notoriously difficult to validate"
    runs_full_os=True,
    model_source="abstract software models",
    capex_usd=0.0,
)

GRAPHITE = SimulatorEnvelope(
    name="Graphite",
    node_rate_hz=3.2e9 / 41,  # as low as 41x slowdown
    cycle_exact=False,  # relaxed synchronization, no OS
    runs_full_os=False,
    model_source="abstract software models",
    capex_usd=0.0,
)

DIABLO = SimulatorEnvelope(
    name="DIABLO",
    node_rate_hz=2.0e6,  # FPGA-hosted abstract models, few MHz
    cycle_exact=True,
    runs_full_os=True,
    model_source="hand-written abstract RTL",
    capex_usd=100_000.0,
)


def firesim_envelope(
    num_nodes: int = 1024, supernode: bool = True
) -> SimulatorEnvelope:
    """FireSim's operating point from the calibrated host model."""
    rate = SimulationRateModel().cluster_rate(num_nodes, 6400, supernode=supernode)
    return SimulatorEnvelope(
        name="FireSim",
        node_rate_hz=rate.rate_hz,
        cycle_exact=True,
        runs_full_os=True,
        model_source="FAME-1-transformed tapeout RTL",
        capex_usd=0.0,  # public cloud: no up-front hardware
    )


def measure_this_reproduction_rate(
    num_nodes: int = 4, target_cycles: int = 200_000
) -> SimulatorEnvelope:
    """Measure this Python reproduction's own node rate (it is a
    software simulator, so it belongs in the same table)."""
    sim = elaborate(single_rack(num_nodes), RunFarmConfig())
    target = sim.blade(1)
    sim.blade(0).spawn(
        "ping", make_ping_client(target.mac, count=3, interval_cycles=60_000)
    )
    start = time.perf_counter()
    sim.run_cycles(target_cycles)
    elapsed = time.perf_counter() - start
    return SimulatorEnvelope(
        name="this reproduction (Python, event-driven)",
        node_rate_hz=sim.simulation.current_cycle / elapsed,
        cycle_exact=True,
        runs_full_os=False,  # OS *model*, not a real kernel
        # The high apparent rate comes from event-skipping idle cycles —
        # timestamp-exact, but not pricing every target cycle's
        # microarchitectural state the way gem5 or the FPGA do.
        model_source="event-driven cycle-stamped Python models",
        capex_usd=0.0,
    )


def comparison_rows(
    include_measured: bool = True,
) -> List[SimulatorEnvelope]:
    """The Section VII comparison set, FireSim first."""
    rows = [firesim_envelope(), DIABLO, DIST_GEM5, GRAPHITE]
    if include_measured:
        rows.append(measure_this_reproduction_rate())
    return rows
