"""Deployment cost model (Sections II and V-C).

Computes per-hour simulation cost under the two EC2 pricing models the
paper uses (longest-stable spot, and on-demand), plus the retail value of
the FPGAs being harnessed.  For the 1024-node datacenter simulation
(32 f1.16xlarge + 5 m4.16xlarge) this reproduces the headline numbers:
~$100/hour spot, ~$440/hour on-demand, ~$12.8M of FPGAs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.host.instances import FPGA_RETAIL_PRICE, InstanceType, instance_type


@dataclass(frozen=True)
class CostReport:
    """Per-hour cost and FPGA value of a deployment."""

    instance_counts: Mapping[str, int]
    spot_per_hour: float
    on_demand_per_hour: float
    total_fpgas: int
    fpga_retail_value: float

    def __str__(self) -> str:
        lines = ["Deployment cost report:"]
        for name, count in sorted(self.instance_counts.items()):
            lines.append(f"  {count:4d} x {name}")
        lines.append(f"  spot:       ${self.spot_per_hour:,.2f}/hour")
        lines.append(f"  on-demand:  ${self.on_demand_per_hour:,.2f}/hour")
        lines.append(
            f"  harnessing {self.total_fpgas} FPGAs "
            f"(~${self.fpga_retail_value/1e6:.1f}M retail)"
        )
        return "\n".join(lines)


def cost_report(instance_counts: Mapping[str, int]) -> CostReport:
    """Price a deployment given ``{instance type name: count}``."""
    spot = 0.0
    on_demand = 0.0
    fpgas = 0
    for name, count in instance_counts.items():
        if count < 0:
            raise ValueError(f"negative count for {name}")
        itype = instance_type(name)
        spot += itype.price_spot * count
        on_demand += itype.price_on_demand * count
        fpgas += itype.fpgas * count
    return CostReport(
        instance_counts=dict(instance_counts),
        spot_per_hour=spot,
        on_demand_per_hour=on_demand,
        total_fpgas=fpgas,
        fpga_retail_value=fpgas * FPGA_RETAIL_PRICE,
    )


def simulation_cost(
    instance_counts: Mapping[str, int],
    hours: float,
    pricing: str = "spot",
) -> float:
    """Total cost of running a simulation for ``hours``."""
    if hours < 0:
        raise ValueError(f"hours must be >= 0, got {hours}")
    report = cost_report(instance_counts)
    if pricing == "spot":
        return report.spot_per_hour * hours
    if pricing == "on-demand":
        return report.on_demand_per_hour * hours
    raise ValueError(f"unknown pricing model {pricing!r}")
