"""Deployment cost model (Sections II and V-C).

Computes per-hour simulation cost under the two EC2 pricing models the
paper uses (longest-stable spot, and on-demand), plus the retail value of
the FPGAs being harnessed.  For the 1024-node datacenter simulation
(32 f1.16xlarge + 5 m4.16xlarge) this reproduces the headline numbers:
~$100/hour spot, ~$440/hour on-demand, ~$12.8M of FPGAs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping

from repro.host.instances import FPGA_RETAIL_PRICE, InstanceType, instance_type


@dataclass(frozen=True)
class CostReport:
    """Per-hour cost and FPGA value of a deployment."""

    instance_counts: Mapping[str, int]
    spot_per_hour: float
    on_demand_per_hour: float
    total_fpgas: int
    fpga_retail_value: float

    def __str__(self) -> str:
        lines = ["Deployment cost report:"]
        for name, count in sorted(self.instance_counts.items()):
            lines.append(f"  {count:4d} x {name}")
        lines.append(f"  spot:       ${self.spot_per_hour:,.2f}/hour")
        lines.append(f"  on-demand:  ${self.on_demand_per_hour:,.2f}/hour")
        lines.append(
            f"  harnessing {self.total_fpgas} FPGAs "
            f"(~${self.fpga_retail_value/1e6:.1f}M retail)"
        )
        return "\n".join(lines)


def cost_report(instance_counts: Mapping[str, int]) -> CostReport:
    """Price a deployment given ``{instance type name: count}``."""
    spot = 0.0
    on_demand = 0.0
    fpgas = 0
    for name, count in instance_counts.items():
        if count < 0:
            raise ValueError(f"negative count for {name}")
        itype = instance_type(name)
        spot += itype.price_spot * count
        on_demand += itype.price_on_demand * count
        fpgas += itype.fpgas * count
    return CostReport(
        instance_counts=dict(instance_counts),
        spot_per_hour=spot,
        on_demand_per_hour=on_demand,
        total_fpgas=fpgas,
        fpga_retail_value=fpgas * FPGA_RETAIL_PRICE,
    )


def simulation_cost(
    instance_counts: Mapping[str, int],
    hours: float,
    pricing: str = "spot",
) -> float:
    """Total cost of running a simulation for ``hours``."""
    if hours < 0:
        raise ValueError(f"hours must be >= 0, got {hours}")
    report = cost_report(instance_counts)
    if pricing == "spot":
        return report.spot_per_hour * hours
    if pricing == "on-demand":
        return report.on_demand_per_hour * hours
    raise ValueError(f"unknown pricing model {pricing!r}")


def pricing_for_job(preemptible: bool) -> str:
    """The cheapest pricing model a job's eviction tolerance allows.

    Section V-C's cost arithmetic has two columns because the two
    pricing models trade money for a revocation guarantee: spot
    capacity is ~4x cheaper but can be reclaimed by the market, so only
    jobs that tolerate preemption (the manager checkpoints and resumes
    them) may use it; a job that must not be evicted needs on-demand
    capacity.  The job server's cost optimizer maps ``preemptible``
    straight onto that choice.
    """
    return "spot" if preemptible else "on-demand"


def hourly_rate(instance_counts: Mapping[str, int], pricing: str) -> float:
    """$/hour for a fleet under one pricing model."""
    report = cost_report(instance_counts)
    if pricing == "spot":
        return report.spot_per_hour
    if pricing == "on-demand":
        return report.on_demand_per_hour
    raise ValueError(f"unknown pricing model {pricing!r}")


def job_cost_estimate(
    instance_counts: Mapping[str, int],
    hours: float,
    preemptible: bool,
) -> Dict[str, Any]:
    """Price one job for the scheduler: pricing choice, rate, total.

    Returns a JSON-ready dict so the job server can attach it to job
    records and the ``jobs`` CLI verb can print it:
    ``{"pricing", "hourly_rate", "estimated_cost", "savings_vs_on_demand"}``.
    ``savings_vs_on_demand`` is what choosing spot saved (0.0 for
    on-demand jobs) — the number the optimizer exists to maximize.
    """
    if hours < 0:
        raise ValueError(f"hours must be >= 0, got {hours}")
    pricing = pricing_for_job(preemptible)
    rate = hourly_rate(instance_counts, pricing)
    on_demand = hourly_rate(instance_counts, "on-demand")
    return {
        "pricing": pricing,
        "hourly_rate": rate,
        "estimated_cost": rate * hours,
        "savings_vs_on_demand": (on_demand - rate) * hours,
    }
