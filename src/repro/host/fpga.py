"""FPGA resource accounting and the "supernode" packing (Section III-A5).

The basic target design uses 32.6% of the FPGA's LUTs and one of four
memory channels; only 14.4% of the FPGA is the custom server-blade RTL
(the rest is the shell, DRAM model, and simulation endpoints).  The
supernode configuration packs four simulated nodes per FPGA, raising
blade LUT utilization to ~57.7% and total utilization to ~76%, quartering
the cost of large simulations at the price of multiplexing four nodes'
token traffic over one PCIe link.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Xilinx Virtex UltraScale+ VU9P logic capacity.
VU9P_LUTS = 1_181_768

#: Fractions measured in Section III-A5.
SHELL_AND_SUPPORT_FRACTION = 0.182  # shell + DRAM model + endpoints
BLADE_RTL_FRACTION = 0.144  # one server blade's RTL

#: F1 FPGA boards carry 64 GB of DRAM over 4 channels.
FPGA_DRAM_CHANNELS = 4
FPGA_DRAM_GB = 64


@dataclass(frozen=True)
class FPGAConfig:
    """How one FPGA is populated with simulated nodes."""

    blades_per_fpga: int = 1

    def __post_init__(self) -> None:
        if not 1 <= self.blades_per_fpga <= FPGA_DRAM_CHANNELS:
            raise ValueError(
                "each simulated node needs its own FPGA DRAM channel: "
                f"1..{FPGA_DRAM_CHANNELS} blades per FPGA, got "
                f"{self.blades_per_fpga}"
            )

    @property
    def is_supernode(self) -> bool:
        return self.blades_per_fpga > 1

    @property
    def blade_lut_fraction(self) -> float:
        """LUT fraction consumed by server-blade RTL alone."""
        return BLADE_RTL_FRACTION * self.blades_per_fpga

    @property
    def total_lut_fraction(self) -> float:
        """Total FPGA LUT utilization including shell and support logic."""
        return SHELL_AND_SUPPORT_FRACTION + self.blade_lut_fraction

    @property
    def luts_used(self) -> int:
        return round(self.total_lut_fraction * VU9P_LUTS)

    @property
    def dram_channels_used(self) -> int:
        return self.blades_per_fpga

    def validate_fits(self) -> None:
        """Raise if the configuration exceeds the FPGA's resources."""
        if self.total_lut_fraction > 1.0:
            raise ValueError(
                f"{self.blades_per_fpga} blades need "
                f"{self.total_lut_fraction:.1%} of the FPGA's LUTs"
            )


#: The paper's two configurations.
STANDARD_FPGA = FPGAConfig(blades_per_fpga=1)
SUPERNODE_FPGA = FPGAConfig(blades_per_fpga=4)
