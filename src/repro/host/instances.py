"""EC2 instance types used by FireSim deployments (Section II).

FireSim uses ``f1.2xlarge``/``f1.16xlarge`` (FPGA hosts for simulated
server blades + their ToR switch models) and ``m4.16xlarge`` ("standard"
instances with 25 Gbit/s networking for aggregation and root switch
models).  Prices are the public EC2 figures the paper's cost arithmetic
is based on: the 1024-node simulation costs ~$100/hour at longest-stable
spot prices and ~$440/hour on-demand (Section V-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping


@dataclass(frozen=True)
class InstanceType:
    """One EC2 instance type's shape and pricing.

    Attributes:
        name: EC2 API name.
        vcpus / dram_gb / network_gbps: host resources (Section II).
        fpgas: Xilinx VU9P FPGAs attached over PCIe.
        fpga_dram_gb: DRAM on each FPGA board (64 GB across 4 channels).
        price_on_demand / price_spot: $/hour (spot = longest stable
        recent price, the paper's methodology).
    """

    name: str
    vcpus: int
    dram_gb: int
    network_gbps: float
    fpgas: int
    fpga_dram_gb: int
    price_on_demand: float
    price_spot: float

    def __post_init__(self) -> None:
        if self.vcpus < 1 or self.dram_gb < 1:
            raise ValueError(f"implausible instance shape for {self.name}")
        if self.price_spot > self.price_on_demand:
            raise ValueError(
                f"{self.name}: spot price above on-demand is not stable"
            )


F1_2XLARGE = InstanceType(
    name="f1.2xlarge",
    vcpus=8,
    dram_gb=122,
    network_gbps=10.0,
    fpgas=1,
    fpga_dram_gb=64,
    price_on_demand=1.65,
    price_spot=0.55,
)

F1_16XLARGE = InstanceType(
    name="f1.16xlarge",
    vcpus=64,
    dram_gb=976,
    network_gbps=25.0,
    fpgas=8,
    fpga_dram_gb=64,
    price_on_demand=13.20,
    price_spot=3.00,
)

M4_16XLARGE = InstanceType(
    name="m4.16xlarge",
    vcpus=64,
    dram_gb=256,
    network_gbps=25.0,
    fpgas=0,
    fpga_dram_gb=0,
    price_on_demand=3.20,
    price_spot=0.80,
)

INSTANCE_TYPES: Dict[str, InstanceType] = {
    t.name: t for t in (F1_2XLARGE, F1_16XLARGE, M4_16XLARGE)
}

#: Publicly listed retail price of one VU9P-class FPGA (Section V-C uses
#: ~$50K each to arrive at the "$12.8M worth of FPGAs" figure).
FPGA_RETAIL_PRICE = 50_000.0


def instance_type(name: str) -> InstanceType:
    try:
        return INSTANCE_TYPES[name]
    except KeyError:
        raise ValueError(
            f"unknown instance type {name!r}; known: {sorted(INSTANCE_TYPES)}"
        ) from None


def fpga_slot_capacity(
    instance_counts: Mapping[str, int], blades_per_fpga: int = 1
) -> int:
    """Simulated-blade slots a fleet offers (the run-farm capacity unit).

    Each FPGA hosts ``blades_per_fpga`` simulated server blades (1
    standard, up to 4 with supernode packing), so a fleet of
    ``{instance type name: count}`` provides ``sum(fpgas) *
    blades_per_fpga`` schedulable blade slots.  The job scheduler
    (:mod:`repro.serve`) allocates against this number and must never
    exceed it — an oversubscribed FPGA slot has no physical meaning.
    """
    if blades_per_fpga < 1:
        raise ValueError(
            f"blades_per_fpga must be >= 1, got {blades_per_fpga}"
        )
    fpgas = 0
    for name, count in instance_counts.items():
        if count < 0:
            raise ValueError(f"negative count for {name}")
        fpgas += instance_type(name).fpgas * count
    return fpgas * blades_per_fpga
