"""Host performance model: simulation rate vs scale and batch size.

Without an F1 fleet we cannot *measure* wall-clock simulation rate, so —
per the substitution rules in DESIGN.md — this module models it.  The
model follows the structure of the distributed simulation (Section
III-B2):

* simulation advances in rounds of one link latency ``l`` (FireSim
  always sets the token batch size to the target link latency);
* because exactly ``l`` tokens are in flight per link direction, batch
  production and consumption alternate: a round's wall-clock time is the
  *serial chain* of moving one batch through the platform — FPGA
  computes ``l`` target cycles, PCIe/EDMA moves the batch out and back
  (x4 payload for supernodes), shared memory hops to the local switch,
  the switch ticks ``l`` tokens per port (OpenMP-parallel across ports
  up to the host's thread budget, plus per-port sync), and inter-host
  switch links add TCP socket hops;
* simulation rate is ``l / round_time``, capped by the FPGA simulation
  clock.

This reproduces the paper's two shapes: rate falls with scale (bigger
switches, host-Ethernet crossings — Figure 8) and rises with target link
latency as fixed per-round costs amortize over bigger batches, then
saturates (Figure 9).  Token movement is workload-independent because
FireSim does not compress empty tokens (Section V-A).

Calibration anchor: the 1024-node supernode datacenter simulates at
3.42 MHz (Section V-C); purely functional network simulation runs nodes
at 150+ MHz (Section VII).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.clock import DEFAULT_CLOCK, TargetClock
from repro.net.transport import (
    PCIE_EDMA,
    SHM,
    TCP_SOCKET,
    TransportSpec,
    tokens_to_bytes,
)


@dataclass(frozen=True)
class HostPerfConfig:
    """Calibration constants for the host platform.

    Attributes:
        fpga_sim_hz: maximum simulation clock of one FAME-1 node on the
            FPGA ("10s to 100s of MHz", Section I).
        functional_sim_hz: node rate with purely functional network
            simulation (Section VII: 150+ MHz).
        switch_token_ns: host-CPU time to tick one token through one
            switch port in the C++ model.
        switch_threads: host threads available to one switch model's
            OpenMP port loops.
        port_sync_us: per-port per-round thread coordination cost.
        pcie / shm / socket: transport envelopes (Section III-B2).
    """

    fpga_sim_hz: float = 40e6
    functional_sim_hz: float = 150e6
    switch_token_ns: float = 30.0
    switch_threads: int = 16
    port_sync_us: float = 29.5
    pcie: TransportSpec = PCIE_EDMA
    shm: TransportSpec = SHM
    socket: TransportSpec = TCP_SOCKET


@dataclass(frozen=True)
class SwitchPlacement:
    """One switch model's share of the host platform.

    Attributes:
        ports: total ports on the switch.
        ports_over_socket: how many ports reach their peer over host
            Ethernet (TCP) rather than shared memory/PCIe.
    """

    ports: int
    ports_over_socket: int = 0

    def __post_init__(self) -> None:
        if self.ports < 1:
            raise ValueError("switch needs at least one port")
        if not 0 <= self.ports_over_socket <= self.ports:
            raise ValueError("socket port count out of range")


@dataclass(frozen=True)
class RateEstimate:
    """Predicted simulation rate and its bottleneck."""

    rate_hz: float
    bottleneck: str
    stage_times_s: Dict[str, float]

    @property
    def rate_mhz(self) -> float:
        return self.rate_hz / 1e6

    def slowdown_vs_target(self, target_hz: float) -> float:
        """How many times slower than the target machine (e.g. 3.2 GHz)."""
        return target_hz / self.rate_hz

    def prediction_error(self, measured_hz: float) -> float:
        """Signed relative error of this prediction vs a measured rate.

        ``measured_hz`` typically comes from a live
        :class:`repro.obs.rate.RateMonitor` report; positive means the
        model over-predicted.
        """
        if measured_hz <= 0.0:
            raise ValueError("measured rate must be positive")
        return (self.rate_hz - measured_hz) / measured_hz


class SimulationRateModel:
    """Analytic round-time model of the distributed token simulation."""

    def __init__(
        self,
        config: Optional[HostPerfConfig] = None,
        clock: TargetClock = DEFAULT_CLOCK,
    ) -> None:
        self.config = config or HostPerfConfig()
        self.clock = clock

    # -- core ----------------------------------------------------------

    def _switch_chain_s(self, l: int, placement: SwitchPlacement) -> float:
        """One switch's share of the round: port ticking + socket hops."""
        cfg = self.config
        parallelism = min(placement.ports, cfg.switch_threads)
        tick = l * placement.ports * cfg.switch_token_ns * 1e-9 / parallelism
        sync = placement.ports * cfg.port_sync_us * 1e-6
        chain = tick + sync
        if placement.ports_over_socket:
            batch_bytes = tokens_to_bytes(l)
            chain += 2 * cfg.socket.batch_move_time_s(
                batch_bytes * placement.ports_over_socket
            )
        return chain

    def estimate(
        self,
        link_latency_cycles: int,
        switches: Sequence[SwitchPlacement],
        blades_per_fpga: int = 1,
        functional_network: bool = False,
    ) -> RateEstimate:
        """Steady-state simulation rate for one mapped target design."""
        if link_latency_cycles < 1:
            raise ValueError("link latency must be >= 1 cycle")
        cfg = self.config
        l = link_latency_cycles
        if functional_network:
            # Functional mode skips per-cycle token exchange entirely.
            return RateEstimate(
                rate_hz=cfg.functional_sim_hz,
                bottleneck="fpga",
                stage_times_s={"fpga": l / cfg.functional_sim_hz},
            )
        batch_bytes = tokens_to_bytes(l)
        stages: Dict[str, float] = {
            "fpga": l / cfg.fpga_sim_hz,
            "pcie": 2 * cfg.pcie.batch_move_time_s(batch_bytes * blades_per_fpga),
            "shm": 2 * cfg.shm.batch_move_time_s(batch_bytes),
        }
        if switches:
            chains = {
                f"switch{i}": self._switch_chain_s(l, p)
                for i, p in enumerate(switches)
            }
            worst = max(chains, key=lambda k: chains[k])
            stages[worst] = chains[worst]
        round_time = sum(stages.values())
        bottleneck = max(stages, key=lambda k: stages[k])
        rate = min(l / round_time, cfg.fpga_sim_hz)
        return RateEstimate(
            rate_hz=rate, bottleneck=bottleneck, stage_times_s=stages
        )

    # -- convenience topologies ---------------------------------------

    def cluster_rate(
        self,
        num_nodes: int,
        link_latency_cycles: int = 6400,
        supernode: bool = False,
        functional_network: bool = False,
    ) -> RateEstimate:
        """Rate for a cluster mapped the way the manager maps it.

        Nodes fill racks of one f1.16xlarge each (8 nodes standard, 32
        supernode) with the ToR model on the rack's host; racks beyond
        eight per aggregation group add aggregation switches, and
        multiple groups add a root switch, all on m4 hosts (Figure 10).
        """
        if num_nodes < 1:
            raise ValueError("need at least one node")
        blades = 4 if supernode else 1
        per_rack = 8 * blades
        racks = -(-num_nodes // per_rack)
        switches: List[SwitchPlacement] = []
        if num_nodes == 1:
            # A single node has no network simulation at all: the rate is
            # FPGA- and PCIe-bound ("10s to 100s of MHz").
            pass
        elif racks == 1:
            switches.append(SwitchPlacement(ports=min(num_nodes, per_rack)))
        else:
            agg_groups = -(-racks // 8)
            for _ in range(racks):
                switches.append(
                    SwitchPlacement(ports=per_rack + 1, ports_over_socket=1)
                )
            if agg_groups == 1:
                switches.append(
                    SwitchPlacement(ports=racks, ports_over_socket=racks)
                )
            else:
                for _ in range(agg_groups):
                    switches.append(
                        SwitchPlacement(ports=8 + 1, ports_over_socket=9)
                    )
                switches.append(
                    SwitchPlacement(
                        ports=agg_groups, ports_over_socket=agg_groups
                    )
                )
        return self.estimate(
            link_latency_cycles,
            switches,
            blades_per_fpga=blades,
            functional_network=functional_network,
        )

    def datacenter_rate(
        self,
        num_racks: int = 32,
        nodes_per_rack: int = 32,
        racks_per_aggregation: int = 8,
        link_latency_cycles: int = 6400,
        supernode: bool = True,
    ) -> RateEstimate:
        """Rate for the Figure 10 tree (ToR / aggregation / root)."""
        if num_racks % racks_per_aggregation != 0:
            raise ValueError("racks must divide evenly into agg switches")
        num_agg = num_racks // racks_per_aggregation
        switches: List[SwitchPlacement] = []
        for _ in range(num_racks):
            switches.append(
                SwitchPlacement(ports=nodes_per_rack + 1, ports_over_socket=1)
            )
        for _ in range(num_agg):
            switches.append(
                SwitchPlacement(
                    ports=racks_per_aggregation + 1,
                    ports_over_socket=racks_per_aggregation + 1,
                )
            )
        switches.append(
            SwitchPlacement(ports=num_agg, ports_over_socket=num_agg)
        )
        return self.estimate(
            link_latency_cycles,
            switches,
            blades_per_fpga=4 if supernode else 1,
        )


def exchange_quantum(
    latency_floor: Optional[int], quantum: int
) -> int:
    """Largest exchange window the token protocol permits, in cycles.

    The distributed engine exchanges boundary tokens every
    ``round_quantum`` cycles; correctness requires that window to stay
    within the partition's boundary link-latency floor (link priming
    keeps exactly ``latency`` tokens in flight per direction, so a
    worker may run at most that far ahead of an unheard-from peer).
    Figure 9's lever is maximizing the batch under that cap: this
    returns the largest multiple of ``quantum`` that fits under
    ``latency_floor``, or ``quantum`` itself when there is no floor
    (no boundaries) or no headroom.
    """
    if quantum < 1:
        raise ValueError(f"quantum must be positive, got {quantum}")
    if latency_floor is None or latency_floor <= quantum:
        return quantum
    return (latency_floor // quantum) * quantum
