"""Strober-style sample-based power/energy estimation.

FireSim's FAME-1 machinery comes from the MIDAS/Strober frameworks [30,
31]; Strober's contribution is *sample-based energy simulation*: rather
than computing power every cycle, it snapshots activity at sampled
intervals and replays them against a power model, giving accurate energy
numbers with tiny overhead.

This module reproduces that methodology against the reproduction's
activity counters:

* an :class:`ActivitySample` captures the deltas of a blade's
  architectural activity counters (committed instructions, cache
  accesses/misses, DRAM bursts, NIC flits) over a sampling window;
* a :class:`PowerModel` prices each activity class in energy-per-event
  (derived from published per-op energies for a ~16 nm server-class SoC)
  plus static leakage;
* :class:`StroberSampler` draws samples from a live blade at a
  configurable interval and integrates them into average power and total
  energy.

As with Strober, accuracy comes from sampling coverage, not from pricing
every cycle — the property tests check the estimate converges to the
exhaustive integral as the sampling interval shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.swmodel.server import ServerBlade


@dataclass(frozen=True)
class PowerModel:
    """Energy-per-event and leakage for one blade.

    Rough 16 nm-class numbers: ~20 pJ per committed instruction path,
    ~30 pJ per L1, ~120 pJ per L2 access, ~15 nJ per DRAM burst,
    ~5 pJ/bit on the NIC SerDes, and a 1.2 W static floor.
    """

    instruction_pj: float = 20.0
    l1_access_pj: float = 30.0
    l2_access_pj: float = 120.0
    dram_burst_pj: float = 15_000.0
    nic_flit_pj: float = 320.0  # 64 bits x 5 pJ/bit
    static_watts: float = 1.2
    freq_hz: float = 3.2e9

    def sample_energy_j(self, sample: "ActivitySample") -> float:
        """Dynamic + static energy of one sampling window."""
        dynamic_pj = (
            sample.instructions * self.instruction_pj
            + sample.l1_accesses * self.l1_access_pj
            + sample.l2_accesses * self.l2_access_pj
            + sample.dram_bursts * self.dram_burst_pj
            + sample.nic_flits * self.nic_flit_pj
        )
        window_seconds = sample.cycles / self.freq_hz
        return dynamic_pj * 1e-12 + self.static_watts * window_seconds


@dataclass
class ActivitySample:
    """Activity deltas over one sampling window."""

    start_cycle: int
    cycles: int
    instructions: int
    l1_accesses: int
    l2_accesses: int
    dram_bursts: int
    nic_flits: int


@dataclass
class EnergyReport:
    """Integrated estimate over a run."""

    total_energy_j: float
    total_cycles: int
    freq_hz: float
    samples: int

    @property
    def average_power_w(self) -> float:
        seconds = self.total_cycles / self.freq_hz
        return self.total_energy_j / seconds if seconds > 0 else 0.0


def _read_counters(blade: ServerBlade) -> dict:
    soc = blade.soc
    # Committed work comes from two places: blocks priced through the
    # core timing models, and scheduler-charged CPU time from the OS
    # model's threads/softirq (CPI ~ 1 on the single-issue Rocket).
    thread_cycles = sum(
        t.cpu_cycles for t in blade.kernel.scheduler.threads
    )
    return {
        "instructions": sum(c.stats.instructions for c in soc.cores)
        + thread_cycles,
        "l1_accesses": sum(l1.stats.accesses for l1 in soc.l1ds),
        "l2_accesses": soc.l2.stats.accesses,
        "dram_bursts": soc.dram.stats.reads + soc.dram.stats.writes,
        "nic_flits": (blade.nic.stats.tx_bytes + blade.nic.stats.rx_bytes)
        // 8,
    }


class StroberSampler:
    """Samples one blade's activity counters as target time advances.

    The driver calls :meth:`sample` at (or past) each sampling boundary —
    typically from the experiment loop between ``run_cycles`` calls —
    and :meth:`report` integrates the collected windows.
    """

    def __init__(
        self,
        blade: ServerBlade,
        power_model: Optional[PowerModel] = None,
        interval_cycles: int = 1_000_000,
    ) -> None:
        if interval_cycles < 1:
            raise ValueError("sampling interval must be >= 1 cycle")
        self.blade = blade
        self.power_model = power_model or PowerModel(
            freq_hz=blade.config.freq_hz
        )
        self.interval_cycles = interval_cycles
        self.samples: List[ActivitySample] = []
        self._last_cycle = 0
        self._last_counters = _read_counters(blade)

    def sample(self, cycle: int) -> Optional[ActivitySample]:
        """Snapshot counter deltas since the last sample.

        Returns None (and records nothing) if called before a full
        interval has elapsed — callers can invoke it opportunistically.
        """
        if cycle - self._last_cycle < self.interval_cycles:
            return None
        counters = _read_counters(self.blade)
        sample = ActivitySample(
            start_cycle=self._last_cycle,
            cycles=cycle - self._last_cycle,
            instructions=counters["instructions"]
            - self._last_counters["instructions"],
            l1_accesses=counters["l1_accesses"]
            - self._last_counters["l1_accesses"],
            l2_accesses=counters["l2_accesses"]
            - self._last_counters["l2_accesses"],
            dram_bursts=counters["dram_bursts"]
            - self._last_counters["dram_bursts"],
            nic_flits=counters["nic_flits"] - self._last_counters["nic_flits"],
        )
        self.samples.append(sample)
        self._last_cycle = cycle
        self._last_counters = counters
        return sample

    def report(self) -> EnergyReport:
        total = sum(
            self.power_model.sample_energy_j(sample) for sample in self.samples
        )
        cycles = sum(sample.cycles for sample in self.samples)
        return EnergyReport(
            total_energy_j=total,
            total_cycles=cycles,
            freq_hz=self.power_model.freq_hz,
            samples=len(self.samples),
        )

    def register_metrics(self, registry, prefix: Optional[str] = None) -> None:
        """Expose the live energy estimate through callback gauges.

        Registered under ``strober.<blade>.*`` by default; values track
        :meth:`report` as more samples arrive.
        """
        prefix = prefix or f"strober.{self.blade.name}"
        registry.gauge(f"{prefix}.samples", lambda: float(len(self.samples)))
        registry.gauge(
            f"{prefix}.total_energy_j", lambda: self.report().total_energy_j
        )
        registry.gauge(
            f"{prefix}.average_power_w", lambda: self.report().average_power_w
        )
