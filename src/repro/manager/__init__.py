"""Simulation manager: topology DSL, mapping, build/run farms, workloads, CLI."""
