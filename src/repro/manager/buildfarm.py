"""FPGA build farm model (Sections II and III-B3).

FireSim parallelizes FPGA synthesis/place-and-route across an elastic
fleet of "FPGA Developer AMI" instances: one build per distinct server
configuration, results registered as Amazon FPGA Images (AGFIs) and
cached.  Only RTL changes require rebuilding — network latency,
bandwidth, topology, and blade selection are runtime configuration.

This module models that workflow: deterministic AGFI identifiers derived
from the blade configuration hash, a build-time model, a farm scheduler
that computes the makespan for a set of configurations, and a cache so
repeated deployments of the same configurations are free.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.tile.soc import RocketChipConfig, config_by_name


def config_fingerprint(config: RocketChipConfig) -> str:
    """Stable hash of everything that affects the generated RTL."""
    text = "|".join(
        str(part)
        for part in (
            config.name,
            config.num_cores,
            config.freq_hz,
            config.l1i,
            config.l1d,
            config.l2,
            config.nic_bandwidth_bps,
            tuple(config.accelerators),
        )
    )
    return hashlib.sha256(text.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class BuildResult:
    """One completed FPGA build."""

    config_name: str
    agfi: str
    build_hours: float
    from_cache: bool


@dataclass
class BuildFarmConfig:
    """Build-farm shape and timing.

    Attributes:
        num_build_instances: parallel synthesis machines (elastic — the
            cloud removes the license/build-server cap of private farms).
        hours_per_build: wall-clock for one synthesis + P&R run.
    """

    num_build_instances: int = 4
    hours_per_build: float = 8.0

    def __post_init__(self) -> None:
        if self.num_build_instances < 1:
            raise ValueError("need at least one build instance")
        if self.hours_per_build <= 0:
            raise ValueError("builds take positive time")


class BuildFarm:
    """Schedules and caches FPGA image builds."""

    def __init__(self, config: BuildFarmConfig | None = None) -> None:
        self.config = config or BuildFarmConfig()
        self._agfi_cache: Dict[str, str] = {}
        self.builds_run = 0

    def build_all(
        self, config_names: Sequence[str]
    ) -> Tuple[List[BuildResult], float]:
        """Build AGFIs for the given blade configurations.

        Returns the per-config results and the farm makespan in hours
        (cached configurations cost nothing; distinct uncached configs
        run in parallel across the build instances).
        """
        results: List[BuildResult] = []
        uncached = 0
        seen: set[str] = set()
        for name in config_names:
            if name in seen:
                continue
            seen.add(name)
            blade = config_by_name(name)
            fingerprint = config_fingerprint(blade)
            cached = fingerprint in self._agfi_cache
            if not cached:
                self._agfi_cache[fingerprint] = f"agfi-{fingerprint}"
                self.builds_run += 1
                uncached += 1
            results.append(
                BuildResult(
                    config_name=name,
                    agfi=self._agfi_cache[fingerprint],
                    build_hours=0.0 if cached else self.config.hours_per_build,
                    from_cache=cached,
                )
            )
        waves = -(-uncached // self.config.num_build_instances) if uncached else 0
        makespan = waves * self.config.hours_per_build
        return results, makespan

    def agfi_for(self, config_name: str) -> str:
        """Look up (building if needed) the AGFI for one configuration."""
        results, _ = self.build_all([config_name])
        return results[0].agfi
