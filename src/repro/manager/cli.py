"""Command-line interface mirroring the FireSim manager's verbs.

The real FireSim ships a ``firesim`` command whose lifecycle verbs
(``buildafi``, ``launchrunfarm``, ``infrasetup``, ``runworkload``,
``terminaterunfarm``) drive everything from FPGA builds to result
collection (Section III-B3).  This module provides the same UX over the
reproduction::

    python -m repro.manager.cli --topology two_tier --racks 8 \
        --servers-per-rack 8 buildafi launchrunfarm infrasetup \
        runworkload --workload ping --duration-ms 4

Verbs run left to right against one manager instance, so a full
build-deploy-run-collect session is a single invocation.

Observability:

* ``status`` (a verb, usually placed after ``runworkload``) prints the
  *measured* simulation rate and per-model host-time profile from the
  live :class:`~repro.obs.rate.RateMonitor`, next to the perf model's
  prediction;
* ``--telemetry-out DIR`` dumps ``metrics.json``/``metrics.csv`` and a
  Chrome ``trace.json`` (open in ``chrome://tracing`` or Perfetto)
  after the verbs complete;
* ``profile`` (a verb after a ``--workers N`` ``runworkload``) turns on
  the distributed round-phase profiler and prints per-worker phase
  attribution plus critical-path analysis; ``--profile-out DIR`` dumps
  the telemetry artifacts *plus* ``phase_report.json`` and the merged
  multi-process trace;
* ``--json`` replaces the free-form text with one machine-parseable
  JSON object on stdout — ``{"verbs": {<verb>: <summary>, ...}}`` —
  for scripting runs.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro import ConfigError, ReproError
from repro.experiments.common import cycles_to_us
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.manager.manager import FireSimManager
from repro.manager.mapper import HostConfig, SUPERNODE_HOST
from repro.manager.runfarm import RunFarmConfig
from repro.manager.topology import (
    SwitchNode,
    datacenter_tree,
    single_rack,
    two_tier,
)
from repro.manager.workload import WorkloadSpec
from repro.swmodel.apps.boot import make_linux_boot
from repro.swmodel.apps.ping import RESULT_KEY as PING_KEY
from repro.swmodel.apps.ping import make_ping_client

VERBS = (
    "buildafi",
    "launchrunfarm",
    "infrasetup",
    "runworkload",
    "status",
    "profile",
    "terminaterunfarm",
)

#: Service verbs (:mod:`repro.serve`): ``serve`` runs the job server in
#: the foreground; the rest talk to it over ``--serve-socket``.  They
#: cannot be mixed with the lifecycle verbs above — a service session
#: and a batch session are different things.
SERVE_VERBS = ("serve", "submit", "jobs", "cancel")


def build_topology(args: argparse.Namespace) -> SwitchNode:
    if args.topology == "single_rack":
        return single_rack(args.servers_per_rack, args.server_type)
    if args.topology == "two_tier":
        return two_tier(args.racks, args.servers_per_rack, args.server_type)
    if args.topology == "datacenter":
        return datacenter_tree(servers_per_rack=args.servers_per_rack)
    raise ConfigError(f"unknown topology {args.topology!r}")


def build_workload(args: argparse.Namespace, manager: FireSimManager) -> WorkloadSpec:
    duration = args.duration_ms / 1000.0
    workload = WorkloadSpec(args.workload, duration_seconds=duration)
    assert manager.running is not None
    if args.workload == "ping":
        target = manager.running.blade(1)
        workload.add_job(
            0,
            "ping",
            lambda blade: blade.spawn(
                "ping",
                make_ping_client(target.mac, count=args.ping_count,
                                 interval_cycles=200_000),
            ),
        )
    elif args.workload == "boot":
        for index in sorted(manager.running.blades):
            workload.add_job(
                index,
                f"boot{index}",
                lambda blade: blade.spawn("init", make_linux_boot()),
            )
    else:
        raise ConfigError(f"unknown workload {args.workload!r}")
    return workload


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="firesim",
        description="FireSim reproduction manager",
    )
    parser.add_argument("verbs", nargs="+", choices=VERBS + SERVE_VERBS,
                        metavar="verb",
                        help=f"lifecycle verbs, in order: {', '.join(VERBS)}; "
                             f"or service verbs: {', '.join(SERVE_VERBS)}")
    parser.add_argument("--topology", default="single_rack",
                        choices=("single_rack", "two_tier", "datacenter"))
    parser.add_argument("--racks", type=int, default=2)
    parser.add_argument("--servers-per-rack", type=int, default=4)
    parser.add_argument("--server-type", default="QuadCore")
    parser.add_argument("--link-latency-us", type=float, default=2.0)
    parser.add_argument("--supernode", action="store_true",
                        help="pack four simulated nodes per FPGA")
    parser.add_argument("--fpgas-per-instance", type=int, default=None,
                        metavar="N",
                        help="FPGAs per F1 instance (default 8, the "
                             "f1.16xlarge); fewer instances spread blades "
                             "over more hosts, and hosts are what "
                             "--workers partitions over")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="partition runworkload across N worker "
                             "processes (1 = serial engine); partitions "
                             "follow the deployment's instance mapping")
    parser.add_argument("--transport", default="pipe",
                        choices=("pipe", "shm"),
                        help="worker-to-worker token hop for --workers > 1: "
                             "mp.Queue pipes (the oracle default) or "
                             "zero-copy shared-memory rings (falls back "
                             "to pipes when /dev/shm is unavailable)")
    parser.add_argument("--transport-timeout", type=float, default=120.0,
                        metavar="SECONDS",
                        help="per-hop progress deadline for worker "
                             "channels (both transports); a peer that "
                             "publishes nothing for this long raises "
                             "TokenStarvationError (default 120)")
    parser.add_argument("--hang-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="floor for the supervisor's adaptive "
                             "hung-worker deadline; lower it for fast "
                             "detection in CI (default 30)")
    parser.add_argument("--engine", default=None,
                        choices=("scalar", "batched"),
                        help="round-loop implementation: the scalar "
                             "reference engine or the vectorized batched "
                             "engine (bit-identical results, faster); "
                             "default: batched when --workers > 1, "
                             "scalar otherwise")
    parser.add_argument("--workload", default="ping", choices=("ping", "boot"))
    parser.add_argument("--duration-ms", type=float, default=4.0)
    parser.add_argument("--ping-count", type=int, default=10)
    parser.add_argument("--json", action="store_true",
                        help="print one JSON object instead of text")
    parser.add_argument("--telemetry-out", metavar="DIR", default=None,
                        help="dump metrics.json/metrics.csv/trace.json here")
    parser.add_argument("--profile-out", metavar="DIR", default=None,
                        help="profile distributed rounds and dump the "
                             "telemetry artifacts plus phase_report.json "
                             "and the merged cross-process trace here")
    parser.add_argument("--fault-plan", metavar="PLAN.json", default=None,
                        help="inject the faults described in this seeded "
                             "JSON plan (chaos testing)")
    parser.add_argument("--max-retries", type=int, default=None,
                        help="retry budget per lifecycle step and per "
                             "mid-run recovery (default 3)")
    parser.add_argument("--checkpoint-interval", type=float, default=None,
                        metavar="MS",
                        help="take a recovery checkpoint every MS "
                             "milliseconds of target time")
    serve = parser.add_argument_group("service verbs (serve/submit/jobs/cancel)")
    serve.add_argument("--serve-socket", metavar="PATH",
                       default="/tmp/firesim-serve.sock",
                       help="unix socket the job server listens on and "
                            "client verbs connect to")
    serve.add_argument("--farm", metavar="TYPE=N[,TYPE=N]",
                       default="f1.16xlarge=2",
                       help="the shared run farm's instances (serve); "
                            "capacity is its total FPGA slots")
    serve.add_argument("--event-log", metavar="FILE.jsonl", default=None,
                       help="append one JSON line per job event (serve)")
    serve.add_argument("--drain", action="store_true",
                       help="on SIGINT/SIGTERM let running and queued "
                            "jobs finish instead of checkpointing them "
                            "(serve)")
    serve.add_argument("--job-name", default=None,
                       help="name for a submitted job (default: the "
                            "workload name)")
    serve.add_argument("--priority", type=int, default=0,
                       help="submitted job's priority; higher runs first "
                            "and may preempt lower (default 0)")
    serve.add_argument("--no-preempt", action="store_true",
                       help="submitted job may not be checkpoint-evicted "
                            "(and is priced on-demand, not spot)")
    serve.add_argument("--wait", action="store_true",
                       help="after submit, block until the job finishes "
                            "and print its outcome")
    serve.add_argument("--job-id", type=int, default=None,
                       help="target job for cancel")
    return parser


def _load_imbalance(per_worker_rate_mhz: Dict[Any, float]) -> Optional[float]:
    """Fastest/slowest partition rate, or None when not meaningful."""
    rates = [rate for rate in per_worker_rate_mhz.values() if rate > 0.0]
    if len(rates) < 2:
        return None
    return max(rates) / min(rates)


def _run_verb(
    verb: str, args: argparse.Namespace, manager: FireSimManager
) -> tuple:
    """Execute one verb; returns (human lines, JSON summary)."""
    if verb == "buildafi":
        results = manager.buildafi()
        lines = [
            f"built {r.config_name}: {r.agfi}"
            + (" (cached)" if r.from_cache else "")
            for r in results
        ]
        lines.append(
            f"build farm makespan: {manager.build_makespan_hours:.1f} h"
        )
        return lines, {
            "builds": [
                {"config": r.config_name, "agfi": r.agfi,
                 "cached": r.from_cache}
                for r in results
            ],
            "makespan_hours": manager.build_makespan_hours,
        }

    if verb == "launchrunfarm":
        deployment = manager.launchrunfarm()
        cost = manager.cost_report()
        rate = manager.rate_estimate()
        lines = [
            f"launched: {deployment.instance_counts}",
            str(cost),
            f"predicted rate: {rate.rate_mhz:.2f} MHz",
        ]
        return lines, {
            "instances": dict(deployment.instance_counts),
            "spot_per_hour": cost.spot_per_hour,
            "predicted_rate_mhz": rate.rate_mhz,
        }

    if verb == "infrasetup":
        sim = manager.infrasetup()
        lines = [
            f"simulation elaborated: {sim.num_nodes} nodes, "
            f"{len(sim.switches)} switches "
            f"({sim.simulation.engine} engine)"
        ]
        return lines, {
            "nodes": sim.num_nodes,
            "switches": len(sim.switches),
            "engine": sim.simulation.engine,
        }

    if verb == "runworkload":
        workload = build_workload(args, manager)
        result = manager.runworkload(workload)
        lines = [
            f"workload {result.workload_name!r} ran to "
            f"{result.target_seconds * 1e3:.2f} ms of target time"
        ]
        summary: Dict[str, Any] = {
            "workload": result.workload_name,
            "target_ms": result.target_seconds * 1e3,
        }
        rtts = result.merged(PING_KEY)
        if rtts:
            mean = sum(rtts) / len(rtts)
            lines.append(
                f"ping: {len(rtts)} samples, mean RTT "
                f"{cycles_to_us(mean):.2f} us"
            )
            summary["ping"] = {
                "samples": len(rtts),
                "mean_rtt_us": cycles_to_us(mean),
            }
        distributed = manager.distributed_summary()
        if distributed is not None:
            lines.append(
                f"distributed: {distributed['num_workers']} workers, "
                f"{distributed['boundary_links']} boundary links, "
                f"{distributed['measured_rate_mhz']:.3f} MHz achieved "
                f"({distributed['channels']} {distributed['transport']} "
                "channels)"
            )
            lines.append(
                f"  round quantum: {distributed['round_quantum']} cycles "
                f"({distributed['rounds_per_exchange']} rounds per "
                f"exchange, {distributed['exchange_rounds']} exchanges)"
            )
            for worker, rate in sorted(
                distributed["per_worker_rate_mhz"].items(),
                key=lambda item: int(item[0]),
            ):
                lines.append(f"  partition {worker}: {rate:.3f} MHz")
            imbalance = _load_imbalance(distributed["per_worker_rate_mhz"])
            if imbalance is not None:
                lines.append(f"  load imbalance: {imbalance:.2f}x")
            summary["distributed"] = distributed
        return lines, summary

    if verb == "status":
        report = manager.rate_report()
        lines = [
            f"measured rate: {report.rate_mhz:.3f} MHz "
            f"({report.rounds} rounds, {report.cycles} cycles, "
            f"{report.wall_seconds:.3f} s host)",
        ]
        summary = {"rate": report.to_dict()}
        for name, share in list(report.host_time_shares.items())[:5]:
            lines.append(f"  {name}: {share * 100.0:.1f}% of host time")
        if manager.deployment is not None:
            predicted = manager.rate_estimate()
            lines.append(f"predicted rate: {predicted.rate_mhz:.2f} MHz")
            summary["predicted_rate_mhz"] = predicted.rate_mhz
            if report.rate_hz > 0.0:
                error = predicted.prediction_error(report.rate_hz)
                lines.append(f"prediction error: {error * 100.0:+.0f}%")
                summary["prediction_error"] = error
        distributed = manager.distributed_summary()
        if distributed is not None:
            lines.append(
                f"distributed: {distributed['num_workers']} workers over "
                f"{distributed['boundary_links']} boundary links "
                f"({distributed['rounds']} lockstep rounds, "
                f"{distributed['channels']} {distributed['transport']} "
                "channels)"
            )
            lines.append(
                f"  round quantum: {distributed['round_quantum']} cycles "
                f"({distributed['rounds_per_exchange']} rounds per "
                f"exchange, {distributed['exchange_rounds']} exchanges)"
            )
            for worker, rate in sorted(
                distributed["per_worker_rate_mhz"].items(),
                key=lambda item: int(item[0]),
            ):
                lines.append(f"  partition {worker}: {rate:.3f} MHz")
            imbalance = _load_imbalance(distributed["per_worker_rate_mhz"])
            if imbalance is not None:
                lines.append(f"  load imbalance: {imbalance:.2f}x")
            summary["distributed"] = distributed
        resilience = manager.resilience_summary()
        lines.append(
            f"resilience: {resilience['faults_injected']} faults injected, "
            f"{resilience['retries']} retries, "
            f"{resilience['recoveries']} recoveries, "
            f"{resilience['restores']} checkpoint restores"
        )
        if resilience["quarantined_hosts"]:
            lines.append(
                "  quarantined: "
                + ", ".join(resilience["quarantined_hosts"])
            )
        supervisor_counters = (
            resilience.get("hangs_detected", 0),
            resilience.get("workers_killed", 0),
            resilience.get("join_timeouts", 0),
            resilience.get("ring_corruptions", 0),
            resilience.get("transport_degradations", 0),
            resilience.get("serial_fallbacks", 0),
        )
        if any(supervisor_counters):
            lines.append(
                f"supervisor: {supervisor_counters[0]} hangs detected, "
                f"{supervisor_counters[1]} workers killed, "
                f"{supervisor_counters[2]} join timeouts, "
                f"{supervisor_counters[3]} ring corruptions, "
                f"{supervisor_counters[4]} transport degradations, "
                f"{supervisor_counters[5]} serial fallbacks"
            )
        if resilience.get("quarantined_rings"):
            lines.append(
                "  quarantined rings: "
                + ", ".join(resilience["quarantined_rings"])
            )
        for entry in resilience.get("fault_log", []):
            lines.append(f"  {entry}")
        summary["resilience"] = resilience
        return lines, summary

    if verb == "profile":
        report = manager.phase_report()
        return report.summary_lines(), report.to_dict()

    if verb == "terminaterunfarm":
        manager.terminaterunfarm()
        return ["run farm terminated"], {"terminated": True}

    raise ValueError(f"unknown verb {verb!r}")


def main(
    argv: Optional[Sequence[str]] = None, out=sys.stdout, err=sys.stderr
) -> int:
    args = make_parser().parse_args(argv)
    if args.engine is None:
        # Distributed runs default to the batched numpy engine — it is
        # bit-identical to the scalar oracle and the parity gate in CI
        # holds the distributed engine to the serial batched rate.
        # Serial runs keep the scalar reference as their default.
        args.engine = "batched" if args.workers > 1 else "scalar"
    try:
        return _main(args, out)
    except ReproError as exc:
        # User-facing failures (bad configs, exhausted retries) print one
        # actionable line and exit nonzero — no traceback.
        print(f"firesim: error: {exc}", file=err)
        return 1


def _parse_farm(spec: str) -> Dict[str, int]:
    """Parse ``TYPE=N[,TYPE=N]`` into instance counts."""
    counts: Dict[str, int] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, count = part.partition("=")
        try:
            counts[name.strip()] = int(count)
        except ValueError:
            raise ConfigError(
                f"bad --farm entry {part!r}; expected TYPE=N"
            ) from None
    if not counts:
        raise ConfigError(f"--farm {spec!r} names no instances")
    return counts


def _spec_from_args(args: argparse.Namespace) -> Dict[str, Any]:
    """A submitted job's spec, from the same flags runworkload uses."""
    return {
        "name": args.job_name or args.workload,
        "topology": args.topology,
        "racks": args.racks,
        "servers_per_rack": args.servers_per_rack,
        "server_type": args.server_type,
        "workload": args.workload,
        "duration_ms": args.duration_ms,
        "ping_count": args.ping_count,
        "priority": args.priority,
        "preemptible": not args.no_preempt,
        "engine": args.engine,
        "workers": args.workers,
        "transport": args.transport,
        "link_latency_us": args.link_latency_us,
        "fpgas_per_instance": args.fpgas_per_instance,
        "supernode": args.supernode,
        "checkpoint_interval_ms": args.checkpoint_interval,
        "max_retries": args.max_retries,
    }


def _serve_forever(args: argparse.Namespace, out) -> Dict[str, Any]:
    """The ``serve`` verb: run the job server until signalled."""
    import time

    from repro.obs.session import TelemetrySession
    from repro.serve.api import SocketEndpoint
    from repro.serve.farm import ServeFarm
    from repro.serve.server import JobServer

    farm = ServeFarm(_parse_farm(args.farm))
    server = JobServer(farm=farm, event_log=args.event_log).start()
    session = None
    if args.telemetry_out:
        session = TelemetrySession(trace=False)
        session.attach_server(server)
    endpoint = SocketEndpoint(server, args.serve_socket).start()
    server.install_signal_handlers()
    print(
        f"serving {farm.capacity} FPGA slots "
        f"({args.farm}) on {args.serve_socket}",
        file=out, flush=True,
    )
    try:
        while not server._shut_down:
            time.sleep(0.1)
    except KeyboardInterrupt:
        print("shutting down"
              + (" (draining)" if args.drain else " (checkpointing)"),
              file=out, flush=True)
        endpoint.close()  # refuse new tenants before winding down
        server.stop(drain=args.drain)
    finally:
        endpoint.close()
        if not server._shut_down:
            server.stop(drain=args.drain)
    if session is not None and args.telemetry_out:
        session.dump(args.telemetry_out)
    summary = {
        "leaked_segments": list(server.leaked),
        "events": len(server.events),
        "stats": dict(vars(server.stats)),
    }
    if server.leaked:
        print(f"leaked /dev/shm segments: {server.leaked}", file=out)
    return summary


def _serve_main(args: argparse.Namespace, out) -> int:
    """Dispatch service verbs (one invocation may chain client verbs)."""
    from repro.serve.client import UnixSocketClient

    if "serve" in args.verbs:
        if args.verbs != ["serve"]:
            raise ConfigError(
                "'serve' runs the server in the foreground and must be "
                "the only verb"
            )
        summary = _serve_forever(args, out)
        if args.json:
            print(json.dumps({"verbs": {"serve": summary}}, indent=2,
                             sort_keys=True), file=out)
        return 0

    client = UnixSocketClient(args.serve_socket)
    summaries: Dict[str, Any] = {}
    for verb in args.verbs:
        if verb == "submit":
            job_id = client.submit(_spec_from_args(args))
            summary: Dict[str, Any] = {"job_id": job_id}
            if not args.json:
                print(f"submitted job {job_id}", file=out)
            if args.wait:
                record = client.wait(job_id)
                summary["job"] = record
                if not args.json:
                    print(f"job {job_id} {record['state']}", file=out)
                if record["state"] != "done":
                    summaries[verb] = summary
                    if args.json:
                        print(json.dumps({"verbs": summaries}, indent=2,
                                         sort_keys=True), file=out)
                    return 1
        elif verb == "jobs":
            description = client.describe()
            summary = description
            if not args.json:
                farm = description["farm"]
                print(
                    f"farm: {farm['used_slots']}/{farm['capacity_slots']} "
                    "slots in use",
                    file=out,
                )
                for job in description["jobs"]:
                    line = (
                        f"  #{job['job_id']} {job['name']!r} "
                        f"{job['state']} prio={job['priority']} "
                        f"slots={job['slots']} "
                        f"pricing={job['cost'].get('pricing', '?')}"
                    )
                    if job["preemptions"]:
                        line += f" preemptions={job['preemptions']}"
                    if job["error"]:
                        line += f" error={job['error']}"
                    print(line, file=out)
        elif verb == "cancel":
            if args.job_id is None:
                raise ConfigError("cancel requires --job-id")
            outcome = client.cancel(args.job_id)
            summary = outcome
            if not args.json:
                print(
                    f"job {args.job_id} -> {outcome['state']}", file=out
                )
        else:
            raise ConfigError(f"unknown service verb {verb!r}")
        summaries[verb] = summary
    if args.json:
        print(json.dumps({"verbs": summaries}, indent=2, sort_keys=True),
              file=out)
    return 0


def _main(args: argparse.Namespace, out) -> int:
    serve_verbs = [verb for verb in args.verbs if verb in SERVE_VERBS]
    if serve_verbs:
        if len(serve_verbs) != len(args.verbs):
            raise ConfigError(
                "service verbs (serve/submit/jobs/cancel) cannot be mixed "
                "with lifecycle verbs in one invocation"
            )
        return _serve_main(args, out)
    topology = build_topology(args)
    run_config = RunFarmConfig(
        link_latency_cycles=max(1, round(args.link_latency_us * 3200)),
        engine=args.engine,
    )
    host_config = SUPERNODE_HOST if args.supernode else HostConfig()
    if args.fpgas_per_instance is not None:
        host_config = HostConfig(
            fpga_config=host_config.fpga_config,
            fpgas_per_instance=args.fpgas_per_instance,
        )
    fault_plan = (
        FaultPlan.from_file(args.fault_plan) if args.fault_plan else None
    )
    retry_policy = (
        RetryPolicy(max_retries=args.max_retries)
        if args.max_retries is not None else None
    )
    checkpoint_cycles = None
    if args.checkpoint_interval is not None:
        checkpoint_cycles = max(
            1, round(args.checkpoint_interval / 1e3 * run_config.freq_hz)
        )
    manager = FireSimManager(
        topology,
        run_config=run_config,
        host_config=host_config,
        fault_plan=fault_plan,
        retry_policy=retry_policy,
        checkpoint_interval_cycles=checkpoint_cycles,
        workers=args.workers,
        transport=args.transport,
        transport_timeout_s=args.transport_timeout,
        hang_timeout_s=args.hang_timeout,
    )
    if args.telemetry_out or "status" in args.verbs:
        manager.enable_telemetry()
    if args.profile_out or "profile" in args.verbs:
        manager.enable_profiling()

    summaries: Dict[str, Any] = {}
    for verb in args.verbs:
        lines, summary = _run_verb(verb, args, manager)
        summaries[verb] = summary
        if not args.json:
            for line in lines:
                print(line, file=out)

    document: Dict[str, Any] = {"verbs": summaries}
    for flag, out_dir in (
        ("telemetry", args.telemetry_out), ("profile", args.profile_out),
    ):
        if not out_dir:
            continue
        written = manager.dump_telemetry(out_dir)
        document[flag] = written
        if not args.json:
            for artifact, path in sorted(written.items()):
                print(f"{flag}: {artifact} -> {path}", file=out)
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True), file=out)
    return 0


if __name__ == "__main__":  # pragma: no cover - direct invocation
    raise SystemExit(main())
