"""Command-line interface mirroring the FireSim manager's verbs.

The real FireSim ships a ``firesim`` command whose lifecycle verbs
(``buildafi``, ``launchrunfarm``, ``infrasetup``, ``runworkload``,
``terminaterunfarm``) drive everything from FPGA builds to result
collection (Section III-B3).  This module provides the same UX over the
reproduction::

    python -m repro.manager.cli --topology two_tier --racks 8 \
        --servers-per-rack 8 buildafi launchrunfarm infrasetup \
        runworkload --workload ping --duration-ms 4

Verbs run left to right against one manager instance, so a full
build-deploy-run-collect session is a single invocation.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.common import cycles_to_us
from repro.manager.manager import FireSimManager
from repro.manager.mapper import HostConfig, SUPERNODE_HOST
from repro.manager.runfarm import RunFarmConfig
from repro.manager.topology import (
    SwitchNode,
    datacenter_tree,
    single_rack,
    two_tier,
)
from repro.manager.workload import WorkloadSpec
from repro.swmodel.apps.boot import make_linux_boot
from repro.swmodel.apps.ping import RESULT_KEY as PING_KEY
from repro.swmodel.apps.ping import make_ping_client

VERBS = (
    "buildafi",
    "launchrunfarm",
    "infrasetup",
    "runworkload",
    "terminaterunfarm",
)


def build_topology(args: argparse.Namespace) -> SwitchNode:
    if args.topology == "single_rack":
        return single_rack(args.servers_per_rack, args.server_type)
    if args.topology == "two_tier":
        return two_tier(args.racks, args.servers_per_rack, args.server_type)
    if args.topology == "datacenter":
        return datacenter_tree(servers_per_rack=args.servers_per_rack)
    raise ValueError(f"unknown topology {args.topology!r}")


def build_workload(args: argparse.Namespace, manager: FireSimManager) -> WorkloadSpec:
    duration = args.duration_ms / 1000.0
    workload = WorkloadSpec(args.workload, duration_seconds=duration)
    assert manager.running is not None
    if args.workload == "ping":
        target = manager.running.blade(1)
        workload.add_job(
            0,
            "ping",
            lambda blade: blade.spawn(
                "ping",
                make_ping_client(target.mac, count=args.ping_count,
                                 interval_cycles=200_000),
            ),
        )
    elif args.workload == "boot":
        for index in sorted(manager.running.blades):
            workload.add_job(
                index,
                f"boot{index}",
                lambda blade: blade.spawn("init", make_linux_boot()),
            )
    else:
        raise ValueError(f"unknown workload {args.workload!r}")
    return workload


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="firesim",
        description="FireSim reproduction manager",
    )
    parser.add_argument("verbs", nargs="+", choices=VERBS, metavar="verb",
                        help=f"lifecycle verbs, in order: {', '.join(VERBS)}")
    parser.add_argument("--topology", default="single_rack",
                        choices=("single_rack", "two_tier", "datacenter"))
    parser.add_argument("--racks", type=int, default=2)
    parser.add_argument("--servers-per-rack", type=int, default=4)
    parser.add_argument("--server-type", default="QuadCore")
    parser.add_argument("--link-latency-us", type=float, default=2.0)
    parser.add_argument("--supernode", action="store_true",
                        help="pack four simulated nodes per FPGA")
    parser.add_argument("--workload", default="ping", choices=("ping", "boot"))
    parser.add_argument("--duration-ms", type=float, default=4.0)
    parser.add_argument("--ping-count", type=int, default=10)
    return parser


def main(argv: Optional[Sequence[str]] = None, out=sys.stdout) -> int:
    args = make_parser().parse_args(argv)
    topology = build_topology(args)
    run_config = RunFarmConfig(
        link_latency_cycles=max(1, round(args.link_latency_us * 3200))
    )
    host_config = SUPERNODE_HOST if args.supernode else HostConfig()
    manager = FireSimManager(
        topology, run_config=run_config, host_config=host_config
    )

    for verb in args.verbs:
        if verb == "buildafi":
            results = manager.buildafi()
            for result in results:
                cached = " (cached)" if result.from_cache else ""
                print(f"built {result.config_name}: {result.agfi}{cached}", file=out)
            print(f"build farm makespan: {manager.build_makespan_hours:.1f} h", file=out)
        elif verb == "launchrunfarm":
            deployment = manager.launchrunfarm()
            print(f"launched: {deployment.instance_counts}", file=out)
            print(str(manager.cost_report()), file=out)
            rate = manager.rate_estimate()
            print(f"predicted rate: {rate.rate_mhz:.2f} MHz", file=out)
        elif verb == "infrasetup":
            sim = manager.infrasetup()
            print(
                f"simulation elaborated: {sim.num_nodes} nodes, "
                f"{len(sim.switches)} switches", file=out,
            )
        elif verb == "runworkload":
            workload = build_workload(args, manager)
            result = manager.runworkload(workload)
            print(
                f"workload {result.workload_name!r} ran to "
                f"{result.target_seconds * 1e3:.2f} ms of target time", file=out,
            )
            rtts = result.merged(PING_KEY)
            if rtts:
                mean = sum(rtts) / len(rtts)
                print(
                    f"ping: {len(rtts)} samples, mean RTT "
                    f"{cycles_to_us(mean):.2f} us", file=out,
                )
        elif verb == "terminaterunfarm":
            manager.terminaterunfarm()
            print("run farm terminated", file=out)
    return 0


if __name__ == "__main__":  # pragma: no cover - direct invocation
    raise SystemExit(main())
