"""The FireSim manager facade (Section III-B3).

Mirrors the real manager's lifecycle verbs:

* :meth:`FireSimManager.buildafi` — run the (modeled) FPGA build flow
  for every distinct blade configuration in the topology;
* :meth:`FireSimManager.launchrunfarm` — map the topology onto EC2
  instances and "launch" them (producing the deployment + cost report);
* :meth:`FireSimManager.infrasetup` — flash FPGAs / start switch models:
  here, elaborate the cycle-exact functional simulation;
* :meth:`FireSimManager.runworkload` — deploy a workload's jobs, advance
  target time, and collect results;
* :meth:`FireSimManager.terminaterunfarm` — release everything.

Example (the Figure 4 configuration)::

    root = two_tier(num_racks=8, servers_per_rack=8)
    manager = FireSimManager(root)
    manager.buildafi()
    manager.launchrunfarm()
    sim = manager.infrasetup()
    result = manager.runworkload(my_workload)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.host.costs import CostReport
from repro.host.perfmodel import RateEstimate, SimulationRateModel
from repro.manager.buildfarm import BuildFarm, BuildResult
from repro.manager.mapper import Deployment, HostConfig, map_topology
from repro.manager.runfarm import RunFarmConfig, RunningSimulation, elaborate
from repro.manager.topology import SwitchNode
from repro.manager.workload import WorkloadResult, WorkloadSpec, run_workload


class ManagerError(RuntimeError):
    """Raised when lifecycle verbs run out of order."""


class FireSimManager:
    """Builds, deploys, runs, and tears down one target design."""

    def __init__(
        self,
        topology: SwitchNode,
        run_config: Optional[RunFarmConfig] = None,
        host_config: Optional[HostConfig] = None,
        build_farm: Optional[BuildFarm] = None,
    ) -> None:
        self.topology = topology
        self.run_config = run_config or RunFarmConfig()
        self.host_config = host_config or HostConfig()
        self.build_farm = build_farm or BuildFarm()
        self.build_results: Optional[List[BuildResult]] = None
        self.build_makespan_hours: float = 0.0
        self.deployment: Optional[Deployment] = None
        self.running: Optional[RunningSimulation] = None

    # -- lifecycle ------------------------------------------------------

    def buildafi(self) -> List[BuildResult]:
        """Build FPGA images for every distinct server configuration."""
        config_names = sorted(
            {s.server_type for s in self.topology.iter_servers()}
        )
        self.build_results, self.build_makespan_hours = (
            self.build_farm.build_all(config_names)
        )
        return self.build_results

    def launchrunfarm(self) -> Deployment:
        """Map the topology onto instances (the run farm)."""
        self.deployment = map_topology(self.topology, self.host_config)
        return self.deployment

    def infrasetup(self) -> RunningSimulation:
        """Flash FPGAs and start switch models: elaborate the simulation."""
        if self.deployment is None:
            raise ManagerError("launchrunfarm must run before infrasetup")
        if self.build_results is None:
            raise ManagerError("buildafi must run before infrasetup")
        self.running = elaborate(self.topology, self.run_config)
        return self.running

    def runworkload(self, workload: WorkloadSpec) -> WorkloadResult:
        """Deploy a workload onto the running simulation and collect."""
        if self.running is None:
            raise ManagerError("infrasetup must run before runworkload")
        return run_workload(self.running, workload)

    def terminaterunfarm(self) -> None:
        """Release the run farm (instances stop accruing cost)."""
        self.running = None
        self.deployment = None

    # -- reporting --------------------------------------------------------

    def cost_report(self) -> CostReport:
        if self.deployment is None:
            raise ManagerError("launchrunfarm must run before cost_report")
        return self.deployment.cost()

    def rate_estimate(
        self, model: Optional[SimulationRateModel] = None
    ) -> RateEstimate:
        if self.deployment is None:
            raise ManagerError("launchrunfarm must run before rate_estimate")
        return self.deployment.rate_estimate(
            self.run_config.link_latency_cycles, model
        )
