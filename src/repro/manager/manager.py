"""The FireSim manager facade (Section III-B3).

Mirrors the real manager's lifecycle verbs:

* :meth:`FireSimManager.buildafi` — run the (modeled) FPGA build flow
  for every distinct blade configuration in the topology;
* :meth:`FireSimManager.launchrunfarm` — map the topology onto EC2
  instances and "launch" them (producing the deployment + cost report);
* :meth:`FireSimManager.infrasetup` — flash FPGAs / start switch models:
  here, elaborate the cycle-exact functional simulation;
* :meth:`FireSimManager.runworkload` — deploy a workload's jobs, advance
  target time, and collect results;
* :meth:`FireSimManager.terminaterunfarm` — release everything.

Example (the Figure 4 configuration)::

    root = two_tier(num_racks=8, servers_per_rack=8)
    manager = FireSimManager(root)
    manager.buildafi()
    manager.launchrunfarm()
    sim = manager.infrasetup()
    result = manager.runworkload(my_workload)
"""

from __future__ import annotations

import random
from contextlib import nullcontext
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, ContextManager, Dict, List, Optional, Set

from repro import ReproError
from repro.core.channel import TokenStarvationError
from repro.dist.engine import DistributedRunResult, RunAborted, run_distributed
from repro.dist.partition import PartitionPlan, plan_partitions
from repro.dist.shm import DEFAULT_TRANSPORT_TIMEOUT_S
from repro.dist.supervisor import SupervisorConfig
from repro.faults.checkpoint import ReplayCheckpoint, state_digest
from repro.faults.plan import (
    FaultError,
    FaultInjector,
    FaultPlan,
    HeartbeatLost,
    ResilienceStats,
    RingCorruption,
    TransientFault,
    WorkerCrash,
    WorkerHang,
)
from repro.faults.retry import CircuitBreaker, RetryPolicy
from repro.faults.watchdog import TokenWatchdog
from repro.host.costs import CostReport
from repro.host.perfmodel import RateEstimate, SimulationRateModel
from repro.manager.buildfarm import BuildFarm, BuildResult
from repro.manager.mapper import Deployment, HostConfig, map_topology
from repro.manager.runfarm import RunFarmConfig, RunningSimulation, elaborate
from repro.manager.topology import SwitchNode
from repro.manager.workload import WorkloadResult, WorkloadSpec, run_workload
from repro.net.transport import HeartbeatMonitor
from repro.obs.prof import PhaseReport, ProfileConfig
from repro.obs.rate import RateReport
from repro.obs.session import TelemetrySession
from repro.obs.trace import get_trace_sink


class ManagerError(ReproError, RuntimeError):
    """Lifecycle verbs ran out of order, or a step exhausted its retries."""


#: Verdicts a segmented run's control hook may return at a boundary.
CONTROL_CONTINUE = "continue"
CONTROL_PREEMPT = "preempt"
CONTROL_CANCEL = "cancel"


@dataclass
class SegmentedOutcome:
    """How a segmented workload run ended.

    ``status`` is ``"done"`` (ran to the workload's full duration),
    ``"preempted"`` (stopped at a segment boundary on the control
    hook's orders, checkpoint recorded), or ``"cancelled"`` (stopped
    and discarded).  ``cycle``/``digest`` name the exact stopping point
    — for a preempted run they are the portable checkpoint a later
    ``resume_cycle``/``resume_digest`` call resumes from,
    cycle-identically (the digest proves it).  ``result`` is only set
    when ``status == "done"``.
    """

    status: str
    cycle: int
    digest: str
    result: Optional[WorkloadResult] = None


class FireSimManager:
    """Builds, deploys, runs, and tears down one target design."""

    def __init__(
        self,
        topology: SwitchNode,
        run_config: Optional[RunFarmConfig] = None,
        host_config: Optional[HostConfig] = None,
        build_farm: Optional[BuildFarm] = None,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        checkpoint_interval_cycles: Optional[int] = None,
        workers: int = 1,
        transport: str = "pipe",
        transport_timeout_s: float = DEFAULT_TRANSPORT_TIMEOUT_S,
        hang_timeout_s: Optional[float] = None,
        ring_failure_threshold: int = 2,
    ) -> None:
        if workers < 1:
            raise ManagerError(f"workers must be >= 1, got {workers}")
        if transport not in ("pipe", "shm"):
            raise ManagerError(
                f"transport must be 'pipe' or 'shm', got {transport!r}"
            )
        if transport_timeout_s <= 0:
            raise ManagerError(
                f"transport timeout must be positive, got {transport_timeout_s}"
            )
        #: Worker processes for ``runworkload``; 1 = the serial engine.
        self.workers = workers
        #: Worker-to-worker token hop for distributed runs ("pipe" is
        #: the oracle default; "shm" selects the zero-copy ring and
        #: falls back to pipes when /dev/shm is unavailable).
        self.transport = transport
        #: Progress deadline for both transports' ``recv`` — a peer
        #: publishing nothing for this long is token starvation.
        self.transport_timeout_s = transport_timeout_s
        #: Distributed liveness supervision: heartbeat-based hang
        #: detection with an optional floor override (``hang_timeout_s``
        #: None keeps the SupervisorConfig default).
        self.supervision = (
            SupervisorConfig()
            if hang_timeout_s is None
            else SupervisorConfig(hang_timeout_s=hang_timeout_s)
        )
        #: The last distributed run's merged result (``status`` reads it).
        self.last_distributed: Optional[DistributedRunResult] = None
        #: Cooperative-stop hook for distributed runs: polled by the
        #: engine's collection loop; a truthy return tears workers down
        #: and raises :class:`~repro.dist.engine.RunAborted`.  The job
        #: server sets this so a running distributed job can be
        #: preempted or cancelled without SIGKILLing its process group.
        self.abort_check: Optional[Callable[[], bool]] = None
        self.topology = topology
        self.run_config = run_config or RunFarmConfig()
        self.host_config = host_config or HostConfig()
        self.build_farm = build_farm or BuildFarm()
        self.build_results: Optional[List[BuildResult]] = None
        self.build_makespan_hours: float = 0.0
        self.deployment: Optional[Deployment] = None
        self.running: Optional[RunningSimulation] = None
        self.telemetry: Optional[TelemetrySession] = None
        #: When set (see :meth:`enable_profiling`), distributed runs
        #: carry per-worker phase recorders and ``runworkload`` yields a
        #: :class:`~repro.obs.prof.PhaseReport`.
        self.profile_config: Optional[ProfileConfig] = None
        # -- resilience (Section III-B3: the manager babysits an elastic
        # spot-market fleet, so host failure is the common case) --------
        self.fault_stats = ResilienceStats()
        self.fault_plan = fault_plan
        self.injector = (
            FaultInjector(fault_plan, self.fault_stats)
            if fault_plan is not None else None
        )
        self.retry_policy = retry_policy or RetryPolicy()
        self.breaker = CircuitBreaker()
        #: Per-directed-ring breaker: repeated integrity faults on the
        #: same worker pair degrade that run's transport shm -> pipe.
        self.ring_breaker = CircuitBreaker(
            failure_threshold=ring_failure_threshold
        )
        self.heartbeats = HeartbeatMonitor()
        self.watchdog = TokenWatchdog()
        self.checkpoint_interval_cycles = checkpoint_interval_cycles
        if checkpoint_interval_cycles is not None \
                and checkpoint_interval_cycles < 1:
            raise ManagerError(
                "checkpoint interval must be >= 1 cycle, got "
                f"{checkpoint_interval_cycles}"
            )
        #: Physical F1 instance ids the circuit breaker has quarantined.
        self._quarantined: Set[int] = set()
        # Backoff jitter draws come from a dedicated seeded stream so the
        # retry schedule never perturbs the injector's probability draws.
        seed = fault_plan.seed if fault_plan is not None else 0
        self._retry_rng = random.Random(seed + 1)

    # -- telemetry ------------------------------------------------------

    def enable_telemetry(self, trace: bool = True) -> TelemetrySession:
        """Attach a telemetry session covering all later verbs.

        Installs the session's trace sink process-wide (switch/tracer
        instrumentation starts emitting) and, once :meth:`infrasetup`
        elaborates the simulation, hooks the rate monitor and every
        model's counters into the session registry.  Idempotent.
        """
        if self.telemetry is None:
            self.telemetry = TelemetrySession(
                trace=trace, freq_hz=self.run_config.freq_hz
            ).install()
            self.telemetry.registry.register_source(
                "faults", self.fault_stats
            )
            if self.running is not None:
                self.telemetry.attach_running(self.running)
        return self.telemetry

    def enable_profiling(
        self, config: Optional[ProfileConfig] = None
    ) -> ProfileConfig:
        """Turn on the distributed round-phase profiler.

        Profiling rides on telemetry (the phase report and merged trace
        export through the session), so this enables telemetry too.
        Serial runs ignore the config — only worker round loops carry
        recorders.  Idempotent; returns the active config.
        """
        self.enable_telemetry()
        if self.profile_config is None:
            self.profile_config = config or ProfileConfig()
        return self.profile_config

    def phase_report(self) -> PhaseReport:
        """The last profiled distributed run's phase attribution."""
        if self.telemetry is None or self.telemetry.phase_report is None:
            raise ManagerError(
                "no profiled distributed run yet: enable_profiling and run "
                "a workload with workers > 1 before reading phase_report"
            )
        return self.telemetry.phase_report

    def _span(self, verb: str) -> ContextManager[Any]:
        if self.telemetry is None:
            return nullcontext()
        return self.telemetry.span(verb)

    def rate_report(self) -> RateReport:
        """Measured simulation rate so far (requires telemetry)."""
        if self.telemetry is None:
            raise ManagerError("enable_telemetry before reading rate_report")
        return self.telemetry.rate_report()

    def dump_telemetry(self, out_dir: str) -> Dict[str, str]:
        """Write metrics.json/metrics.csv/trace.json into ``out_dir``."""
        if self.telemetry is None:
            raise ManagerError("enable_telemetry before dump_telemetry")
        if self.telemetry.rate.rounds:
            self.telemetry.registry.gauge("sim.quantum_cycles").set(
                self.telemetry.rate.cycles / self.telemetry.rate.rounds
            )
        topology_info = {
            "servers": sum(1 for _ in self.topology.iter_servers()),
            "switches": sum(1 for _ in self.topology.iter_switches()),
            "depth": self.topology.depth(),
        }
        return self.telemetry.dump(out_dir, extra={"topology": topology_info})

    # -- resilience machinery -------------------------------------------

    def _trace_instant(self, name: str, **args: Any) -> None:
        sink = get_trace_sink()
        if sink.enabled:
            sink.host_instant(
                name, "faults", perf_counter(),
                track="resilience", args=args,
            )

    def _quarantine_host(self, host: str) -> None:
        """Exclude a tripped host's physical instance from future maps."""
        self.fault_stats.hosts_quarantined += 1
        if host.startswith("f1:"):
            self._quarantined.add(int(host.split(":", 1)[1]))
        # A quarantined host's blades move: recompute the mapping if the
        # run farm was already launched.
        if self.deployment is not None:
            self.deployment = map_topology(
                self.topology, self.host_config,
                excluded_instances=self._quarantined,
            )
        self._trace_instant("quarantine", host=host)

    def _with_retries(
        self, step: str, attempt_fn: Callable[[], Any],
    ) -> Any:
        """Run one lifecycle step under the retry policy.

        Transient faults are retried with recorded exponential backoff;
        a host that keeps failing trips the circuit breaker, is
        quarantined, and its blades are remapped before the next
        attempt.  Exhausting the budget raises :class:`ManagerError`.
        """
        attempt = 0
        while True:
            try:
                result = attempt_fn()
            except TransientFault as fault:
                victim = fault.target or step
                if isinstance(fault, HeartbeatLost):
                    self.fault_stats.heartbeats_missed += 1
                    self.heartbeats.miss(victim)
                if self.breaker.record_failure(victim):
                    self._quarantine_host(victim)
                attempt += 1
                if attempt > self.retry_policy.max_retries:
                    self.fault_stats.giveups += 1
                    raise ManagerError(
                        f"{step} failed after {attempt - 1} retries: {fault}"
                    ) from fault
                delay = self.retry_policy.delay_for(attempt, self._retry_rng)
                self.fault_stats.retries += 1
                self.fault_stats.backoff_seconds += delay
                self._trace_instant(
                    "retry", step=step, attempt=attempt, victim=victim,
                    backoff_s=round(delay, 6),
                )
            else:
                if attempt > 0:
                    self.fault_stats.recoveries += 1
                return result

    # -- lifecycle ------------------------------------------------------

    def buildafi(self) -> List[BuildResult]:
        """Build FPGA images for every distinct server configuration."""
        with self._span("buildafi"):
            config_names = sorted(
                {s.server_type for s in self.topology.iter_servers()}
            )

            def attempt() -> tuple:
                if self.injector is not None:
                    for name in config_names:
                        self.injector.fire("buildafi", name)
                return self.build_farm.build_all(config_names)

            self.build_results, self.build_makespan_hours = (
                self._with_retries("buildafi", attempt)
            )
            return self.build_results

    def launchrunfarm(self) -> Deployment:
        """Map the topology onto instances (the run farm)."""
        with self._span("launchrunfarm"):

            def attempt() -> Deployment:
                deployment = map_topology(
                    self.topology, self.host_config,
                    excluded_instances=self._quarantined,
                )
                if self.injector is not None:
                    for host in deployment.f1_hosts():
                        self.injector.fire("launchrunfarm", host)
                return deployment

            self.deployment = self._with_retries("launchrunfarm", attempt)
            return self.deployment

    def infrasetup(self) -> RunningSimulation:
        """Flash FPGAs and start switch models: elaborate the simulation."""
        if self.deployment is None:
            raise ManagerError("launchrunfarm must run before infrasetup")
        if self.build_results is None:
            raise ManagerError("buildafi must run before infrasetup")
        with self._span("infrasetup"):

            def attempt() -> RunningSimulation:
                if self.injector is not None:
                    assert self.deployment is not None
                    for host in self.deployment.f1_hosts():
                        self.injector.fire("infrasetup", host)
                        self.heartbeats.beat(host)
                return elaborate(self.topology, self.run_config)

            self.running = self._with_retries("infrasetup", attempt)
            if self.telemetry is not None:
                self.telemetry.attach_running(self.running)
            return self.running

    def runworkload(self, workload: WorkloadSpec) -> WorkloadResult:
        """Deploy a workload onto the running simulation and collect.

        Without a fault plan or checkpoint interval this is exactly the
        plain single-shot path.  With either, the run is segmented at
        checkpoint intervals; an injected controller crash or detected
        token stall restores the last quantum-boundary checkpoint and
        resumes, cycle-identically to a run that never crashed.
        """
        if self.running is None:
            raise ManagerError("infrasetup must run before runworkload")
        with self._span("runworkload"):
            if self.injector is not None:
                self._with_retries(
                    "runworkload",
                    lambda: self.injector.fire("runworkload"),
                )
            if self.workers > 1:
                return self._run_workload_distributed(workload)
            resilient = self.checkpoint_interval_cycles is not None or (
                self.injector is not None
                and bool(self.injector.pending("runworkload"))
            )
            if not resilient:
                return run_workload(self.running, workload)
            return self._run_workload_resilient(workload)

    def _run_workload_resilient(
        self, workload: WorkloadSpec
    ) -> WorkloadResult:
        """Segmented run with checkpoint/restore recovery."""
        outcome = self.runworkload_segmented(workload)
        assert outcome.result is not None  # no control hook => ran to done
        return outcome.result

    def runworkload_segmented(
        self,
        workload: WorkloadSpec,
        segment_cycles: Optional[int] = None,
        control: Optional[Callable[[int, int], Optional[str]]] = None,
        resume_cycle: int = 0,
        resume_digest: Optional[str] = None,
    ) -> SegmentedOutcome:
        """Run a workload in checkpointable segments (the serving seam).

        The engine between segments is exactly :meth:`runworkload`'s
        resilient path — deterministic segments, a replay checkpoint at
        every boundary, fault-triggered restores — plus an external
        *control hook*: before each segment, ``control(current_cycle,
        total_cycles)`` may return ``"preempt"`` or ``"cancel"`` to
        stop the run at that boundary.  A preempted run's
        :class:`SegmentedOutcome` carries the portable checkpoint
        ``(cycle, digest)``; passing it back as
        ``resume_cycle``/``resume_digest`` on a fresh manager replays
        to that cycle, *proves* the replayed state matches via the
        digest, and continues — the whole point being that a
        preempted-and-resumed job is bit-identical to one that ran
        undisturbed.  This is what :mod:`repro.serve` preemption rides
        on.

        Serial-engine only (``workers == 1``): a distributed run's
        worker state never returns to the parent mid-run, so its only
        sound checkpoint is the pre-fork cycle — the job server
        therefore treats a distributed job as one segment and uses
        :attr:`abort_check` instead.
        """
        if self.workers > 1:
            raise ManagerError(
                "segmented runs require the serial engine (workers == 1); "
                "distributed jobs preempt via abort_check at round "
                "granularity instead"
            )
        sim = self.running
        if sim is None:
            raise ManagerError("infrasetup must run before runworkload")
        if sim.simulation.current_cycle != 0:
            raise ManagerError(
                "resilient runworkload needs a fresh simulation at cycle 0 "
                f"(at cycle {sim.simulation.current_cycle}); rerun "
                "infrasetup first"
            )
        if resume_cycle < 0:
            raise ManagerError(
                f"resume cycle must be >= 0, got {resume_cycle}"
            )
        workload.validate_against(sim)
        for job in workload.jobs:
            job.setup(sim.blade(job.node_index))
        total_cycles = sim.simulation.clock.cycles(workload.duration_seconds)
        interval = (
            segment_cycles
            or self.checkpoint_interval_cycles
            or total_cycles
        )
        if interval < 1:
            raise ManagerError(
                f"segment length must be >= 1 cycle, got {interval}"
            )

        def rebuild() -> RunningSimulation:
            # Deterministic re-execution: elaboration and job setup are
            # both seeded, so the replayed run is bit-identical.
            fresh = elaborate(self.topology, self.run_config)
            for job in workload.jobs:
                job.setup(fresh.blade(job.node_index))
            return fresh

        if resume_cycle > 0:
            # Resume from a portable checkpoint: replay to the recorded
            # cycle and let the digest check prove cycle-exactness
            # before a single new segment runs.
            if resume_digest is None:
                raise ManagerError(
                    "resume_cycle without resume_digest: an unverified "
                    "resume could silently diverge"
                )
            self._trace_instant(
                "resume", checkpoint_cycle=resume_cycle,
            )
            sim = ReplayCheckpoint.from_dict(
                rebuild, {"cycle": resume_cycle, "digest": resume_digest}
            ).restore()
            self.running = sim
            self.fault_stats.restores += 1
            self.fault_stats.replay_cycles += resume_cycle
            if self.telemetry is not None:
                self.telemetry.attach_running(sim)

        checkpoint = ReplayCheckpoint.capture(sim, rebuild)
        self.fault_stats.checkpoints_taken += 1
        if self.injector is not None:
            self.injector.arm(sim.simulation)
        restores = 0
        while sim.simulation.current_cycle < total_cycles:
            if control is not None:
                verdict = control(sim.simulation.current_cycle, total_cycles)
                if verdict in (CONTROL_PREEMPT, CONTROL_CANCEL):
                    sim.simulation.fault_hook = None
                    status = (
                        "preempted" if verdict == CONTROL_PREEMPT
                        else "cancelled"
                    )
                    return SegmentedOutcome(
                        status=status,
                        cycle=sim.simulation.current_cycle,
                        digest=state_digest(sim),
                    )
                if verdict not in (None, CONTROL_CONTINUE):
                    raise ManagerError(
                        f"unknown control verdict {verdict!r}; expected "
                        "'continue', 'preempt', or 'cancel'"
                    )
            target = min(sim.simulation.current_cycle + interval, total_cycles)
            try:
                sim.simulation.run_until(target)
                self.watchdog.scan(sim.simulation)
                self.fault_stats.watchdog_scans += 1
            except (FaultError, TokenStarvationError) as fault:
                restores += 1
                if restores > self.retry_policy.max_retries:
                    self.fault_stats.giveups += 1
                    raise ManagerError(
                        f"runworkload failed after {restores - 1} "
                        f"recoveries: {fault}"
                    ) from fault
                self._trace_instant(
                    "restore", checkpoint_cycle=checkpoint.cycle,
                    fault=str(fault),
                )
                sim = checkpoint.restore()
                self.running = sim
                self.fault_stats.restores += 1
                self.fault_stats.replay_cycles += checkpoint.cycle
                self.fault_stats.recoveries += 1
                if self.telemetry is not None:
                    self.telemetry.attach_running(sim)
                if self.injector is not None:
                    self.injector.arm(sim.simulation)
                continue
            if sim.simulation.current_cycle < total_cycles:
                checkpoint = ReplayCheckpoint.capture(sim, rebuild)
                self.fault_stats.checkpoints_taken += 1
        sim.simulation.fault_hook = None
        return SegmentedOutcome(
            status="done",
            cycle=sim.simulation.current_cycle,
            digest=state_digest(sim),
            result=WorkloadResult(
                workload_name=workload.name,
                target_seconds=sim.simulation.current_time_s,
                node_results=sim.collect_results(),
            ),
        )

    def _run_workload_distributed(
        self, workload: WorkloadSpec
    ) -> WorkloadResult:
        """Run a workload partitioned across ``self.workers`` processes.

        Shards mirror the deployment's instance mapping (the same
        placement ``launchrunfarm`` produced), so the process boundary
        falls exactly where the paper's host boundary would.  A worker
        that dies mid-run is a *host fault*: the manager restores the
        pre-fork checkpoint, drops to the surviving worker count, and
        reruns — deterministic elaboration makes the rerun
        cycle-identical, so the recovery is invisible in the results.

        The same restore path handles the supervisor's taxonomy: a
        hung worker (:class:`~repro.faults.plan.WorkerHang`) is treated
        like a crash; a shm integrity fault
        (:class:`~repro.faults.plan.RingCorruption`) keeps the worker
        count but counts against the per-ring circuit breaker, which on
        tripping degrades this run's transport shm -> pipe; and an
        exhausted restart budget falls back to the *serial* engine as
        the last-resort degraded mode instead of failing the workload —
        the serial result is the oracle the distributed engine is
        bit-equal to, so correctness is preserved at reduced speed.
        """
        sim = self.running
        assert sim is not None
        if self.deployment is None:
            raise ManagerError(
                "launchrunfarm must run before a distributed runworkload "
                "(partitions follow the deployment's instance mapping)"
            )
        if sim.simulation.current_cycle != 0:
            raise ManagerError(
                "distributed runworkload needs a fresh simulation at cycle 0 "
                f"(at cycle {sim.simulation.current_cycle}); rerun "
                "infrasetup first"
            )
        workload.validate_against(sim)
        for job in workload.jobs:
            job.setup(sim.blade(job.node_index))
        total_cycles = sim.simulation.clock.cycles(workload.duration_seconds)

        def rebuild() -> RunningSimulation:
            fresh = elaborate(self.topology, self.run_config)
            for job in workload.jobs:
                job.setup(fresh.blade(job.node_index))
            return fresh

        # Distributed checkpoints are only sound at the pre-fork cycle:
        # after the run, worker-side model internals never came back to
        # the parent, so mid-run capture would snapshot stale state.
        checkpoint = ReplayCheckpoint.capture(sim, rebuild)
        self.fault_stats.checkpoints_taken += 1
        workers = self.workers
        transport = self.transport
        restores = 0
        result: Optional[DistributedRunResult] = None
        while True:
            plan = self._partition_plan(sim, workers)
            if self.injector is not None:
                self.injector.arm(sim.simulation)
            try:
                result = run_distributed(
                    sim.simulation,
                    plan,
                    total_cycles,
                    measure=self.telemetry is not None,
                    transport=transport,
                    profile=self.profile_config,
                    supervision=self.supervision,
                    transport_timeout_s=self.transport_timeout_s,
                    stats=self.fault_stats,
                    should_abort=self.abort_check,
                )
                if (
                    transport == "shm"
                    and result.transport != "shm"
                ):
                    self.fault_stats.shm_fallbacks += 1
                break
            except RunAborted:
                # Deliberate stop (job-server preempt/cancel), not a
                # fault: workers are already torn down, no state merged.
                sim.simulation.fault_hook = None
                raise
            except (WorkerCrash, RingCorruption) as fault:
                restores += 1
                if self.injector is not None:
                    # The fault fired in a forked worker's copy of this
                    # injector; consume it here or the rerun re-injects.
                    self.injector.consume_next_mid_run()
                if restores > self.retry_policy.max_retries:
                    # Restart budget exhausted: last-resort degraded
                    # mode.  Restore the pre-fork checkpoint, disarm
                    # injection (every planned fault has had its
                    # chance), and finish on the serial engine — the
                    # oracle the distributed engine is bit-equal to.
                    self.fault_stats.serial_fallbacks += 1
                    self._trace_instant(
                        "serial_fallback", restores=restores,
                        fault=str(fault),
                    )
                    sim = self._restore_distributed(checkpoint)
                    sim.simulation.fault_hook = None
                    sim.simulation.run_until(total_cycles)
                    break
                if isinstance(fault, RingCorruption):
                    # Transport fault, not a worker fault: keep the
                    # worker count, but repeated corruption on one
                    # directed ring trips its breaker and degrades the
                    # transport to pipes for the rest of this run.
                    self.fault_stats.ring_corruptions += 1
                    self._trace_instant(
                        "ring_corruption", ring=fault.ring,
                        restores=restores,
                    )
                    if (
                        self.ring_breaker.record_failure(fault.ring)
                        and transport == "shm"
                    ):
                        transport = "pipe"
                        self.fault_stats.transport_degradations += 1
                        self._trace_instant(
                            "transport_degraded", ring=fault.ring,
                        )
                else:
                    if isinstance(fault, WorkerHang):
                        self._trace_instant(
                            "worker_hang", worker=fault.worker_index,
                        )
                    # One worker is gone; resume on the survivors.
                    workers = max(1, workers - 1)
                self._trace_instant(
                    "restore", checkpoint_cycle=checkpoint.cycle,
                    fault=str(fault),
                )
                sim = self._restore_distributed(checkpoint)
        sim.simulation.fault_hook = None
        if result is not None:
            self.last_distributed = result
            if self.telemetry is not None:
                self.telemetry.absorb_distributed(result)
        return WorkloadResult(
            workload_name=workload.name,
            target_seconds=sim.simulation.current_time_s,
            node_results=sim.collect_results(),
        )

    def _restore_distributed(
        self, checkpoint: ReplayCheckpoint
    ) -> RunningSimulation:
        """Restore the pre-fork checkpoint and re-home bookkeeping."""
        sim = checkpoint.restore()
        self.running = sim
        self.fault_stats.restores += 1
        self.fault_stats.replay_cycles += checkpoint.cycle
        self.fault_stats.recoveries += 1
        if self.telemetry is not None:
            self.telemetry.attach_running(sim)
        return sim

    def _partition_plan(
        self, sim: RunningSimulation, workers: int
    ) -> PartitionPlan:
        assert self.deployment is not None
        return plan_partitions(sim, self.deployment, workers)

    def terminaterunfarm(self) -> None:
        """Release the run farm (instances stop accruing cost).

        The telemetry session survives termination so results can still
        be dumped, but its process-wide trace sink is uninstalled.
        """
        with self._span("terminaterunfarm"):
            self.running = None
            self.deployment = None
        if self.telemetry is not None:
            self.telemetry.uninstall()

    # -- reporting --------------------------------------------------------

    def cost_report(self) -> CostReport:
        if self.deployment is None:
            raise ManagerError("launchrunfarm must run before cost_report")
        return self.deployment.cost()

    def rate_estimate(
        self, model: Optional[SimulationRateModel] = None
    ) -> RateEstimate:
        if self.deployment is None:
            raise ManagerError("launchrunfarm must run before rate_estimate")
        return self.deployment.rate_estimate(
            self.run_config.link_latency_cycles, model
        )

    def resilience_summary(self) -> Dict[str, Any]:
        """Fault/retry/recovery counters for the ``status`` verb."""
        stats = self.fault_stats
        summary: Dict[str, Any] = {
            "faults_injected": stats.faults_injected,
            "retries": stats.retries,
            "recoveries": stats.recoveries,
            "giveups": stats.giveups,
            "checkpoints_taken": stats.checkpoints_taken,
            "restores": stats.restores,
            "replay_cycles": stats.replay_cycles,
            "backoff_seconds": round(stats.backoff_seconds, 6),
            "heartbeats_missed": stats.heartbeats_missed,
            "stalls_detected": stats.stalls_detected,
            "watchdog_scans": stats.watchdog_scans,
            "shm_fallbacks": stats.shm_fallbacks,
            "hangs_detected": stats.hangs_detected,
            "workers_killed": stats.workers_killed,
            "join_timeouts": stats.join_timeouts,
            "ring_corruptions": stats.ring_corruptions,
            "transport_degradations": stats.transport_degradations,
            "serial_fallbacks": stats.serial_fallbacks,
            "quarantined_hosts": sorted(self.breaker.quarantined),
            "quarantined_rings": sorted(self.ring_breaker.quarantined),
        }
        if self.injector is not None:
            summary["fault_log"] = list(self.injector.log)
        return summary

    def distributed_summary(self) -> Optional[Dict[str, Any]]:
        """Per-partition rates and plan shape of the last distributed
        run, for the ``status`` verb; None if no distributed run yet."""
        if self.last_distributed is None:
            return None
        summary = self.last_distributed.to_dict()
        summary["plan"] = self.last_distributed.plan.describe()
        return summary
