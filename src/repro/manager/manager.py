"""The FireSim manager facade (Section III-B3).

Mirrors the real manager's lifecycle verbs:

* :meth:`FireSimManager.buildafi` — run the (modeled) FPGA build flow
  for every distinct blade configuration in the topology;
* :meth:`FireSimManager.launchrunfarm` — map the topology onto EC2
  instances and "launch" them (producing the deployment + cost report);
* :meth:`FireSimManager.infrasetup` — flash FPGAs / start switch models:
  here, elaborate the cycle-exact functional simulation;
* :meth:`FireSimManager.runworkload` — deploy a workload's jobs, advance
  target time, and collect results;
* :meth:`FireSimManager.terminaterunfarm` — release everything.

Example (the Figure 4 configuration)::

    root = two_tier(num_racks=8, servers_per_rack=8)
    manager = FireSimManager(root)
    manager.buildafi()
    manager.launchrunfarm()
    sim = manager.infrasetup()
    result = manager.runworkload(my_workload)
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, ContextManager, Dict, List, Optional

from repro.host.costs import CostReport
from repro.host.perfmodel import RateEstimate, SimulationRateModel
from repro.manager.buildfarm import BuildFarm, BuildResult
from repro.manager.mapper import Deployment, HostConfig, map_topology
from repro.manager.runfarm import RunFarmConfig, RunningSimulation, elaborate
from repro.manager.topology import SwitchNode
from repro.manager.workload import WorkloadResult, WorkloadSpec, run_workload
from repro.obs.rate import RateReport
from repro.obs.session import TelemetrySession


class ManagerError(RuntimeError):
    """Raised when lifecycle verbs run out of order."""


class FireSimManager:
    """Builds, deploys, runs, and tears down one target design."""

    def __init__(
        self,
        topology: SwitchNode,
        run_config: Optional[RunFarmConfig] = None,
        host_config: Optional[HostConfig] = None,
        build_farm: Optional[BuildFarm] = None,
    ) -> None:
        self.topology = topology
        self.run_config = run_config or RunFarmConfig()
        self.host_config = host_config or HostConfig()
        self.build_farm = build_farm or BuildFarm()
        self.build_results: Optional[List[BuildResult]] = None
        self.build_makespan_hours: float = 0.0
        self.deployment: Optional[Deployment] = None
        self.running: Optional[RunningSimulation] = None
        self.telemetry: Optional[TelemetrySession] = None

    # -- telemetry ------------------------------------------------------

    def enable_telemetry(self, trace: bool = True) -> TelemetrySession:
        """Attach a telemetry session covering all later verbs.

        Installs the session's trace sink process-wide (switch/tracer
        instrumentation starts emitting) and, once :meth:`infrasetup`
        elaborates the simulation, hooks the rate monitor and every
        model's counters into the session registry.  Idempotent.
        """
        if self.telemetry is None:
            self.telemetry = TelemetrySession(
                trace=trace, freq_hz=self.run_config.freq_hz
            ).install()
            if self.running is not None:
                self.telemetry.attach_running(self.running)
        return self.telemetry

    def _span(self, verb: str) -> ContextManager[Any]:
        if self.telemetry is None:
            return nullcontext()
        return self.telemetry.span(verb)

    def rate_report(self) -> RateReport:
        """Measured simulation rate so far (requires telemetry)."""
        if self.telemetry is None:
            raise ManagerError("enable_telemetry before reading rate_report")
        return self.telemetry.rate_report()

    def dump_telemetry(self, out_dir: str) -> Dict[str, str]:
        """Write metrics.json/metrics.csv/trace.json into ``out_dir``."""
        if self.telemetry is None:
            raise ManagerError("enable_telemetry before dump_telemetry")
        if self.telemetry.rate.rounds:
            self.telemetry.registry.gauge("sim.quantum_cycles").set(
                self.telemetry.rate.cycles / self.telemetry.rate.rounds
            )
        topology_info = {
            "servers": sum(1 for _ in self.topology.iter_servers()),
            "switches": sum(1 for _ in self.topology.iter_switches()),
            "depth": self.topology.depth(),
        }
        return self.telemetry.dump(out_dir, extra={"topology": topology_info})

    # -- lifecycle ------------------------------------------------------

    def buildafi(self) -> List[BuildResult]:
        """Build FPGA images for every distinct server configuration."""
        with self._span("buildafi"):
            config_names = sorted(
                {s.server_type for s in self.topology.iter_servers()}
            )
            self.build_results, self.build_makespan_hours = (
                self.build_farm.build_all(config_names)
            )
            return self.build_results

    def launchrunfarm(self) -> Deployment:
        """Map the topology onto instances (the run farm)."""
        with self._span("launchrunfarm"):
            self.deployment = map_topology(self.topology, self.host_config)
            return self.deployment

    def infrasetup(self) -> RunningSimulation:
        """Flash FPGAs and start switch models: elaborate the simulation."""
        if self.deployment is None:
            raise ManagerError("launchrunfarm must run before infrasetup")
        if self.build_results is None:
            raise ManagerError("buildafi must run before infrasetup")
        with self._span("infrasetup"):
            self.running = elaborate(self.topology, self.run_config)
            if self.telemetry is not None:
                self.telemetry.attach_running(self.running)
            return self.running

    def runworkload(self, workload: WorkloadSpec) -> WorkloadResult:
        """Deploy a workload onto the running simulation and collect."""
        if self.running is None:
            raise ManagerError("infrasetup must run before runworkload")
        with self._span("runworkload"):
            return run_workload(self.running, workload)

    def terminaterunfarm(self) -> None:
        """Release the run farm (instances stop accruing cost).

        The telemetry session survives termination so results can still
        be dumped, but its process-wide trace sink is uninstalled.
        """
        with self._span("terminaterunfarm"):
            self.running = None
            self.deployment = None
        if self.telemetry is not None:
            self.telemetry.uninstall()

    # -- reporting --------------------------------------------------------

    def cost_report(self) -> CostReport:
        if self.deployment is None:
            raise ManagerError("launchrunfarm must run before cost_report")
        return self.deployment.cost()

    def rate_estimate(
        self, model: Optional[SimulationRateModel] = None
    ) -> RateEstimate:
        if self.deployment is None:
            raise ManagerError("launchrunfarm must run before rate_estimate")
        return self.deployment.rate_estimate(
            self.run_config.link_latency_cycles, model
        )
