"""Mapping target topologies onto EC2 instances (Section III-B3).

Given a topology and a host configuration (standard or supernode), the
mapper decides:

* how many f1.2xlarge/f1.16xlarge instances host the simulated servers
  (one blade per FPGA standard, four with supernode packing);
* where each switch model runs — a ToR switch co-locates with its
  servers' host instance when they all fit (shared-memory token
  transport); aggregation and root switches run on m4.16xlarge hosts and
  exchange tokens over TCP sockets;
* which transport every link uses, feeding both the host performance
  model (Figures 8/9) and the cost model (Section V-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro import ConfigError
from repro.host.fpga import FPGAConfig, STANDARD_FPGA, SUPERNODE_FPGA
from repro.host.costs import CostReport, cost_report
from repro.host.perfmodel import RateEstimate, SimulationRateModel, SwitchPlacement
from repro.manager.topology import ServerNode, SwitchNode, validate_topology
from repro.net.transport import TransportKind


@dataclass(frozen=True)
class HostConfig:
    """Host-platform choices for a deployment."""

    fpga_config: FPGAConfig = STANDARD_FPGA
    fpgas_per_instance: int = 8  # f1.16xlarge; 1 would be f1.2xlarge

    def __post_init__(self) -> None:
        if self.fpgas_per_instance not in (1, 8):
            raise ConfigError(
                "F1 offers 1 (f1.2xlarge) or 8 (f1.16xlarge) FPGAs"
            )

    @property
    def f1_instance_name(self) -> str:
        return "f1.16xlarge" if self.fpgas_per_instance == 8 else "f1.2xlarge"

    @property
    def blades_per_instance(self) -> int:
        return self.fpga_config.blades_per_fpga * self.fpgas_per_instance


SUPERNODE_HOST = HostConfig(fpga_config=SUPERNODE_FPGA)


@dataclass
class ServerPlacement:
    """Where one simulated server lands on the host platform."""

    server: ServerNode
    instance_index: int
    fpga_index: int
    slot_index: int  # blade slot within the FPGA (0 for standard)


@dataclass
class SwitchModelPlacement:
    """Where one switch model process runs."""

    switch: SwitchNode
    host: str  # "f1:<n>" or "m4:<n>"
    downlink_transports: List[TransportKind]
    uplink_transport: Optional[TransportKind]

    @property
    def ports_over_socket(self) -> int:
        count = sum(
            1 for t in self.downlink_transports if t == TransportKind.SOCKET
        )
        if self.uplink_transport == TransportKind.SOCKET:
            count += 1
        return count


@dataclass
class Deployment:
    """A fully mapped simulation ready to cost and launch."""

    host_config: HostConfig
    server_placements: List[ServerPlacement]
    switch_placements: List[SwitchModelPlacement]
    num_f1_instances: int
    num_m4_instances: int
    #: Physical ids of the F1 instances in use.  Normally ``0..n-1``;
    #: when hosts were quarantined and the topology remapped, the ids
    #: skip the excluded instances (``[0, 2, 3]`` after losing ``1``).
    f1_instance_ids: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.f1_instance_ids:
            self.f1_instance_ids = list(range(self.num_f1_instances))

    def f1_hosts(self) -> List[str]:
        """Host strings ("f1:<id>") for every F1 instance in use."""
        return [f"f1:{iid}" for iid in self.f1_instance_ids]

    def partition_hosts(self) -> List[str]:
        """Every host in deterministic partition order.

        F1 instances first (physical-id order), then M4 switch hosts.
        This is the shard ordering :mod:`repro.dist` chunks across
        workers, so it must stay stable for a given deployment.
        """
        return self.f1_hosts() + [
            f"m4:{index}" for index in range(self.num_m4_instances)
        ]

    @property
    def instance_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        if self.num_f1_instances:
            counts[self.host_config.f1_instance_name] = self.num_f1_instances
        if self.num_m4_instances:
            counts["m4.16xlarge"] = self.num_m4_instances
        return counts

    def cost(self) -> CostReport:
        return cost_report(self.instance_counts)

    def rate_estimate(
        self,
        link_latency_cycles: int,
        model: Optional[SimulationRateModel] = None,
    ) -> RateEstimate:
        """Predicted simulation rate for this mapping."""
        model = model or SimulationRateModel()
        placements = [
            SwitchPlacement(
                ports=p.switch.num_ports,
                ports_over_socket=p.ports_over_socket,
            )
            for p in self.switch_placements
        ]
        return model.estimate(
            link_latency_cycles,
            placements,
            blades_per_fpga=self.host_config.fpga_config.blades_per_fpga,
        )


def _physical_f1_ids(count: int, excluded: Set[int]) -> List[int]:
    """The first ``count`` physical instance ids not quarantined."""
    ids: List[int] = []
    candidate = 0
    while len(ids) < count:
        if candidate not in excluded:
            ids.append(candidate)
        candidate += 1
    return ids


def map_topology(
    root: SwitchNode,
    host_config: Optional[HostConfig] = None,
    excluded_instances: Optional[Iterable[int]] = None,
) -> Deployment:
    """Assign every server and switch in the topology to host instances.

    ``excluded_instances`` names physical F1 instance ids the mapper must
    skip — the manager passes its circuit breaker's quarantine set here
    to remap blades off hosts that failed repeatedly.
    """
    host_config = host_config or HostConfig()
    host_config.fpga_config.validate_fits()
    validate_topology(root)
    excluded = set(excluded_instances or ())
    if any(iid < 0 for iid in excluded):
        raise ConfigError(
            f"excluded instance ids must be >= 0, got {sorted(excluded)}"
        )

    blades_per_fpga = host_config.fpga_config.blades_per_fpga
    per_instance = host_config.blades_per_instance

    # Servers pack rack-by-rack so a ToR's servers share instances.
    servers = list(root.iter_servers())
    num_f1 = (len(servers) + per_instance - 1) // per_instance
    f1_ids = _physical_f1_ids(num_f1, excluded)
    server_placements: List[ServerPlacement] = []
    instance_of_server: Dict[int, int] = {}
    slot = 0
    for server in servers:
        instance_index = f1_ids[slot // per_instance]
        within = slot % per_instance
        placement = ServerPlacement(
            server=server,
            instance_index=instance_index,
            fpga_index=within // blades_per_fpga,
            slot_index=within % blades_per_fpga,
        )
        server_placements.append(placement)
        instance_of_server[id(server)] = instance_index
        slot += 1

    # Switches: ToRs co-locate with their servers when possible; switches
    # with switch children run on m4 hosts.
    switch_placements: List[SwitchModelPlacement] = []
    num_m4 = 0
    host_of_switch: Dict[int, str] = {}
    # Place bottom-up so uplink transports can be resolved afterwards.
    switches = list(root.iter_switches())
    for switch in reversed(switches):
        child_types = {type(c) for c in switch.downlinks}
        if child_types == {ServerNode}:
            instances = {
                instance_of_server[id(c)] for c in switch.downlinks
            }
            if len(instances) == 1:
                host = f"f1:{instances.pop()}"
            else:
                host = f"m4:{num_m4}"
                num_m4 += 1
        else:
            host = f"m4:{num_m4}"
            num_m4 += 1
        host_of_switch[switch.switch_id] = host

    for switch in switches:
        host = host_of_switch[switch.switch_id]
        downlink_transports = []
        for child in switch.downlinks:
            if isinstance(child, ServerNode):
                child_host = f"f1:{instance_of_server[id(child)]}"
                same = child_host == host
                downlink_transports.append(
                    TransportKind.PCIE if same else TransportKind.SOCKET
                )
            else:
                child_host = host_of_switch[child.switch_id]
                downlink_transports.append(
                    TransportKind.SHARED_MEMORY
                    if child_host == host
                    else TransportKind.SOCKET
                )
        uplink_transport = None
        if switch.uplink is not None:
            uplink_host = host_of_switch[switch.uplink.switch_id]
            uplink_transport = (
                TransportKind.SHARED_MEMORY
                if uplink_host == host
                else TransportKind.SOCKET
            )
        switch_placements.append(
            SwitchModelPlacement(
                switch=switch,
                host=host,
                downlink_transports=downlink_transports,
                uplink_transport=uplink_transport,
            )
        )

    return Deployment(
        host_config=host_config,
        server_placements=server_placements,
        switch_placements=switch_placements,
        num_f1_instances=num_f1,
        num_m4_instances=num_m4,
        f1_instance_ids=f1_ids,
    )
