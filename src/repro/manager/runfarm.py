"""Run farm: elaborating a topology into a live simulation.

This is the manager step that, on real FireSim, flashes FPGAs and starts
switch models and simulation controllers (Section III-B3).  Here it
elaborates the *functional* cycle-exact simulation:

* every :class:`~repro.manager.topology.ServerNode` becomes a
  :class:`~repro.swmodel.server.ServerBlade` with an automatically
  assigned node index, MAC, and IP address;
* every :class:`~repro.manager.topology.SwitchNode` becomes a
  :class:`~repro.net.switch.SwitchModel` whose static MAC table is
  populated from the topology (each downlink port maps to the MACs in
  that subtree; unknown MACs go to the uplink port);
* links are created with the runtime-configured latency — changing
  latency, bandwidth, or blade selection requires no "resynthesis",
  mirroring the real flow where only RTL changes rebuild FPGA images.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import ConfigError
from repro.core.clock import TargetClock
from repro.core.fame import Fame5Multiplexer
from repro.core.simulation import Simulation
from repro.manager.topology import ServerNode, SwitchNode, validate_topology
from repro.net.ethernet import mac_address
from repro.net.switch import SwitchConfig, SwitchModel
from repro.swmodel.netstack import NetStackCosts
from repro.swmodel.sched import SchedulerConfig
from repro.swmodel.server import ServerBlade


@dataclass(frozen=True)
class RunFarmConfig:
    """Runtime-configurable network and software parameters.

    All of these can change between runs without rebuilding anything
    (Section I: "network latency, bandwidth, network topology, and blade
    selection can all be configured at runtime").
    """

    link_latency_cycles: int = 6400  # 2 us at 3.2 GHz
    #: Latency for blade <-> switch links only; None (default) uses
    #: ``link_latency_cycles`` everywhere.  Setting these apart makes
    #: the topology latency-heterogeneous, which in a distributed run
    #: exercises the adaptive round quantum: the exchange window is
    #: derived from the partition's *smallest* boundary-link latency,
    #: so short server links with long switch trunks still batch
    #: correctly (paper Fig 9).
    server_link_latency_cycles: Optional[int] = None
    switch_latency_cycles: int = 10
    switch_buffer_flits: int = 16384
    freq_hz: float = 3.2e9
    net_costs: Optional[NetStackCosts] = None
    sched_config: Optional[SchedulerConfig] = None
    #: FAME-5 host-multithreading (Section VIII): map this many simulated
    #: blades onto each physical pipeline.  Functionally transparent —
    #: outputs are cycle-identical to 1 — while modeling the supernode/
    #: FAME-5 capacity option.
    fame5_blades_per_pipeline: int = 1
    #: Round-loop implementation: "scalar" (the reference oracle) or
    #: "batched" (:mod:`repro.perf` — bit-identical, faster on the
    #: host).  Living here means checkpoint-restore re-elaborations
    #: resume with the same engine automatically.
    engine: str = "scalar"

    def __post_init__(self) -> None:
        if self.link_latency_cycles < 1:
            raise ConfigError("link latency must be >= 1 cycle")
        if (
            self.server_link_latency_cycles is not None
            and self.server_link_latency_cycles < 1
        ):
            raise ConfigError("server link latency must be >= 1 cycle")
        if self.fame5_blades_per_pipeline < 1:
            raise ConfigError("FAME-5 multiplexing factor must be >= 1")
        if self.engine not in ("scalar", "batched"):
            raise ConfigError(
                f"unknown engine {self.engine!r}; expected 'scalar' or "
                "'batched'"
            )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (cost-model callbacks excluded).

        ``net_costs``/``sched_config`` carry no JSON representation; a
        config using them cannot travel in a :class:`~repro.serve.job.JobSpec`
        and raises here rather than silently dropping them.
        """
        if self.net_costs is not None or self.sched_config is not None:
            raise ConfigError(
                "RunFarmConfig with custom net_costs/sched_config is not "
                "JSON-serializable; job specs support default costs only"
            )
        return {
            "link_latency_cycles": self.link_latency_cycles,
            "server_link_latency_cycles": self.server_link_latency_cycles,
            "switch_latency_cycles": self.switch_latency_cycles,
            "switch_buffer_flits": self.switch_buffer_flits,
            "freq_hz": self.freq_hz,
            "fame5_blades_per_pipeline": self.fame5_blades_per_pipeline,
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunFarmConfig":
        """Rebuild a config serialized by :meth:`to_dict`."""
        known = {
            "link_latency_cycles", "server_link_latency_cycles",
            "switch_latency_cycles", "switch_buffer_flits", "freq_hz",
            "fame5_blades_per_pipeline", "engine",
        }
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(
                f"unknown RunFarmConfig fields: {sorted(unknown)}"
            )
        return cls(**payload)  # type: ignore[arg-type]


class RunningSimulation:
    """A deployed target cluster: the user-facing handle.

    Exposes the blades (to attach workloads — the moral equivalent of
    SSHing into simulated nodes), the switches (for counters/probes),
    and the underlying :class:`~repro.core.simulation.Simulation`.
    """

    def __init__(
        self,
        simulation: Simulation,
        blades: Dict[int, ServerBlade],
        switches: Dict[int, SwitchModel],
        root: SwitchNode,
        config: RunFarmConfig,
    ) -> None:
        self.simulation = simulation
        self.blades = blades
        self.switches = switches
        self.root = root
        self.config = config

    def blade(self, node_index: int) -> ServerBlade:
        try:
            return self.blades[node_index]
        except KeyError:
            raise LookupError(f"no simulated node {node_index}") from None

    def switch(self, switch_id: int) -> SwitchModel:
        try:
            return self.switches[switch_id]
        except KeyError:
            raise LookupError(f"no simulated switch {switch_id}") from None

    @property
    def num_nodes(self) -> int:
        return len(self.blades)

    def run_seconds(self, seconds: float) -> None:
        self.simulation.run_seconds(seconds)

    def run_cycles(self, cycles: int) -> None:
        self.simulation.run_cycles(cycles)

    def collect_results(self) -> Dict[int, Dict[str, list]]:
        """Per-node measurement stores (the manager's result collection)."""
        return {
            index: dict(blade.results) for index, blade in self.blades.items()
        }


def elaborate(
    root: SwitchNode, config: Optional[RunFarmConfig] = None
) -> RunningSimulation:
    """Build the cycle-exact simulation for a topology."""
    config = config or RunFarmConfig()
    validate_topology(root)
    clock = TargetClock(config.freq_hz)
    simulation = Simulation(clock=clock, engine=config.engine)

    # Assign node indices / MACs / IPs deterministically.
    servers = list(root.iter_servers())
    blades: Dict[int, ServerBlade] = {}
    for index, server in enumerate(servers):
        server.node_index = index
        server.mac = mac_address(index)
        server.ip = f"10.{(index >> 16) & 0xFF}.{(index >> 8) & 0xFF}.{index & 0xFF}"
        blade = ServerBlade(
            name=f"node{index}",
            config=server.server_type,
            mac=server.mac,
            node_index=index,
            net_costs=config.net_costs,
            sched_config=config.sched_config,
            seed=index,
        )
        blades[index] = blade

    # Register blades with the orchestrator: directly, or grouped onto
    # FAME-5 multiplexed pipelines (functionally transparent).
    group = config.fame5_blades_per_pipeline
    net_port_of: Dict[int, tuple] = {}
    if group == 1:
        for index, blade in blades.items():
            simulation.add_model(blade)
            net_port_of[index] = (blade, "net")
    else:
        indices = sorted(blades)
        for start in range(0, len(indices), group):
            members = [blades[i] for i in indices[start : start + group]]
            mux = Fame5Multiplexer(f"fame5-{start // group}", members)
            simulation.add_model(mux)
            for member_index, member in zip(indices[start : start + group], members):
                net_port_of[member_index] = (mux, f"{member.name}.net")

    # Build switches with static MAC tables from the topology.
    switches: Dict[int, SwitchModel] = {}
    for switch in root.iter_switches():
        mac_table: Dict[int, int] = {}
        for port, child in enumerate(switch.downlinks):
            if isinstance(child, ServerNode):
                mac_table[child.mac] = port
            else:
                for server in child.iter_servers():
                    mac_table[server.mac] = port
        default_port = (
            len(switch.downlinks) if switch.uplink is not None else None
        )
        model = SwitchModel(
            name=f"switch{switch.switch_id}",
            config=SwitchConfig(
                num_ports=switch.num_ports,
                min_latency_cycles=config.switch_latency_cycles,
                buffer_flits=config.switch_buffer_flits,
            ),
            mac_table=mac_table,
            default_port=default_port,
        )
        simulation.add_model(model)
        switches[switch.switch_id] = model

    # Wire the links.
    server_latency = (
        config.server_link_latency_cycles
        if config.server_link_latency_cycles is not None
        else config.link_latency_cycles
    )
    for switch in root.iter_switches():
        model = switches[switch.switch_id]
        for port, child in enumerate(switch.downlinks):
            if isinstance(child, ServerNode):
                owner, port_name = net_port_of[child.node_index]
                simulation.connect(
                    owner,
                    port_name,
                    model,
                    f"port{port}",
                    server_latency,
                )
            else:
                child_model = switches[child.switch_id]
                uplink_port = len(child.downlinks)
                simulation.connect(
                    child_model,
                    f"port{uplink_port}",
                    model,
                    f"port{port}",
                    config.link_latency_cycles,
                )

    return RunningSimulation(simulation, blades, switches, root, config)
