"""Programmatic datacenter topology definitions (Section III-B3, Fig. 4).

Users describe a target topology exactly as in the paper's example::

    root = SwitchNode()
    level2switches = [SwitchNode() for x in range(8)]
    servers = [[ServerNode("QuadCore") for y in range(8)] for x in range(8)]

    root.add_downlinks(level2switches)
    for switch, rack in zip(level2switches, servers):
        switch.add_downlinks(rack)

The manager then assigns MAC and IP addresses to every server, populates
each switch's static MAC table, and builds/deploys the simulation.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Sequence, Union

from repro import ConfigError
from repro.tile.soc import config_by_name

TopologyNode = Union["SwitchNode", "ServerNode"]


class ServerNode:
    """One simulated server blade in the target topology.

    Attributes:
        server_type: a named blade configuration ("QuadCore", ...),
            validated against the Rocket Chip config registry.
    """

    def __init__(self, server_type: str = "QuadCore") -> None:
        config_by_name(server_type)  # validate eagerly
        self.server_type = server_type
        self.uplink: Optional["SwitchNode"] = None
        # Assigned by the manager during deployment.
        self.node_index: Optional[int] = None
        self.mac: Optional[int] = None
        self.ip: Optional[str] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServerNode({self.server_type!r}, index={self.node_index})"


class SwitchNode:
    """One switch in the target topology (ToR, aggregation, or root)."""

    _ids = itertools.count()

    def __init__(self) -> None:
        self.switch_id = next(SwitchNode._ids)
        self.downlinks: List[TopologyNode] = []
        self.uplink: Optional["SwitchNode"] = None

    def add_downlinks(self, children: Sequence[TopologyNode]) -> None:
        """Attach children (servers or switches) below this switch."""
        for child in children:
            if child.uplink is not None:
                raise ConfigError(f"{child!r} already has an uplink")
            if child is self:
                raise ConfigError("a switch cannot downlink to itself")
            child.uplink = self
            self.downlinks.append(child)

    # -- traversal ------------------------------------------------------

    def iter_servers(self) -> Iterator[ServerNode]:
        """All servers in this switch's subtree, in deterministic order."""
        for child in self.downlinks:
            if isinstance(child, ServerNode):
                yield child
            else:
                yield from child.iter_servers()

    def iter_switches(self) -> Iterator["SwitchNode"]:
        """This switch and all switches below it (pre-order)."""
        yield self
        for child in self.downlinks:
            if isinstance(child, SwitchNode):
                yield from child.iter_switches()

    @property
    def num_ports(self) -> int:
        """Downlinks plus the uplink port, if any."""
        return len(self.downlinks) + (1 if self.uplink is not None else 0)

    def depth(self) -> int:
        """Levels of switching below (a ToR has depth 1)."""
        child_depths = [
            child.depth()
            for child in self.downlinks
            if isinstance(child, SwitchNode)
        ]
        return 1 + (max(child_depths) if child_depths else 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SwitchNode(id={self.switch_id}, ports={self.num_ports})"


def validate_topology(root: SwitchNode) -> None:
    """Check the topology is a proper tree with at least one server."""
    seen_switches: set[int] = set()
    for switch in root.iter_switches():
        if id(switch) in seen_switches:
            raise ConfigError("topology contains a switch cycle")
        seen_switches.add(id(switch))
        if not switch.downlinks:
            raise ConfigError(f"{switch!r} has no downlinks")
    servers = list(root.iter_servers())
    if not servers:
        raise ConfigError("topology contains no servers")
    if len({id(s) for s in servers}) != len(servers):
        raise ConfigError("a server appears twice in the topology")


# -- canned topologies used throughout the paper ---------------------------


def single_rack(num_servers: int = 8, server_type: str = "QuadCore") -> SwitchNode:
    """N servers behind one ToR switch (the Section IV experiments)."""
    tor = SwitchNode()
    tor.add_downlinks([ServerNode(server_type) for _ in range(num_servers)])
    return tor


def two_tier(
    num_racks: int = 8,
    servers_per_rack: int = 8,
    server_type: str = "QuadCore",
) -> SwitchNode:
    """The Figure 1 topology: racks of servers, ToRs, one root switch."""
    root = SwitchNode()
    tors = [SwitchNode() for _ in range(num_racks)]
    root.add_downlinks(tors)
    for tor in tors:
        tor.add_downlinks(
            [ServerNode(server_type) for _ in range(servers_per_rack)]
        )
    return root


def datacenter_tree(
    num_aggregation: int = 4,
    racks_per_aggregation: int = 8,
    servers_per_rack: int = 32,
    server_type: str = "QuadCore",
) -> SwitchNode:
    """The Figure 10 topology: 1024 nodes under ToR/aggregation/root.

    Defaults give 32 ToR switches x 32 nodes = 1024 quad-core servers,
    4 aggregation switches, and one root switch.
    """
    root = SwitchNode()
    aggs = [SwitchNode() for _ in range(num_aggregation)]
    root.add_downlinks(aggs)
    for agg in aggs:
        tors = [SwitchNode() for _ in range(racks_per_aggregation)]
        agg.add_downlinks(tors)
        for tor in tors:
            tor.add_downlinks(
                [ServerNode(server_type) for _ in range(servers_per_rack)]
            )
    return root
