"""Workload descriptions and result collection (Section III-B3).

The FireSim manager lets users describe *jobs* that run automatically on
simulated cluster nodes, then collects result files and measurements for
analysis outside the simulation — this is how the paper's experiments
(SPECint runs, the memcached/mutilate sweeps) are packaged as reusable
workload descriptions.

A :class:`WorkloadSpec` is a named set of :class:`Job` entries; each job
attaches software to one node (spawning threads or installing bare-metal
handlers).  ``run_workload`` deploys the jobs, advances target time, and
returns the collected per-node measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro import ConfigError
from repro.manager.runfarm import RunningSimulation
from repro.swmodel.server import ServerBlade

#: A job's setup hook: receives the blade it was assigned to.
JobSetup = Callable[[ServerBlade], None]


@dataclass(frozen=True)
class Job:
    """One node's software assignment.

    Attributes:
        node_index: which simulated node runs this job.
        name: job label (shows up in collected results).
        setup: called with the node's blade at deploy time; spawns
            threads / installs handlers / configures the NIC.
    """

    node_index: int
    name: str
    setup: JobSetup


@dataclass
class WorkloadSpec:
    """A named collection of jobs plus a run duration."""

    name: str
    jobs: List[Job] = field(default_factory=list)
    duration_seconds: float = 0.01

    def add_job(self, node_index: int, name: str, setup: JobSetup) -> "WorkloadSpec":
        self.jobs.append(Job(node_index, name, setup))
        return self

    def validate_against(self, sim: RunningSimulation) -> None:
        for job in self.jobs:
            if job.node_index not in sim.blades:
                raise ConfigError(
                    f"workload {self.name!r}: job {job.name!r} targets "
                    f"nonexistent node {job.node_index}"
                )


@dataclass
class WorkloadResult:
    """Everything collected after a workload run."""

    workload_name: str
    target_seconds: float
    node_results: Dict[int, Dict[str, list]]

    def results_for(self, node_index: int) -> Dict[str, list]:
        return self.node_results.get(node_index, {})

    def merged(self, key: str) -> list:
        """Concatenate one result key across all nodes."""
        merged: list = []
        for results in self.node_results.values():
            merged.extend(results.get(key, []))
        return merged


def run_workload(
    sim: RunningSimulation, workload: WorkloadSpec
) -> WorkloadResult:
    """Deploy a workload's jobs, run it, and collect results."""
    workload.validate_against(sim)
    for job in workload.jobs:
        job.setup(sim.blade(job.node_index))
    sim.run_seconds(workload.duration_seconds)
    return WorkloadResult(
        workload_name=workload.name,
        target_seconds=sim.simulation.current_time_s,
        node_results=sim.collect_results(),
    )
