"""Target network: Ethernet, switch models, transports, tracing, functional mode."""
