"""Ethernet-level target network abstractions.

The target link layer in the paper's evaluation is Ethernet: NICs exchange
Ethernet frames with switches, and switches forward on a static MAC
address table (Section III-B1).  Frames here carry an opaque Python
``payload`` object plus an explicit wire size; the timing machinery only
ever uses the size (every 8 bytes of wire size is one 64-bit flit,
Section III-B2), while application models use the payload to carry
semantic content (an ICMP echo, a memcached request, ...).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.core import units
from repro.core.token import Flit

#: Destination address that floods to every port except the ingress port.
BROADCAST_MAC = 0xFFFF_FFFF_FFFF

#: Minimum and maximum Ethernet frame sizes (without FCS preamble detail —
#: the timing model charges header bytes explicitly).
MIN_FRAME_BYTES = 64
MTU_BYTES = 1500
HEADER_BYTES = 14  # dst(6) + src(6) + ethertype(2)
IP_UDP_HEADER_BYTES = 28
IP_TCP_HEADER_BYTES = 40
ICMP_HEADER_BYTES = 8


def mac_address(node_index: int) -> int:
    """Deterministic locally-administered MAC for a simulated node.

    Mirrors the manager's automatic MAC assignment (Section III-B3).
    """
    if not 0 <= node_index < 2**24:
        raise ValueError(f"node index out of range: {node_index}")
    return 0x02_00_00_00_00_00 | node_index


_frame_ids = itertools.count()


@dataclass
class EthernetFrame:
    """A target Ethernet frame.

    Attributes:
        src: source MAC address.
        dst: destination MAC address (may be :data:`BROADCAST_MAC`).
        size_bytes: total wire size including link/IP headers; determines
            how many flits the frame occupies on a link.
        payload: opaque application-level content.
        frame_id: unique id for tracing and test assertions.
        sent_cycle: cycle at which the sending NIC emitted the first flit
            (filled in by the NIC; useful for latency probes).
    """

    src: int
    dst: int
    size_bytes: int
    payload: Any = None
    frame_id: int = field(default_factory=lambda: next(_frame_ids))
    sent_cycle: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size_bytes < MIN_FRAME_BYTES:
            # Ethernet pads runt frames up to the 64-byte minimum.
            self.size_bytes = MIN_FRAME_BYTES
        if self.size_bytes > MTU_BYTES + HEADER_BYTES:
            raise ValueError(
                f"frame of {self.size_bytes} B exceeds MTU "
                f"({MTU_BYTES + HEADER_BYTES} B incl. header); segment first"
            )

    @property
    def flit_count(self) -> int:
        """Number of 64-bit tokens this frame occupies on a link."""
        return units.flits_for_bytes(self.size_bytes)

    def to_flits(self) -> List[Flit]:
        """The frame as an ordered flit sequence (last bit on final flit)."""
        count = self.flit_count
        return [
            Flit(data=self, last=(i == count - 1), index=i)
            for i in range(count)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EthernetFrame(id={self.frame_id}, src={self.src:#x}, "
            f"dst={self.dst:#x}, {self.size_bytes}B)"
        )


def segment_bytes(total_bytes: int, mss: int = MTU_BYTES - IP_TCP_HEADER_BYTES) -> List[int]:
    """Split a byte stream into per-frame payload sizes (TCP-style MSS).

    >>> segment_bytes(3000, mss=1460)
    [1460, 1460, 80]
    """
    if total_bytes < 0:
        raise ValueError(f"total_bytes must be >= 0, got {total_bytes}")
    if mss <= 0:
        raise ValueError(f"mss must be positive, got {mss}")
    sizes = []
    remaining = total_bytes
    while remaining > 0:
        take = min(remaining, mss)
        sizes.append(take)
        remaining -= take
    return sizes
