"""Purely functional network simulation (Section VII).

FireSim "already supports the other extreme of the performance-accuracy
curve — purely functional network simulation — which allows individual
simulated nodes to run at 150+ MHz, while still supporting the transport
of Ethernet frames between simulated nodes."

This module implements that mode: a :class:`FunctionalFabric` replaces
the whole switch fabric with a single delivery element that forwards
complete frames port-to-port with a fixed configured delay — no
store-and-forward serialization, no contention, no per-switch hops.
Frames still arrive whole and in order per flow, so software stacks run
unchanged; what is sacrificed is exactly the network *timing* fidelity
(the token exchange that throttles FAME-1 endpoints), which is why the
host runs so much faster.

``elaborate_functional`` mirrors :func:`repro.manager.runfarm.elaborate`
for any topology: all blades hang off one fabric regardless of the tree,
because in functional mode the tree no longer affects timing.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.fame import Fame1Model
from repro.core.simulation import Simulation
from repro.core.token import TokenWindow
from repro.manager.runfarm import RunFarmConfig, RunningSimulation
from repro.manager.topology import SwitchNode, validate_topology
from repro.net.ethernet import BROADCAST_MAC, EthernetFrame, mac_address
from repro.swmodel.server import ServerBlade


class FunctionalFabric(Fame1Model):
    """Single-hop functional frame delivery between all node ports.

    Each port still speaks the FAME-1 token interface toward its blade
    (so blades are unchanged), but internally a completed frame is
    forwarded as one unit: its last flit is re-emitted on the destination
    port ``delivery_delay_cycles`` after it fully arrived, preceded by
    the rest of the frame's flits back-to-back.
    """

    def __init__(
        self,
        name: str,
        mac_to_port: Dict[int, int],
        delivery_delay_cycles: int = 100,
    ) -> None:
        ports = [f"port{i}" for i in range(len(mac_to_port))]
        super().__init__(name, ports)
        if delivery_delay_cycles < 0:
            raise ValueError("delivery delay must be >= 0")
        self.mac_to_port = dict(mac_to_port)
        self.delivery_delay_cycles = delivery_delay_cycles
        self._partial: Dict[int, list] = {i: [] for i in range(len(ports))}
        # Per-output-port list of (deliver_first_cycle, frame).
        self._pending: Dict[int, list] = {i: [] for i in range(len(ports))}
        self._port_free: Dict[int, int] = {i: 0 for i in range(len(ports))}
        self.frames_forwarded = 0

    def _tick(self, window: TokenWindow, inputs):
        # Ingress: assemble whole frames per port.
        for port_index in range(len(self.ports)):
            batch = inputs[f"port{port_index}"]
            for cycle, flit in batch.iter_flits():
                if flit.last:
                    frame = flit.data
                    self._route(cycle, port_index, frame)

        # Egress: emit pending frames as contiguous flit runs.
        outputs = {}
        for port_index in range(len(self.ports)):
            out = window.new_batch()
            still_pending = []
            for ready_cycle, frame in self._pending[port_index]:
                start = max(
                    ready_cycle, self._port_free[port_index], window.start
                )
                end = start + frame.flit_count
                if start >= window.end:
                    still_pending.append((ready_cycle, frame))
                    continue
                if end > window.end:
                    # Deliver entirely in the next window: functional
                    # mode never splits frames across windows.
                    still_pending.append((max(ready_cycle, window.end), frame))
                    continue
                for index, flit in enumerate(frame.to_flits()):
                    out.add(start + index, flit)
                self._port_free[port_index] = end
                self.frames_forwarded += 1
            self._pending[port_index] = still_pending
            outputs[f"port{port_index}"] = out
        return outputs

    def _route(self, cycle: int, ingress_port: int, frame: EthernetFrame) -> None:
        ready = cycle + self.delivery_delay_cycles
        if frame.dst == BROADCAST_MAC:
            for port in self._pending:
                if port != ingress_port:
                    self._pending[port].append((ready, frame))
            return
        port = self.mac_to_port.get(frame.dst)
        if port is not None:
            self._pending[port].append((ready, frame))


def elaborate_functional(
    root: SwitchNode, config: Optional[RunFarmConfig] = None
) -> RunningSimulation:
    """Elaborate a topology in purely functional network mode."""
    config = config or RunFarmConfig()
    validate_topology(root)
    simulation = Simulation()
    servers = list(root.iter_servers())
    blades: Dict[int, ServerBlade] = {}
    mac_to_port: Dict[int, int] = {}
    for index, server in enumerate(servers):
        server.node_index = index
        server.mac = mac_address(index)
        mac_to_port[server.mac] = index
        blades[index] = ServerBlade(
            name=f"node{index}",
            config=server.server_type,
            mac=server.mac,
            node_index=index,
            net_costs=config.net_costs,
            sched_config=config.sched_config,
            seed=index,
        )
        simulation.add_model(blades[index])
    fabric = FunctionalFabric(
        "fabric", mac_to_port, delivery_delay_cycles=config.switch_latency_cycles
    )
    simulation.add_model(fabric)
    for index, blade in blades.items():
        simulation.connect(
            blade, "net", fabric, f"port{index}", config.link_latency_cycles
        )
    return RunningSimulation(simulation, blades, {}, root, config)
