"""Cycle-by-cycle switch model.

Reproduces the paper's C++ switch model (Section III-B1) as a
:class:`~repro.core.fame.Fame1Model`:

* **Ingress**: each port buffers arriving tokens into full packets.  A
  completed packet is timestamped with the arrival cycle of its *last*
  token plus a configurable minimum switching latency, then placed in an
  input packet queue.
* **Global switching step**: all input packets available in the round are
  pushed through a priority queue sorted on timestamp and drained into the
  appropriate output-port buffers using a static MAC address table
  (datacenter topologies are relatively fixed).  Broadcast frames are
  duplicated to every port except the ingress port.
* **Egress**: per port, packets are "released" into simulation tokens when
  their release timestamp is ≤ global simulation time and there is space
  in the output token stream (one flit per cycle per port, scaled by the
  port's configured bandwidth).  Because the output token budget per round
  is finite, congestion is modeled automatically.  Dropping due to buffer
  sizing is modeled by an upper bound on the delay between a packet's
  release timestamp and the cycle it would actually start transmitting.

The switching algorithm and the Ethernet assumption are not fundamental:
users can subclass and override :meth:`route` (or the ingress/egress
hooks) to model new switch designs, just as FireSim users plug in their
own C++ switching logic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.fame import Fame1Model
from repro.core.token import Flit, TokenBatch, TokenWindow
from repro.net.ethernet import BROADCAST_MAC, EthernetFrame
from repro.obs.trace import get_trace_sink


@dataclass
class SwitchConfig:
    """Runtime-configurable switch parameters (Section III-B1).

    Attributes:
        num_ports: number of switch ports.
        min_latency_cycles: minimum port-to-port switching latency added
            to every packet's timestamp (the evaluation uses 10 cycles).
        cycles_per_flit: egress pacing; 1 means full link rate (200 Gbit/s
            at 3.2 GHz with 64-bit flits), 2 means half rate, etc.
        buffer_flits: bound on how far (in flits ≈ cycles) a packet may
            lag behind its release timestamp before it is dropped — the
            output-buffer sizing model.
    """

    num_ports: int
    min_latency_cycles: int = 10
    cycles_per_flit: int = 1
    buffer_flits: int = 16384

    def __post_init__(self) -> None:
        if self.num_ports < 1:
            raise ValueError(f"switch needs >= 1 port, got {self.num_ports}")
        if self.min_latency_cycles < 0:
            raise ValueError("min switching latency must be >= 0")
        if self.cycles_per_flit < 1:
            raise ValueError("cycles_per_flit must be >= 1")
        if self.buffer_flits < 1:
            raise ValueError("buffer_flits must be >= 1")


@dataclass
class _QueuedPacket:
    """A routed packet waiting in (or draining from) an output buffer."""

    release_cycle: int
    seq: int
    frame: EthernetFrame
    flits_emitted: int = 0

    def __lt__(self, other: "_QueuedPacket") -> bool:
        return (self.release_cycle, self.seq) < (other.release_cycle, other.seq)


@dataclass
class SwitchStats:
    """Counters a switch maintains (also feed the Figure 6 bandwidth probe).

    Byte conservation holds per switch for unicast traffic:
    ``bytes_in == bytes_out + bytes_dropped + queued bytes`` (broadcast
    frames are counted once on ingress but duplicated on egress).
    """

    packets_in: int = 0
    packets_out: int = 0
    packets_dropped: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    bytes_dropped: int = 0
    broadcasts: int = 0


class SwitchModel(Fame1Model):
    """Store-and-forward Ethernet switch as a FAME-1 decoupled model."""

    def __init__(
        self,
        name: str,
        config: SwitchConfig,
        mac_table: Optional[Dict[int, int]] = None,
        default_port: Optional[int] = None,
    ) -> None:
        ports = [f"port{i}" for i in range(config.num_ports)]
        super().__init__(name, ports)
        self.config = config
        #: Static MAC -> output-port-index table (Section III-B3: populated
        #: automatically by the manager from the topology).
        self.mac_table: Dict[int, int] = dict(mac_table or {})
        #: Port used for MACs missing from the table (the uplink in a tree
        #: topology); None means unknown unicast frames are dropped.
        self.default_port = default_port
        self._seq = itertools.count()
        # Per-ingress-port partial packet reassembly.
        self._partial: List[List[Flit]] = [[] for _ in range(config.num_ports)]
        # Per-egress-port packet buffers (heaps on release timestamp).
        self._out_queues: List[List[_QueuedPacket]] = [
            [] for _ in range(config.num_ports)
        ]
        # Per-egress-port next cycle at which a flit may be emitted.
        self._port_next_free: List[int] = [0] * config.num_ports
        self.stats = SwitchStats()
        #: Optional egress log of ``(cycle, bytes)`` used by bandwidth
        #: probes (Figure 6); enable with :meth:`enable_bandwidth_probe`.
        self.egress_log: Optional[List[Tuple[int, int]]] = None

    # -- configuration hooks ----------------------------------------------

    def enable_bandwidth_probe(self) -> None:
        """Record per-packet egress completions for bandwidth-vs-time plots."""
        self.egress_log = []

    def route(self, frame: EthernetFrame, ingress_port: int) -> List[int]:
        """Output port indices for a frame.  Subclass to change switching."""
        if frame.dst == BROADCAST_MAC:
            self.stats.broadcasts += 1
            return [
                p for p in range(self.config.num_ports) if p != ingress_port
            ]
        port = self.mac_table.get(frame.dst, self.default_port)
        if port is None:
            return []
        return [port]

    # -- FAME-1 tick ---------------------------------------------------

    def _tick(
        self, window: TokenWindow, inputs: Dict[str, TokenBatch]
    ) -> Dict[str, TokenBatch]:
        arrivals = self._ingress(inputs)
        self._switching_step(arrivals)
        return self._egress(window)

    # -- phases ---------------------------------------------------------

    def _ingress(
        self, inputs: Dict[str, TokenBatch]
    ) -> List[Tuple[int, int, EthernetFrame]]:
        """Assemble packets; returns (timestamp, ingress_port, frame)."""
        completed: List[Tuple[int, int, EthernetFrame]] = []
        for port_index in range(self.config.num_ports):
            batch = inputs[f"port{port_index}"]
            partial = self._partial[port_index]
            for cycle, flit in batch.iter_flits():
                partial.append(flit)
                if flit.last:
                    frame = flit.data
                    timestamp = cycle + self.config.min_latency_cycles
                    completed.append((timestamp, port_index, frame))
                    self.stats.packets_in += 1
                    self.stats.bytes_in += frame.size_bytes
                    partial.clear()
        return completed

    def _switching_step(
        self, arrivals: List[Tuple[int, int, EthernetFrame]]
    ) -> None:
        """Sort this round's packets by timestamp and route to outputs."""
        pending = list(arrivals)
        heapq.heapify(pending)
        sink = get_trace_sink()
        while pending:
            timestamp, ingress_port, frame = heapq.heappop(pending)
            out_ports = self.route(frame, ingress_port)
            if not out_ports and frame.dst != BROADCAST_MAC:
                # Unroutable unicast: no table entry and no default port
                # (e.g. the destination host was quarantined and remapped).
                # Count it as a drop so byte conservation
                # (bytes_in == bytes_out + bytes_dropped + queued) holds.
                self.stats.packets_dropped += 1
                self.stats.bytes_dropped += frame.size_bytes
                if sink.enabled:
                    sink.target_instant(
                        "drop", "switch", timestamp, track=self.name,
                        args={"frame": frame.frame_id,
                              "in_port": ingress_port,
                              "reason": "unroutable"},
                    )
                continue
            for out_port in out_ports:
                heapq.heappush(
                    self._out_queues[out_port],
                    _QueuedPacket(timestamp, next(self._seq), frame),
                )
                if sink.enabled:
                    sink.target_instant(
                        "enqueue", "switch", timestamp, track=self.name,
                        args={"frame": frame.frame_id,
                              "in_port": ingress_port,
                              "out_port": out_port},
                    )

    def _egress(self, window: TokenWindow) -> Dict[str, TokenBatch]:
        outputs: Dict[str, TokenBatch] = {}
        for port_index in range(self.config.num_ports):
            outputs[f"port{port_index}"] = self._drain_port(port_index, window)
        return outputs

    def _drain_port(self, port_index: int, window: TokenWindow) -> TokenBatch:
        batch = window.new_batch()
        queue = self._out_queues[port_index]
        pace = self.config.cycles_per_flit
        sink = get_trace_sink()
        cursor = max(self._port_next_free[port_index], window.start)
        while queue and cursor < window.end:
            packet = queue[0]
            start = max(cursor, packet.release_cycle)
            if start >= window.end:
                break
            if packet.flits_emitted == 0:
                # Buffer-occupancy drop model: a packet that cannot begin
                # transmission within the buffer bound is dropped.
                lag = start - packet.release_cycle
                if lag > self.config.buffer_flits:
                    heapq.heappop(queue)
                    self.stats.packets_dropped += 1
                    self.stats.bytes_dropped += packet.frame.size_bytes
                    if sink.enabled:
                        sink.target_instant(
                            "drop", "switch", start, track=self.name,
                            args={"frame": packet.frame.frame_id,
                                  "port": port_index, "lag": lag},
                        )
                    continue
            total_flits = packet.frame.flit_count
            cycle = start
            while packet.flits_emitted < total_flits and cycle < window.end:
                is_last = packet.flits_emitted == total_flits - 1
                batch.add(
                    cycle,
                    Flit(
                        data=packet.frame,
                        last=is_last,
                        index=packet.flits_emitted,
                    ),
                )
                packet.flits_emitted += 1
                cycle += pace
            cursor = cycle
            self._port_next_free[port_index] = cycle
            if packet.flits_emitted == total_flits:
                heapq.heappop(queue)
                self.stats.packets_out += 1
                self.stats.bytes_out += packet.frame.size_bytes
                if sink.enabled:
                    sink.target_span(
                        "dequeue", "switch", packet.release_cycle,
                        cycle - pace, track=self.name,
                        args={"frame": packet.frame.frame_id,
                              "port": port_index},
                    )
                if self.egress_log is not None:
                    self.egress_log.append(
                        (cycle - pace, packet.frame.size_bytes)
                    )
            else:
                # Packet straddles the window; resume next round.
                break
        return batch

    # -- inspection -------------------------------------------------------

    def queued_packets(self) -> int:
        """Packets currently buffered across all output ports."""
        return sum(len(q) for q in self._out_queues)

    def queued_bytes(self) -> int:
        """Bytes buffered across all output ports (straddlers count whole)."""
        return sum(
            packet.frame.size_bytes
            for queue in self._out_queues
            for packet in queue
        )

    def register_metrics(self, registry, prefix: Optional[str] = None) -> None:
        """Register this switch's counters under ``switch.<name>.*``."""
        registry.register_source(prefix or f"switch.{self.name}", self.stats)
