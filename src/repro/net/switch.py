"""Cycle-by-cycle switch model.

Reproduces the paper's C++ switch model (Section III-B1) as a
:class:`~repro.core.fame.Fame1Model`:

* **Ingress**: each port buffers arriving tokens into full packets.  A
  completed packet is timestamped with the arrival cycle of its *last*
  token plus a configurable minimum switching latency, then placed in an
  input packet queue.
* **Global switching step**: all input packets available in the round are
  pushed through a priority queue sorted on timestamp and drained into the
  appropriate output-port buffers using a static MAC address table
  (datacenter topologies are relatively fixed).  Broadcast frames are
  duplicated to every port except the ingress port.
* **Egress**: per port, packets are "released" into simulation tokens when
  their release timestamp is ≤ global simulation time and there is space
  in the output token stream (one flit per cycle per port, scaled by the
  port's configured bandwidth).  Because the output token budget per round
  is finite, congestion is modeled automatically.  Dropping due to buffer
  sizing is modeled by an upper bound on the delay between a packet's
  release timestamp and the cycle it would actually start transmitting.

The switching algorithm and the Ethernet assumption are not fundamental:
users can subclass and override :meth:`route` (or the ingress/egress
hooks) to model new switch designs, just as FireSim users plug in their
own C++ switching logic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.fame import Fame1Model
from repro.core.token import Flit, TokenBatch, TokenWindow
from repro.net.ethernet import BROADCAST_MAC, EthernetFrame
from repro.obs.trace import get_trace_sink


@dataclass
class SwitchConfig:
    """Runtime-configurable switch parameters (Section III-B1).

    Attributes:
        num_ports: number of switch ports.
        min_latency_cycles: minimum port-to-port switching latency added
            to every packet's timestamp (the evaluation uses 10 cycles).
        cycles_per_flit: egress pacing; 1 means full link rate (200 Gbit/s
            at 3.2 GHz with 64-bit flits), 2 means half rate, etc.
        buffer_flits: bound on how far (in flits ≈ cycles) a packet may
            lag behind its release timestamp before it is dropped — the
            output-buffer sizing model.
    """

    num_ports: int
    min_latency_cycles: int = 10
    cycles_per_flit: int = 1
    buffer_flits: int = 16384

    def __post_init__(self) -> None:
        if self.num_ports < 1:
            raise ValueError(f"switch needs >= 1 port, got {self.num_ports}")
        if self.min_latency_cycles < 0:
            raise ValueError("min switching latency must be >= 0")
        if self.cycles_per_flit < 1:
            raise ValueError("cycles_per_flit must be >= 1")
        if self.buffer_flits < 1:
            raise ValueError("buffer_flits must be >= 1")


@dataclass
class _QueuedPacket:
    """A routed packet waiting in (or draining from) an output buffer."""

    release_cycle: int
    seq: int
    frame: EthernetFrame
    flits_emitted: int = 0

    def __lt__(self, other: "_QueuedPacket") -> bool:
        return (self.release_cycle, self.seq) < (other.release_cycle, other.seq)


@dataclass
class SwitchStats:
    """Counters a switch maintains (also feed the Figure 6 bandwidth probe).

    Byte conservation holds per switch for unicast traffic:
    ``bytes_in == bytes_out + bytes_dropped + queued bytes`` (broadcast
    frames are counted once on ingress but duplicated on egress).
    """

    packets_in: int = 0
    packets_out: int = 0
    packets_dropped: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    bytes_dropped: int = 0
    broadcasts: int = 0


class _RouteTable(dict):
    """MAC -> port dict that version-stamps every mutation.

    Routing decisions are memoized per flow (src, dst, ingress port);
    the memo snapshots this version and any table edit — rare, e.g. a
    topology remap after host quarantine — invalidates every cached
    flow.  The hot path pays one integer compare per switching step.
    """

    __slots__ = ("version",)

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.version = 0

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        self.version += 1

    def __delitem__(self, key) -> None:
        super().__delitem__(key)
        self.version += 1

    def clear(self) -> None:
        super().clear()
        self.version += 1

    def pop(self, *args):
        result = super().pop(*args)
        self.version += 1
        return result

    def popitem(self):
        result = super().popitem()
        self.version += 1
        return result

    def setdefault(self, key, default=None):
        if key in self:
            return self[key]
        self[key] = default
        return default

    def update(self, *args, **kwargs) -> None:
        super().update(*args, **kwargs)
        self.version += 1


class SwitchModel(Fame1Model):
    """Store-and-forward Ethernet switch as a FAME-1 decoupled model."""

    def __init__(
        self,
        name: str,
        config: SwitchConfig,
        mac_table: Optional[Dict[int, int]] = None,
        default_port: Optional[int] = None,
    ) -> None:
        ports = [f"port{i}" for i in range(config.num_ports)]
        super().__init__(name, ports)
        self.config = config
        # Per-flow routing memo, valid only while route() is not
        # overridden (a subclass may route on anything — never cache it)
        # and the table/default-port are unchanged.
        self._route_cache: Dict[Tuple[int, int, int], Tuple[int, ...]] = {}
        self._route_version = 0
        self._memoize_routes = type(self).route is SwitchModel.route
        # Idle-token elision is only sound while every tick phase is the
        # stock implementation (an all-idle window provably changes no
        # state); subclasses with custom phases always get a full tick.
        cls = type(self)
        self._idle_safe = (
            cls._tick is SwitchModel._tick
            and cls._ingress is SwitchModel._ingress
            and cls._switching_step is SwitchModel._switching_step
            and cls._egress is SwitchModel._egress
            and cls._drain_port is SwitchModel._drain_port
        )
        #: Static MAC -> output-port-index table (Section III-B3: populated
        #: automatically by the manager from the topology).
        self.mac_table = dict(mac_table or {})
        #: Port used for MACs missing from the table (the uplink in a tree
        #: topology); None means unknown unicast frames are dropped.
        self.default_port = default_port
        self._seq = itertools.count()
        # Per-ingress-port partial packet reassembly.
        self._partial: List[List[Flit]] = [[] for _ in range(config.num_ports)]
        # Per-egress-port packet buffers (heaps on release timestamp).
        self._out_queues: List[List[_QueuedPacket]] = [
            [] for _ in range(config.num_ports)
        ]
        # Per-egress-port next cycle at which a flit may be emitted.
        self._port_next_free: List[int] = [0] * config.num_ports
        self.stats = SwitchStats()
        #: Optional egress log of ``(cycle, bytes)`` used by bandwidth
        #: probes (Figure 6); enable with :meth:`enable_bandwidth_probe`.
        self.egress_log: Optional[List[Tuple[int, int]]] = None

    # -- configuration hooks ----------------------------------------------

    @property
    def mac_table(self) -> "_RouteTable":
        return self._mac_table

    @mac_table.setter
    def mac_table(self, table: Dict[int, int]) -> None:
        # Wholesale replacement (tests, topology remaps) gets wrapped in
        # a fresh version-tracked table; the memo restarts from it.
        self._mac_table = (
            table if isinstance(table, _RouteTable) else _RouteTable(table)
        )
        self._invalidate_routes()

    @property
    def default_port(self) -> Optional[int]:
        return self._default_port

    @default_port.setter
    def default_port(self, port: Optional[int]) -> None:
        self._default_port = port
        self._invalidate_routes()

    def _invalidate_routes(self) -> None:
        self._route_cache.clear()
        self._route_version = self._mac_table.version

    @property
    def columnar_safe(self) -> bool:
        """Whether the columnar fast path may shadow this switch.

        The vectorized step in :mod:`repro.perf.switch` reproduces the
        *stock* phases bit-for-bit; any subclass override (custom
        routing, custom phases, custom idle handling) must fall back to
        the scalar tick.
        """
        return (
            self._idle_safe
            and self._memoize_routes
            and type(self).idle_outputs is SwitchModel.idle_outputs
        )

    def enable_bandwidth_probe(self) -> None:
        """Record per-packet egress completions for bandwidth-vs-time plots."""
        self.egress_log = []

    def route(self, frame: EthernetFrame, ingress_port: int) -> List[int]:
        """Output port indices for a frame.  Subclass to change switching."""
        if frame.dst == BROADCAST_MAC:
            self.stats.broadcasts += 1
            return [
                p for p in range(self.config.num_ports) if p != ingress_port
            ]
        port = self.mac_table.get(frame.dst, self.default_port)
        if port is None:
            return []
        return [port]

    # -- FAME-1 tick ---------------------------------------------------

    def _tick(
        self, window: TokenWindow, inputs: Dict[str, TokenBatch]
    ) -> Dict[str, TokenBatch]:
        arrivals = self._ingress(inputs)
        self._switching_step(arrivals)
        return self._egress(window)

    def idle_outputs(
        self, window: TokenWindow
    ) -> Optional[Dict[str, TokenBatch]]:
        """All-empty outputs when nothing is buffered (batched engine).

        With zero valid input tokens and every output queue empty, a
        stock switch tick is a no-op: ingress assembles nothing,
        switching routes nothing, egress drains nothing (pacing cursors
        are only advanced while emitting).  Queued packets — including
        window straddlers — force the full tick so congestion and drop
        modelling stay cycle-exact.
        """
        if not self._idle_safe or any(self._out_queues):
            return None
        return {port: window.new_batch() for port in self.ports}

    def idle_horizon(self) -> Optional[int]:
        """A drained switch only acts on arrival: no spontaneous wake.

        (See :meth:`Fame1Model.idle_outputs` for the protocol.)
        """
        if not self._idle_safe or any(self._out_queues):
            return self.current_cycle
        return None

    # -- phases ---------------------------------------------------------

    def _ingress(
        self, inputs: Dict[str, TokenBatch]
    ) -> List[Tuple[int, int, EthernetFrame]]:
        """Assemble packets; returns (timestamp, ingress_port, frame)."""
        completed: List[Tuple[int, int, EthernetFrame]] = []
        for port_index in range(self.config.num_ports):
            batch = inputs[f"port{port_index}"]
            partial = self._partial[port_index]
            for cycle, flit in batch.iter_flits():
                partial.append(flit)
                if flit.last:
                    frame = flit.data
                    timestamp = cycle + self.config.min_latency_cycles
                    completed.append((timestamp, port_index, frame))
                    self.stats.packets_in += 1
                    self.stats.bytes_in += frame.size_bytes
                    partial.clear()
        return completed

    def _switching_step(
        self, arrivals: List[Tuple[int, int, EthernetFrame]]
    ) -> None:
        """Sort this round's packets by timestamp and route to outputs."""
        pending = list(arrivals)
        heapq.heapify(pending)
        # The sink and its enabled flag are stable within a phase —
        # check once here, not once per packet.
        sink = get_trace_sink()
        sink_on = sink.enabled
        memo = self._route_cache if self._memoize_routes else None
        if memo is not None and self._route_version != self._mac_table.version:
            memo.clear()
            self._route_version = self._mac_table.version
        while pending:
            timestamp, ingress_port, frame = heapq.heappop(pending)
            if memo is None:
                out_ports: Iterable[int] = self.route(frame, ingress_port)
            else:
                flow = (frame.src, frame.dst, ingress_port)
                cached = memo.get(flow)
                if cached is None:
                    cached = tuple(self.route(frame, ingress_port))
                    memo[flow] = cached
                elif frame.dst == BROADCAST_MAC:
                    # route() counts each broadcast it expands; a memo
                    # hit must keep that counter exact.
                    self.stats.broadcasts += 1
                out_ports = cached
            if not out_ports and frame.dst != BROADCAST_MAC:
                # Unroutable unicast: no table entry and no default port
                # (e.g. the destination host was quarantined and remapped).
                # Count it as a drop so byte conservation
                # (bytes_in == bytes_out + bytes_dropped + queued) holds.
                self.stats.packets_dropped += 1
                self.stats.bytes_dropped += frame.size_bytes
                if sink_on:
                    sink.target_instant(
                        "drop", "switch", timestamp, track=self.name,
                        args={"frame": frame.frame_id,
                              "in_port": ingress_port,
                              "reason": "unroutable"},
                    )
                continue
            for out_port in out_ports:
                heapq.heappush(
                    self._out_queues[out_port],
                    _QueuedPacket(timestamp, next(self._seq), frame),
                )
                if sink_on:
                    sink.target_instant(
                        "enqueue", "switch", timestamp, track=self.name,
                        args={"frame": frame.frame_id,
                              "in_port": ingress_port,
                              "out_port": out_port},
                    )

    def _egress(self, window: TokenWindow) -> Dict[str, TokenBatch]:
        # One sink fetch per phase, shared by every port drain.
        sink = get_trace_sink()
        outputs: Dict[str, TokenBatch] = {}
        for port_index in range(self.config.num_ports):
            outputs[f"port{port_index}"] = self._drain_port(
                port_index, window, sink
            )
        return outputs

    def _drain_port(
        self, port_index: int, window: TokenWindow, sink=None
    ) -> TokenBatch:
        batch = window.new_batch()
        queue = self._out_queues[port_index]
        pace = self.config.cycles_per_flit
        if sink is None:
            sink = get_trace_sink()
        sink_on = sink.enabled
        window_end = window.end
        cursor = max(self._port_next_free[port_index], window.start)
        while queue and cursor < window_end:
            packet = queue[0]
            start = max(cursor, packet.release_cycle)
            if start >= window_end:
                break
            if packet.flits_emitted == 0:
                # Buffer-occupancy drop model: a packet that cannot begin
                # transmission within the buffer bound is dropped.
                lag = start - packet.release_cycle
                if lag > self.config.buffer_flits:
                    heapq.heappop(queue)
                    self.stats.packets_dropped += 1
                    self.stats.bytes_dropped += packet.frame.size_bytes
                    if sink_on:
                        sink.target_instant(
                            "drop", "switch", start, track=self.name,
                            args={"frame": packet.frame.frame_id,
                                  "port": port_index, "lag": lag},
                        )
                    continue
            frame = packet.frame
            total_flits = frame.flit_count
            remaining = total_flits - packet.flits_emitted
            cycle = start
            if start + (remaining - 1) * pace < window_end:
                # The window fully contains the rest of the packet:
                # every emitted cycle is provably in-window and unique
                # (cursor only moves forward, one flit per pace step),
                # so skip add()'s per-flit validation and assign into
                # the batch's flit dict directly.
                flits = batch.flits
                index = packet.flits_emitted
                last_index = total_flits - 1
                for _ in range(remaining):
                    flits[cycle] = Flit(
                        data=frame, last=index == last_index, index=index
                    )
                    index += 1
                    cycle += pace
                packet.flits_emitted = total_flits
            else:
                while packet.flits_emitted < total_flits and cycle < window_end:
                    is_last = packet.flits_emitted == total_flits - 1
                    batch.add(
                        cycle,
                        Flit(
                            data=frame,
                            last=is_last,
                            index=packet.flits_emitted,
                        ),
                    )
                    packet.flits_emitted += 1
                    cycle += pace
            cursor = cycle
            self._port_next_free[port_index] = cycle
            if packet.flits_emitted == total_flits:
                heapq.heappop(queue)
                self.stats.packets_out += 1
                self.stats.bytes_out += frame.size_bytes
                if sink_on:
                    sink.target_span(
                        "dequeue", "switch", packet.release_cycle,
                        cycle - pace, track=self.name,
                        args={"frame": frame.frame_id,
                              "port": port_index},
                    )
                if self.egress_log is not None:
                    self.egress_log.append((cycle - pace, frame.size_bytes))
            else:
                # Packet straddles the window; resume next round.
                break
        return batch

    # -- inspection -------------------------------------------------------

    def queued_packets(self) -> int:
        """Packets currently buffered across all output ports."""
        return sum(len(q) for q in self._out_queues)

    def queued_bytes(self) -> int:
        """Bytes buffered across all output ports (straddlers count whole)."""
        return sum(
            packet.frame.size_bytes
            for queue in self._out_queues
            for packet in queue
        )

    def register_metrics(self, registry, prefix: Optional[str] = None) -> None:
        """Register this switch's counters under ``switch.<name>.*``."""
        registry.register_source(prefix or f"switch.{self.name}", self.stats)
