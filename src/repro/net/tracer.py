"""Network tracing and latency probes.

FireSim users "collect performance data that is cycle-exact"; beyond the
application-level measurements, the platform exposes link-level
visibility.  This module provides two composable probes:

* :class:`LinkTracer` — a FAME-1 pass-through model spliced into a link
  that records every packet crossing it with cycle-exact first/last-flit
  timestamps (a pcap with cycle timestamps);
* :class:`LatencyProbe` — matches packets seen at two tracers (by frame
  identity) and reports per-packet one-way latencies, e.g. NIC-to-NIC
  across an arbitrary switch fabric.

A tracer adds **zero target-time distortion**: the two links replacing
the original must carry half its latency each, keeping end-to-end cycle
arithmetic identical — `splice_tracer` handles that and refuses odd
latencies rather than silently skewing them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.fame import Fame1Model
from repro.core.simulation import Simulation
from repro.core.token import TokenBatch, TokenWindow
from repro.net.ethernet import EthernetFrame
from repro.obs.trace import get_trace_sink


@dataclass
class PacketRecord:
    """One packet crossing a tracer in one direction."""

    frame_id: int
    src: int
    dst: int
    size_bytes: int
    direction: str  # "a_to_b" or "b_to_a"
    first_flit_cycle: int
    last_flit_cycle: int


class LinkTracer(Fame1Model):
    """A transparent bump-in-the-wire packet recorder."""

    def __init__(self, name: str) -> None:
        super().__init__(name, ["a", "b"])
        self.records: List[PacketRecord] = []
        self._partial: Dict[str, Tuple[int, int]] = {}  # port -> (first, frame)

    def _forward(
        self, window: TokenWindow, batch: TokenBatch, in_port: str, direction: str
    ) -> TokenBatch:
        out = window.new_batch()
        for cycle, flit in batch.iter_flits():
            out.add(cycle, flit)
            key = in_port
            if key not in self._partial:
                self._partial[key] = (cycle, id(flit.data))
            if flit.last:
                first_cycle, _ = self._partial.pop(key)
                frame = flit.data
                if isinstance(frame, EthernetFrame):
                    self.records.append(
                        PacketRecord(
                            frame_id=frame.frame_id,
                            src=frame.src,
                            dst=frame.dst,
                            size_bytes=frame.size_bytes,
                            direction=direction,
                            first_flit_cycle=first_cycle,
                            last_flit_cycle=cycle,
                        )
                    )
                    sink = get_trace_sink()
                    if sink.enabled:
                        sink.target_span(
                            direction, "net", first_cycle, cycle,
                            track=f"tracer.{self.name}",
                            args={"frame": frame.frame_id,
                                  "bytes": frame.size_bytes},
                        )
        return out

    def _tick(self, window, inputs):
        return {
            "b": self._forward(window, inputs["a"], "a", "a_to_b"),
            "a": self._forward(window, inputs["b"], "b", "b_to_a"),
        }

    def idle_outputs(self, window):
        """Pass-through of an all-idle window records nothing.

        Forwarding two empty batches touches neither the packet log nor
        the partial-packet state, so the batched engine may skip the
        tick; subclasses with custom forwarding always tick.
        """
        if (
            type(self)._tick is not LinkTracer._tick
            or type(self)._forward is not LinkTracer._forward
        ):
            return None
        return {"a": window.new_batch(), "b": window.new_batch()}

    def packets(self, direction: Optional[str] = None) -> List[PacketRecord]:
        if direction is None:
            return list(self.records)
        return [r for r in self.records if r.direction == direction]


def splice_tracer(
    sim: Simulation,
    model_a: Fame1Model,
    port_a: str,
    model_b: Fame1Model,
    port_b: str,
    latency_cycles: int,
    name: str = "tracer",
) -> LinkTracer:
    """Connect two ports through a tracer without changing total latency.

    The tracer takes the place of a direct ``latency_cycles`` link by
    splitting it into two half-latency hops.  Odd latencies are rejected
    (splitting them would skew cycle arithmetic by one).
    """
    if latency_cycles % 2 != 0:
        raise ValueError(
            f"cannot splice a tracer into an odd link latency "
            f"({latency_cycles}); use an even latency"
        )
    half = latency_cycles // 2
    tracer = LinkTracer(name)
    sim.add_model(tracer)
    sim.connect(model_a, port_a, tracer, "a", half)
    sim.connect(tracer, "b", model_b, port_b, half)
    return tracer


class LatencyProbe:
    """One-way latency between two tracers (matched by frame id)."""

    def __init__(self, ingress: LinkTracer, egress: LinkTracer) -> None:
        self.ingress = ingress
        self.egress = egress

    def latencies(
        self, ingress_direction: str = "a_to_b", egress_direction: str = "a_to_b"
    ) -> List[int]:
        """Last-flit-to-last-flit latency per packet seen at both points."""
        sent = {
            r.frame_id: r.last_flit_cycle
            for r in self.ingress.packets(ingress_direction)
        }
        out = []
        for record in self.egress.packets(egress_direction):
            if record.frame_id in sent:
                out.append(record.last_flit_cycle - sent[record.frame_id])
        return out
