"""Host-platform token transports.

FireSim moves token batches over three physical transports (Section
III-B2):

* **PCIe (EDMA)** between the FPGA and the simulation controller on the
  host CPU of an F1 instance;
* **shared memory** between a simulation controller and a co-located
  switch model (zero-copy);
* **TCP sockets** between switch models / controllers on different hosts.

In this reproduction, the *functional* token exchange happens in-process
(the :class:`~repro.core.simulation.Simulation` orchestrator), so these
classes carry the *performance* characteristics of each transport: the
host latency and bandwidth that determine how fast a round of the
distributed simulation can complete.  They are consumed by
:mod:`repro.host.perfmodel` to produce the simulation-rate curves of
Figures 8 and 9, and by the manager when it maps links onto hosts.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core import units


class TransportKind(Enum):
    """The physical transports of Section III-B2."""

    PCIE = "pcie"
    SHARED_MEMORY = "shm"
    SOCKET = "socket"
    LOOPBACK = "loopback"  # endpoints inside the same FPGA (supernode)


@dataclass(frozen=True)
class TransportSpec:
    """Performance envelope of one host transport hop.

    Attributes:
        kind: which physical transport this is.
        one_way_latency_s: fixed host latency to initiate one batch move.
        bandwidth_bytes_per_s: sustained copy bandwidth for batch payloads.
    """

    kind: TransportKind
    one_way_latency_s: float
    bandwidth_bytes_per_s: float

    def batch_move_time_s(self, batch_bytes: int) -> float:
        """Wall-clock host time to move one token batch across this hop."""
        if batch_bytes < 0:
            raise ValueError(f"batch bytes must be >= 0, got {batch_bytes}")
        return self.one_way_latency_s + batch_bytes / self.bandwidth_bytes_per_s


# Calibrated envelopes for the EC2 F1 host platform.  Latencies are the
# dominant term for low-latency target links (Section III-B2: "Since
# latency is the dominant factor, we also do not employ any form of token
# compression").
PCIE_EDMA = TransportSpec(
    kind=TransportKind.PCIE,
    one_way_latency_s=12e-6,
    bandwidth_bytes_per_s=3.0e9,
)

SHM = TransportSpec(
    kind=TransportKind.SHARED_MEMORY,
    one_way_latency_s=1.5e-6,
    bandwidth_bytes_per_s=8.0e9,
)

TCP_SOCKET = TransportSpec(
    kind=TransportKind.SOCKET,
    one_way_latency_s=55e-6,
    bandwidth_bytes_per_s=25e9 / 8,  # 25 Gbit/s instance networking
)

LOOPBACK = TransportSpec(
    kind=TransportKind.LOOPBACK,
    one_way_latency_s=0.0,
    bandwidth_bytes_per_s=float("inf"),
)


def tokens_to_bytes(token_count: int, flit_bytes: int = units.FLIT_BYTES) -> int:
    """Host bytes occupied by a batch of tokens.

    Each token moves its 64-bit payload plus one metadata byte (valid +
    last bits, padded); FireSim does not compress empty tokens, so a batch
    always occupies ``latency`` tokens regardless of traffic.
    """
    if token_count < 0:
        raise ValueError(f"token count must be >= 0, got {token_count}")
    return token_count * (flit_bytes + 1)
