"""Host-platform token transports.

FireSim moves token batches over three physical transports (Section
III-B2):

* **PCIe (EDMA)** between the FPGA and the simulation controller on the
  host CPU of an F1 instance;
* **shared memory** between a simulation controller and a co-located
  switch model (zero-copy);
* **TCP sockets** between switch models / controllers on different hosts.

In this reproduction, the *functional* token exchange happens in-process
(the :class:`~repro.core.simulation.Simulation` orchestrator), so these
classes carry the *performance* characteristics of each transport: the
host latency and bandwidth that determine how fast a round of the
distributed simulation can complete.  They are consumed by
:mod:`repro.host.perfmodel` to produce the simulation-rate curves of
Figures 8 and 9, and by the manager when it maps links onto hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List

from repro import ConfigError
from repro.core import units


class TransportKind(Enum):
    """The physical transports of Section III-B2."""

    PCIE = "pcie"
    SHARED_MEMORY = "shm"
    SOCKET = "socket"
    LOOPBACK = "loopback"  # endpoints inside the same FPGA (supernode)
    PIPE = "pipe"  # OS pipe between worker processes on one host


@dataclass(frozen=True)
class TransportSpec:
    """Performance envelope of one host transport hop.

    Attributes:
        kind: which physical transport this is.
        one_way_latency_s: fixed host latency to initiate one batch move.
        bandwidth_bytes_per_s: sustained copy bandwidth for batch payloads.
    """

    kind: TransportKind
    one_way_latency_s: float
    bandwidth_bytes_per_s: float

    def batch_move_time_s(self, batch_bytes: int) -> float:
        """Wall-clock host time to move one token batch across this hop."""
        if batch_bytes < 0:
            raise ValueError(f"batch bytes must be >= 0, got {batch_bytes}")
        return self.one_way_latency_s + batch_bytes / self.bandwidth_bytes_per_s


# Calibrated envelopes for the EC2 F1 host platform.  Latencies are the
# dominant term for low-latency target links (Section III-B2: "Since
# latency is the dominant factor, we also do not employ any form of token
# compression").
PCIE_EDMA = TransportSpec(
    kind=TransportKind.PCIE,
    one_way_latency_s=12e-6,
    bandwidth_bytes_per_s=3.0e9,
)

SHM = TransportSpec(
    kind=TransportKind.SHARED_MEMORY,
    one_way_latency_s=1.5e-6,
    bandwidth_bytes_per_s=8.0e9,
)

TCP_SOCKET = TransportSpec(
    kind=TransportKind.SOCKET,
    one_way_latency_s=55e-6,
    bandwidth_bytes_per_s=25e9 / 8,  # 25 Gbit/s instance networking
)

LOOPBACK = TransportSpec(
    kind=TransportKind.LOOPBACK,
    one_way_latency_s=0.0,
    bandwidth_bytes_per_s=float("inf"),
)

#: Token exchange between :mod:`repro.dist` worker processes on one
#: host: a pickled batch over an OS pipe.  Cheaper than TCP between
#: instances, dearer than shared memory.  Calibrated by measuring
#: ``multiprocessing`` queue transfers (small-message one-way ~20 us,
#: 57 KB batches ~5 GB/s).  The distributed engine's critical-path
#: model charges the latency once per token *exchange*, amortized over
#: the rounds the exchange covers (each queue's feeder thread pickles
#: and sends in parallel, so per-peer hops overlap) and the bandwidth
#: term on the actual sparse wire payload per boundary link.
WORKER_PIPE = TransportSpec(
    kind=TransportKind.PIPE,
    one_way_latency_s=20e-6,
    bandwidth_bytes_per_s=5.0e9,
)

#: Token exchange between :mod:`repro.dist` worker processes over a
#: :class:`multiprocessing.shared_memory` ring (:mod:`repro.dist.shm`)
#: — the reproduction of FireSim's zero-copy shared-memory hop between
#: co-located endpoints (Section III-B2), applied to worker pairs
#: instead of controller/switch pairs.  No feeder thread, no syscall
#: per message: the latency is a cursor publish plus the consumer's
#: wakeup from an adaptive-backoff spin, and the bandwidth is memcpy
#: into the mapped segment.  Both transports now ship the coalesced
#: :mod:`repro.dist.frame` payload — one 25-byte entry-table row per
#: window, one cycle column, one flit blob per exchange — but the ring
#: still wins on latency: no feeder thread and no kernel copy.
SHM_RING = TransportSpec(
    kind=TransportKind.SHARED_MEMORY,
    one_way_latency_s=2e-6,
    bandwidth_bytes_per_s=10.0e9,
)


@dataclass
class HeartbeatMonitor:
    """Liveness tracking for socket-transport peers.

    Simulation controllers on different hosts exchange token batches
    over TCP; a host that stops answering is indistinguishable from one
    that is merely slow until enough heartbeat intervals pass.  The
    monitor counts consecutive misses per host and declares a host dead
    after ``misses_to_dead`` of them, at which point the manager
    quarantines it and remaps its blades.

    Attributes:
        spec: the transport the heartbeats travel over (sets the floor
            on detection latency).
        interval_s: heartbeat period.
        misses_to_dead: consecutive missed beats before a host is
            declared dead.
    """

    spec: TransportSpec = TCP_SOCKET
    interval_s: float = 1.0
    misses_to_dead: int = 3
    _misses: Dict[str, int] = field(default_factory=dict, repr=False)
    dead: List[str] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ConfigError(
                f"heartbeat interval must be > 0, got {self.interval_s}"
            )
        if self.misses_to_dead < 1:
            raise ConfigError(
                f"misses_to_dead must be >= 1, got {self.misses_to_dead}"
            )

    def beat(self, host: str) -> None:
        """A heartbeat arrived; the host's consecutive-miss count resets."""
        self._misses.pop(host, None)

    def miss(self, host: str) -> bool:
        """One heartbeat interval passed silently; True if host now dead."""
        if host in self.dead:
            return True
        count = self._misses.get(host, 0) + 1
        self._misses[host] = count
        if count >= self.misses_to_dead:
            self.dead.append(host)
            return True
        return False

    def misses(self, host: str) -> int:
        return self._misses.get(host, 0)

    def is_dead(self, host: str) -> bool:
        return host in self.dead

    @property
    def detection_latency_s(self) -> float:
        """Worst-case time from silent death to declared-dead.

        A host can die right after a beat, so detection takes the full
        ``misses_to_dead`` intervals plus one heartbeat's transport time.
        """
        return (
            self.misses_to_dead * self.interval_s
            + self.spec.one_way_latency_s
        )


def tokens_to_bytes(token_count: int, flit_bytes: int = units.FLIT_BYTES) -> int:
    """Host bytes occupied by a batch of tokens.

    Each token moves its 64-bit payload plus one metadata byte (valid +
    last bits, padded); FireSim does not compress empty tokens, so a batch
    always occupies ``latency`` tokens regardless of traffic.
    """
    if token_count < 0:
        raise ValueError(f"token count must be >= 0, got {token_count}")
    return token_count * (flit_bytes + 1)
