"""The integrated 200 Gbit/s NIC: controller, send/receive paths, rate limiter."""
