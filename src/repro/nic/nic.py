"""Network Interface Controller model (Section III-A2, Figure 3).

The NIC is integrated on-die and connects to the Rocket Chip's TileLink
interconnect, reading and writing packet data directly in the shared L2.
It is split into three blocks, all modeled here:

* **Controller** — send/receive request queues and completion queues,
  exposed to the CPU as MMIO registers, plus an interrupt line asserted
  while a completion queue is occupied.
* **Send path** — *reader* (issues memory reads for packet data),
  *reservation buffer* (absorbs out-of-order memory responses; modeled by
  the bandwidth-limited pipelined DMA in
  :meth:`repro.tile.caches.MemoryHierarchy.dma_access`), *aligner* (fixed
  shift latency), and *rate limiter* (token bucket,
  :class:`~repro.nic.ratelimit.TokenBucketLimiter`).
* **Receive path** — *packet buffer* (drops at full-packet granularity
  when out of space, so the OS never sees partial packets) and *writer*
  (DMA into receive buffers posted by the driver; completion + interrupt
  after all writes retire).

The NIC's top-level interface is FAME-1 decoupled: the owning server
blade feeds it one window of input tokens per tick and collects one
window of output tokens (Section III-A2, last paragraph).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.core.token import Flit, TokenBatch, TokenWindow
from repro.nic.ratelimit import TokenBucketLimiter
from repro.net.ethernet import EthernetFrame
from repro.tile.caches import MemoryHierarchy

#: Interrupt kinds delivered to the driver.
IRQ_RX = "rx"
IRQ_TX = "tx"

InterruptHandler = Callable[[int, str, Optional[EthernetFrame]], None]


@dataclass(frozen=True)
class NICConfig:
    """NIC microarchitectural parameters.

    Attributes:
        packet_buffer_bytes: receive-side packet buffer capacity; packets
            are dropped whole when it is full (Section III-A2).
        controller_latency_cycles: MMIO request-to-reader handoff latency.
        aligner_latency_cycles: shift latency of the aligner stage.
        reader_overhead_cycles: per-packet send-path overhead (descriptor
            fetch, completion writeback); together with the DMA bandwidth
            this bounds a single NIC at ~100 Gbit/s for MTU frames, the
            paper's measured bare-metal limit (Section IV-C).
        writer_latency_cycles: receive-path fixed latency before DMA.
        rx_descriptors: receive buffers the driver posts initially.
    """

    packet_buffer_bytes: int = 64 * 1024
    controller_latency_cycles: int = 8
    aligner_latency_cycles: int = 4
    reader_overhead_cycles: int = 190
    writer_latency_cycles: int = 8
    rx_descriptors: int = 128


@dataclass
class NICStats:
    tx_frames: int = 0
    rx_frames: int = 0
    tx_bytes: int = 0
    rx_bytes: int = 0
    rx_dropped_frames: int = 0
    rx_dropped_bytes: int = 0


@dataclass
class _TxPacket:
    frame: EthernetFrame
    ready_cycle: int
    flits_emitted: int = 0


@dataclass
class _RxPacket:
    frame: EthernetFrame
    arrival_cycle: int


class NIC:
    """The server blade's integrated 200 Gbit/s Ethernet NIC."""

    def __init__(
        self,
        name: str,
        dma: MemoryHierarchy,
        config: Optional[NICConfig] = None,
    ) -> None:
        self.name = name
        self.dma = dma
        self.config = config or NICConfig()
        self.limiter = TokenBucketLimiter(1, 1)  # unlimited by default
        self.stats = NICStats()
        self.interrupt_handler: Optional[InterruptHandler] = None

        # Send path state.
        self._tx_queue: Deque[_TxPacket] = deque()
        self._reader_free_cycle = 0
        self._emit_cursor = 0

        # Receive path state.
        self._rx_partial: List[Flit] = []
        self._rx_buffer_occupancy = 0
        self._rx_waiting: Deque[_RxPacket] = deque()
        self._rx_descriptors = self.config.rx_descriptors
        self._writer_free_cycle = 0
        #: (completion_cycle, frame) entries the driver pops on interrupt.
        self.rx_completions: Deque[tuple[int, EthernetFrame]] = deque()
        self.tx_completions: Deque[tuple[int, EthernetFrame]] = deque()

    # -- runtime configuration ----------------------------------------------

    def set_bandwidth(self, k: int, p: int) -> None:
        """Reconfigure the token-bucket rate limiter at runtime."""
        self.limiter.set_rate(k, p)

    # -- controller: CPU-facing queues ---------------------------------------

    def post_send(self, cycle: int, frame: EthernetFrame, buffer_addr: int = 0x9000_0000) -> None:
        """CPU writes (address, length) to the send request queue.

        The reader then DMAs the packet out of memory; the packet becomes
        eligible for transmission once its data has traversed the
        reservation buffer and aligner.
        """
        issue = cycle + self.config.controller_latency_cycles
        dma_start = max(issue, self._reader_free_cycle)
        dma_done = self.dma.dma_access(
            dma_start, buffer_addr, frame.size_bytes, is_write=False
        )
        self._reader_free_cycle = dma_done + self.config.reader_overhead_cycles
        ready = dma_done + self.config.aligner_latency_cycles
        self._tx_queue.append(_TxPacket(frame, ready))
        self.tx_completions.append((dma_done, frame))
        if self.interrupt_handler is not None:
            self.interrupt_handler(dma_done, IRQ_TX, frame)

    def post_recv_descriptors(self, cycle: int, count: int) -> None:
        """CPU posts receive buffer addresses to the receive request queue."""
        if count < 0:
            raise ValueError(f"descriptor count must be >= 0, got {count}")
        self._rx_descriptors += count
        self._drain_rx_waiting(cycle)

    # -- FAME-1 token interface (called by the owning blade) ---------------

    def fill_tx(self, window: TokenWindow, batch: TokenBatch) -> None:
        """Emit send-path flits into the blade's output token window."""
        cursor = max(self._emit_cursor, window.start)
        while self._tx_queue:
            packet = self._tx_queue[0]
            total = packet.frame.flit_count
            start = max(cursor, packet.ready_cycle)
            if start >= window.end:
                break
            flit_cycle = start
            while packet.flits_emitted < total:
                send_at = self.limiter.next_send_cycle(flit_cycle)
                if send_at >= window.end:
                    cursor = send_at
                    self._emit_cursor = cursor
                    return
                if packet.flits_emitted == 0 and packet.frame.sent_cycle is None:
                    packet.frame.sent_cycle = send_at
                batch.add(
                    send_at,
                    Flit(
                        data=packet.frame,
                        last=packet.flits_emitted == total - 1,
                        index=packet.flits_emitted,
                    ),
                )
                self.limiter.consume(send_at)
                packet.flits_emitted += 1
                flit_cycle = send_at + 1
            cursor = flit_cycle
            self._tx_queue.popleft()
            self.stats.tx_frames += 1
            self.stats.tx_bytes += packet.frame.size_bytes
        self._emit_cursor = cursor

    def receive_tokens(self, batch: TokenBatch) -> None:
        """Consume one window of input tokens (receive path ingress)."""
        for cycle, flit in batch.iter_flits():
            self._rx_partial.append(flit)
            if flit.last:
                frame = flit.data
                self._rx_partial.clear()
                self._rx_packet(cycle, frame)

    # -- receive path ----------------------------------------------------

    def _rx_packet(self, cycle: int, frame: EthernetFrame) -> None:
        if (
            self._rx_buffer_occupancy + frame.size_bytes
            > self.config.packet_buffer_bytes
        ):
            # Cannot backpressure Ethernet: drop the whole packet so the
            # OS never sees an incomplete one (Section III-A2).
            self.stats.rx_dropped_frames += 1
            self.stats.rx_dropped_bytes += frame.size_bytes
            return
        self._rx_buffer_occupancy += frame.size_bytes
        self._rx_waiting.append(_RxPacket(frame, cycle))
        self._drain_rx_waiting(cycle)

    def _drain_rx_waiting(self, cycle: int) -> None:
        while self._rx_waiting and self._rx_descriptors > 0:
            packet = self._rx_waiting.popleft()
            self._rx_descriptors -= 1
            start = max(
                packet.arrival_cycle + self.config.writer_latency_cycles,
                self._writer_free_cycle,
                cycle,
            )
            done = self.dma.dma_access(
                start, 0xA000_0000, packet.frame.size_bytes, is_write=True
            )
            self._writer_free_cycle = done
            self._rx_buffer_occupancy -= packet.frame.size_bytes
            self.rx_completions.append((done, packet.frame))
            self.stats.rx_frames += 1
            self.stats.rx_bytes += packet.frame.size_bytes
            if self.interrupt_handler is not None:
                self.interrupt_handler(done, IRQ_RX, packet.frame)

    # -- inspection --------------------------------------------------------

    def register_metrics(self, registry, prefix: Optional[str] = None) -> None:
        """Register tx/rx/drop counters under ``nic.<name>.*``."""
        registry.register_source(prefix or f"nic.{self.name}", self.stats)

    @property
    def tx_backlog(self) -> int:
        """Frames queued in the send path, including the one in flight."""
        return len(self._tx_queue)

    @property
    def rx_buffer_occupancy(self) -> int:
        return self._rx_buffer_occupancy
