"""NIC rate limiter: the token-bucket of Section III-A2.

The limiter holds a counter that is decremented every time a network flit
is sent and incremented by ``k`` every ``p`` cycles.  Flits can be
forwarded from input to output so long as the count is greater than zero,
making the effective bandwidth ``k/p`` times the unlimited rate.  ``k``
and ``p`` are set at runtime, allowing simulation of different bandwidths
without resynthesizing RTL.  Unlike external throttling, this internal
throttling backpressures the NIC, so it behaves as if it actually operated
at the set bandwidth.

The implementation is event-driven but *cycle-exact*: credit arrivals are
computed arithmetically at the cycles where the hardware counter would
tick, so the admitted flit schedule is identical to a per-cycle loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Tuple


def rate_settings_for_bandwidth(
    target_bps: float, link_bps: float
) -> Tuple[int, int]:
    """Pick (k, p) so that ``k/p`` of the link rate equals ``target_bps``.

    Uses the smallest exact integer ratio.  For the paper's standard
    Ethernet bandwidths on a 204.8 Gbit/s link (3.2 GHz x 64 bit):

    >>> rate_settings_for_bandwidth(100e9, 204.8e9)
    (125, 256)
    >>> rate_settings_for_bandwidth(40e9, 204.8e9)
    (25, 128)
    """
    if not 0 < target_bps <= link_bps:
        raise ValueError(
            f"target bandwidth {target_bps} must be in (0, {link_bps}]"
        )
    frac = Fraction(target_bps / link_bps).limit_denominator(4096)
    return frac.numerator, frac.denominator


class TokenBucketLimiter:
    """Cycle-exact token-bucket pacing for NIC egress."""

    def __init__(self, k: int = 1, p: int = 1, cap: Optional[int] = None) -> None:
        self.set_rate(k, p, cap)
        self._count = self.cap  # bucket starts full
        self._applied_periods = 0

    def set_rate(self, k: int, p: int, cap: Optional[int] = None) -> None:
        """Runtime reconfiguration (no RTL resynthesis needed)."""
        if k < 1 or p < 1:
            raise ValueError(f"k and p must be >= 1, got k={k}, p={p}")
        if k > p:
            raise ValueError(
                f"k={k} > p={p} would exceed the unlimited link rate"
            )
        self.k = k
        self.p = p
        self.cap = cap if cap is not None else max(k, 1)
        if cap is not None and cap < 1:
            raise ValueError(f"cap must be >= 1, got {cap}")

    @property
    def rate_fraction(self) -> float:
        """Effective bandwidth as a fraction of the unlimited link rate."""
        return self.k / self.p

    def _advance(self, cycle: int) -> None:
        periods = cycle // self.p
        if periods > self._applied_periods:
            earned = (periods - self._applied_periods) * self.k
            self._count = min(self.cap, self._count + earned)
            self._applied_periods = periods

    def next_send_cycle(self, cycle: int) -> int:
        """Earliest cycle >= ``cycle`` at which a flit may be forwarded."""
        if cycle < 0:
            raise ValueError(f"cycle must be >= 0, got {cycle}")
        self._advance(cycle)
        if self._count > 0:
            return cycle
        # Counter is zero: the next credit arrives at the next period tick.
        return (self._applied_periods + 1) * self.p

    def consume(self, cycle: int) -> None:
        """Record a flit forwarded at ``cycle`` (must be admissible)."""
        self._advance(cycle)
        if self._count <= 0:
            raise RuntimeError(
                f"flit sent at cycle {cycle} with empty token bucket"
            )
        self._count -= 1

    @property
    def available(self) -> int:
        """Tokens currently in the bucket (as of the last advance)."""
        return self._count
