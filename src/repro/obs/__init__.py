"""Unified telemetry: metrics, structured tracing, and rate profiling.

FireSim's operational story is *visibility into a running cluster
simulation*: the paper reports achieved simulation rate (MHz), switch
and link utilization, and per-blade activity (Strober sampling,
Sections III-B2/V).  This package is the reproduction's single place to
collect all of that:

* :mod:`repro.obs.metrics` — a registry of counters/gauges/histograms
  with hierarchical dotted names (``sim.rounds``,
  ``switch.tor.packets_dropped``, ``blade.node0.l2.misses``),
  snapshot/delta reads, and JSON + CSV export.  Existing stats
  dataclasses register themselves as *sources* without changing their
  public APIs.
* :mod:`repro.obs.trace` — a process-wide :class:`TraceSink` emitting
  Chrome ``trace_event`` JSON with separate target-time and host-time
  tracks, loadable in ``chrome://tracing`` / Perfetto.  The default sink
  is a no-op whose only cost at each instrumentation point is one
  attribute check.
* :mod:`repro.obs.rate` — a :class:`RateMonitor` that measures
  wall-clock per simulation quantum and reports achieved MHz plus
  per-model host-time shares: the *measured* counterpart to
  :class:`repro.host.perfmodel.SimulationRateModel`'s predictions.
* :mod:`repro.obs.prof` — the distributed round-phase profiler:
  per-worker :class:`PhaseRecorder` rings, fork-time
  :class:`ClockSync`, and the aggregated :class:`PhaseReport` with
  critical-path attribution (the measured decomposition behind the
  paper's Section VI scaling discussion).
* :mod:`repro.obs.export` — ``metrics.json`` / ``trace.json`` /
  ``phase_report.json`` dumps (validated by
  ``scripts/check_telemetry.py``).
* :mod:`repro.obs.session` — :class:`TelemetrySession`, the bundle the
  manager wires through its lifecycle verbs.

Nothing in this package imports from other ``repro`` subpackages, so any
layer may depend on it.
"""

from repro.obs.export import dump_telemetry
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.prof import (
    PHASES,
    PROFILE_SCHEMA,
    WORKER_PID_BASE,
    ClockSync,
    PhaseRecorder,
    PhaseReport,
    ProbeRecorder,
    ProfileConfig,
    WorkerProfile,
)
from repro.obs.rate import RateMonitor, RateReport
from repro.obs.session import TelemetrySession
from repro.obs.trace import (
    ChromeTraceSink,
    NullTraceSink,
    TraceSink,
    get_trace_sink,
    set_trace_sink,
)

__all__ = [
    "PHASES",
    "PROFILE_SCHEMA",
    "WORKER_PID_BASE",
    "ChromeTraceSink",
    "ClockSync",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTraceSink",
    "PhaseRecorder",
    "PhaseReport",
    "ProbeRecorder",
    "ProfileConfig",
    "RateMonitor",
    "RateReport",
    "TelemetrySession",
    "TraceSink",
    "WorkerProfile",
    "dump_telemetry",
    "get_trace_sink",
    "set_trace_sink",
]
