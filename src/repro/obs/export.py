"""Telemetry export: ``metrics.json`` + ``trace.json`` artifacts.

The manager's ``--telemetry-out DIR`` flag funnels through
:func:`dump_telemetry`; ``scripts/check_telemetry.py`` validates the
emitted files (the CI smoke test), and EXPERIMENTS.md figures can be
regenerated from ``metrics.json``/``metrics.csv`` without re-running a
simulation.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import ChromeTraceSink

METRICS_FILE = "metrics.json"
METRICS_CSV_FILE = "metrics.csv"
TRACE_FILE = "trace.json"
PROFILE_FILE = "phase_report.json"


def dump_telemetry(
    out_dir: str,
    registry: MetricsRegistry,
    sink: Optional[ChromeTraceSink] = None,
    extra: Optional[Dict[str, Any]] = None,
    phase_report: Optional[Dict[str, Any]] = None,
) -> Dict[str, str]:
    """Write metrics (JSON + CSV) and, if traced, the Chrome trace.

    ``phase_report`` — a serialized
    :class:`~repro.obs.prof.PhaseReport` from a profiled distributed
    run — additionally lands as ``phase_report.json``.

    Returns ``{artifact-name: path}`` for everything written.
    """
    os.makedirs(out_dir, exist_ok=True)
    written: Dict[str, str] = {}

    metrics_path = os.path.join(out_dir, METRICS_FILE)
    with open(metrics_path, "w", encoding="utf-8") as fh:
        fh.write(registry.to_json(extra=extra))
        fh.write("\n")
    written[METRICS_FILE] = metrics_path

    csv_path = os.path.join(out_dir, METRICS_CSV_FILE)
    with open(csv_path, "w", encoding="utf-8") as fh:
        fh.write(registry.to_csv())
    written[METRICS_CSV_FILE] = csv_path

    if sink is not None:
        trace_path = os.path.join(out_dir, TRACE_FILE)
        with open(trace_path, "w", encoding="utf-8") as fh:
            fh.write(sink.to_json())
            fh.write("\n")
        written[TRACE_FILE] = trace_path

    if phase_report is not None:
        profile_path = os.path.join(out_dir, PROFILE_FILE)
        with open(profile_path, "w", encoding="utf-8") as fh:
            json.dump(phase_report, fh, indent=1)
            fh.write("\n")
        written[PROFILE_FILE] = profile_path

    return written
