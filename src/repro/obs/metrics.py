"""Metrics registry: hierarchical counters, gauges, and histograms.

The registry is the reproduction's single namespace for numeric
telemetry.  Names are dotted paths mirroring the system hierarchy::

    sim.rounds                      orchestrator round count
    sim.rate_mhz                    achieved simulation rate
    switch.switch0.packets_dropped  per-switch counters
    blade.node0.l2.misses           per-blade cache counters

Two registration styles coexist:

* **owned instruments** — :meth:`MetricsRegistry.counter` /
  :meth:`gauge` / :meth:`histogram` create objects the caller mutates;
* **sources** — :meth:`MetricsRegistry.register_source` adopts an
  existing stats object (any dataclass or plain object with numeric
  attributes).  Its fields are read reflectively at snapshot time, so
  the owning subsystem keeps its public dataclass API and pays zero
  cost per event.

Snapshots are flat ``{name: value}`` dicts; :meth:`delta` subtracts two
snapshots for windowed rates; :meth:`to_json` / :meth:`to_csv` export
machine-readable artifacts (the gem5-standardization argument: stats you
can diff and script against, not free-form logs).
"""

from __future__ import annotations

import dataclasses
import json
from bisect import insort
from typing import Any, Callable, Dict, List, Optional, Tuple

Number = float

#: Metrics snapshot format marker embedded in exported JSON.
METRICS_SCHEMA = "repro.obs.metrics/v1"


def _validate_name(name: str) -> str:
    if not name or name.startswith(".") or name.endswith(".") or ".." in name:
        raise ValueError(f"bad metric name {name!r}")
    return name


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """A point-in-time value, set directly or read through a callback."""

    __slots__ = ("name", "_value", "_fn")

    def __init__(
        self, name: str, fn: Optional[Callable[[], Number]] = None
    ) -> None:
        self.name = name
        self._value: Number = 0.0
        self._fn = fn

    def set(self, value: Number) -> None:
        if self._fn is not None:
            raise ValueError(f"gauge {self.name} is callback-driven")
        self._value = value

    @property
    def value(self) -> Number:
        return self._fn() if self._fn is not None else self._value


class Histogram:
    """A streaming distribution: count/sum/min/max plus percentiles.

    Keeps every observation (simulations are finite and host-side), so
    percentiles are exact rather than bucketed approximations.
    """

    __slots__ = ("name", "_sorted")

    def __init__(self, name: str) -> None:
        self.name = name
        self._sorted: List[Number] = []

    def observe(self, value: Number) -> None:
        insort(self._sorted, value)

    @property
    def count(self) -> int:
        return len(self._sorted)

    @property
    def total(self) -> Number:
        return sum(self._sorted)

    @property
    def mean(self) -> Number:
        return self.total / self.count if self._sorted else 0.0

    def percentile(self, p: float) -> Number:
        """Exact percentile by nearest-rank; 0 with no observations."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._sorted:
            return 0.0
        rank = max(0, min(len(self._sorted) - 1,
                          round(p / 100.0 * (len(self._sorted) - 1))))
        return self._sorted[rank]

    def summary(self) -> Dict[str, Number]:
        if not self._sorted:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self._sorted[0],
            "max": self._sorted[-1],
            "mean": self.mean,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }


def _numeric_attrs(obj: Any) -> List[str]:
    """Attribute names on ``obj`` exporting int/float values.

    Dataclass fields come first, then read-only properties defined on
    the class (``utilization``, ``miss_rate`` and friends), so derived
    ratios export alongside their raw counters.
    """
    names: List[str] = []
    if dataclasses.is_dataclass(obj):
        names.extend(f.name for f in dataclasses.fields(obj))
    else:
        names.extend(
            k for k in vars(obj) if not k.startswith("_")
        )
    for klass in type(obj).__mro__:
        for key, member in vars(klass).items():
            if isinstance(member, property) and not key.startswith("_"):
                if key not in names:
                    names.append(key)
    return [
        name for name in names
        if isinstance(getattr(obj, name), (int, float))
        and not isinstance(getattr(obj, name), bool)
    ]


class MetricsRegistry:
    """The process's metric namespace."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: prefix -> stats object read reflectively at snapshot time.
        self._sources: List[Tuple[str, Any]] = []

    # -- owned instruments ---------------------------------------------

    def _claim(self, name: str) -> str:
        _validate_name(name)
        if (name in self._counters or name in self._gauges
                or name in self._histograms):
            raise ValueError(f"metric {name!r} already registered")
        return name

    def counter(self, name: str) -> Counter:
        if name in self._counters:
            return self._counters[name]
        self._counters[self._claim(name)] = counter = Counter(name)
        return counter

    def gauge(
        self, name: str, fn: Optional[Callable[[], Number]] = None
    ) -> Gauge:
        if name in self._gauges and fn is None:
            return self._gauges[name]
        self._gauges[self._claim(name)] = gauge = Gauge(name, fn)
        return gauge

    def histogram(self, name: str) -> Histogram:
        if name in self._histograms:
            return self._histograms[name]
        self._histograms[self._claim(name)] = histogram = Histogram(name)
        return histogram

    # -- adopted sources -----------------------------------------------

    def register_source(self, prefix: str, stats: Any) -> None:
        """Adopt an existing stats object under ``prefix``.

        The object's numeric dataclass fields and properties are read at
        snapshot time as ``prefix.field`` — the owner keeps mutating its
        own dataclass and never touches the registry again.
        """
        _validate_name(prefix)
        for existing_prefix, existing in self._sources:
            if existing_prefix == prefix and existing is stats:
                return  # idempotent: re-registration is a no-op
        if not _numeric_attrs(stats):
            raise ValueError(
                f"source {prefix!r} ({type(stats).__name__}) exports no "
                "numeric fields"
            )
        self._sources.append((prefix, stats))

    # -- reads ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Number]:
        """One flat, sorted ``{name: value}`` view of everything."""
        out: Dict[str, Number] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, histogram in self._histograms.items():
            for key, value in histogram.summary().items():
                out[f"{name}.{key}"] = value
        for prefix, stats in self._sources:
            for attr in _numeric_attrs(stats):
                out[f"{prefix}.{attr}"] = getattr(stats, attr)
        return dict(sorted(out.items()))

    @staticmethod
    def delta(
        before: Dict[str, Number], after: Dict[str, Number]
    ) -> Dict[str, Number]:
        """``after - before`` for every name present in ``after``."""
        return {
            name: value - before.get(name, 0)
            for name, value in after.items()
        }

    # -- export ----------------------------------------------------------

    def to_json(self, extra: Optional[Dict[str, Any]] = None) -> str:
        document: Dict[str, Any] = {
            "schema": METRICS_SCHEMA,
            "metrics": self.snapshot(),
        }
        if extra:
            document.update(extra)
        return json.dumps(document, indent=2, sort_keys=True)

    def to_csv(self) -> str:
        lines = ["name,value"]
        lines.extend(
            f"{name},{value}" for name, value in self.snapshot().items()
        )
        return "\n".join(lines) + "\n"
