"""Distributed round-phase profiler: where a lockstep round's time goes.

The paper's simulation-rate argument (Section VI, Figure 9) is a
host-time budget: every lockstep round costs model compute plus the
token-transport hop, and the achievable rate is the quantum divided by
the slowest worker's round.  ``BENCH_dist.json`` showed our measured
distributed throughput trailing the serial batched engine while the
critical-path *model* claimed a speedup — with no way to see which
phase of which worker's round eats the difference.  This module is that
visibility:

* :class:`PhaseRecorder` — a preallocated per-worker ring buffer of
  per-round phase timings.  The worker round loop stamps phase
  boundaries (:meth:`~PhaseRecorder.mark`) as it passes them; one
  ``perf_counter`` read per boundary, a handful per round, so the
  profiler's own cost stays measurably below 5% of round time (gated
  by ``scripts/check_bench_regression.py``).  The ring retains the last
  ``capacity`` rounds sample-exact for histograms and trace rendering
  while running totals cover the whole run.
* :class:`ClockSync` — anchors each forked worker's monotonic clock to
  the parent's pre-fork epoch so every worker's trace events land on
  one merged timeline.  On Linux ``perf_counter`` is the system-wide
  ``CLOCK_MONOTONIC``, so the offset is zero and the measured
  fork latency is real elapsed time; on a platform where the child's
  clock reads *behind* the parent's epoch the sync re-anchors, keeping
  merged timestamps monotonic per track.
* :class:`WorkerProfile` — the picklable record a worker ships back:
  phase totals, the retained ring samples, ring-transport counters, and
  the clock sync.  :meth:`WorkerProfile.trace_events` renders it as
  Chrome ``trace_event`` tracks under one pid per worker, mergeable
  into the manager's :class:`~repro.obs.trace.ChromeTraceSink`.
* :class:`PhaseReport` — the cross-worker aggregate: per-worker phase
  shares (summing to ~100% of measured round time by construction —
  ``idle`` is the unattributed remainder), per-phase histograms,
  critical-path attribution naming the worker and phase that bound the
  observed rounds, and a measured-vs-modeled speedup reconciliation.

Phase vocabulary (one row of the ring per round):

``compute``
    model ticks, output relabelling, local queue traffic — the work the
    critical-path model charges as tick seconds;
``coalesce``
    flattening an exchange's boundary windows into the one columnar
    payload per peer (:mod:`repro.dist.frame`): entry table, cycle
    column, and the single flit pickle;
``serialize``
    transport framing around the coalesced payload (the shm ring's
    header pack, CRCs, and sequence stamp; near-zero under pipes,
    whose byte shipping happens on the feeder thread and therefore
    surfaces in the *peer's* ``recv_wait``);
``send``
    publishing the encoded bytes (ring write + wakeup, or queue put),
    net of ``coalesce`` and ``serialize``;
``recv_wait``
    blocked waiting for peer round messages — lockstep slack plus the
    transport's decode cost;
``gap``
    delivering received windows into local consuming queues, including
    ``LostWindow`` gap handling;
``idle``
    whatever the marks did not cover (hooks, bookkeeping) — the
    remainder that makes the shares sum to the measured round time.

Like the rest of :mod:`repro.obs`, nothing here imports other ``repro``
subpackages: the profiler duck-types the distributed result it reports
on, so any layer may depend on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter, sleep
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

#: JSON artifact marker for exported phase reports.  v2 added the
#: ``coalesce`` phase (the per-peer columnar payload build) between
#: ``compute`` and ``serialize``.
PROFILE_SCHEMA = "repro.obs.prof/v2"

#: Phase order is the wire/report order and the per-round ring layout.
PHASES: Tuple[str, ...] = (
    "compute", "coalesce", "serialize", "send", "recv_wait", "gap", "idle",
)
P_COMPUTE = 0
P_COALESCE = 1
P_SERIALIZE = 2
P_SEND = 3
P_RECV_WAIT = 4
P_GAP = 5
P_IDLE = 6

#: Phases that represent a worker *doing* something; a worker blocked in
#: ``recv_wait`` or ``idle`` is waiting on a peer, so it cannot be the
#: round's critical path.
BUSY_PHASES = (P_COMPUTE, P_COALESCE, P_SERIALIZE, P_SEND, P_GAP)

#: Chrome-trace pids 100, 101, ... host one worker each, clear of the
#: manager's TARGET_PID/HOST_PID (1/2).
WORKER_PID_BASE = 100


@dataclass
class ProfileConfig:
    """Knobs for a profiled distributed run."""

    #: Rounds the per-worker ring retains sample-exact (older rounds
    #: stay in the running totals only).
    ring_capacity: int = 2048
    #: Newest retained rounds rendered into Chrome trace tracks per
    #: worker; caps merged-trace size on long runs.
    trace_rounds: int = 1024
    #: Overhead-probe mode (:class:`ProbeRecorder`): phases are recorded
    #: on alternate rounds only, the other rounds are timed minimally,
    #: and the paired on/off round durations measure the profiler's own
    #: round-time overhead drift-free.  Used by ``scripts/bench_dist.py``
    #: to produce the CI-gated overhead ratio; production profiling
    #: leaves it off and records every round.
    overhead_probe: bool = False
    #: Test hook: seconds slept inside every *recorded* round when the
    #: probe is on.  An injected sleep must blow the measured overhead
    #: ratio past the CI ceiling — proof the gate detects a profiler
    #: that actually got slow.
    probe_sleep_s: float = 0.0

    def __post_init__(self) -> None:
        if self.ring_capacity < 1:
            raise ValueError(
                f"ring_capacity must be >= 1, got {self.ring_capacity}"
            )
        if self.trace_rounds < 0:
            raise ValueError(
                f"trace_rounds must be >= 0, got {self.trace_rounds}"
            )
        if self.probe_sleep_s < 0.0:
            raise ValueError(
                f"probe_sleep_s must be >= 0, got {self.probe_sleep_s}"
            )
        if self.probe_sleep_s > 0.0 and not self.overhead_probe:
            raise ValueError(
                "probe_sleep_s requires overhead_probe=True"
            )


@dataclass(frozen=True)
class ClockSync:
    """One worker's monotonic clock anchored to the parent's epoch.

    ``epoch_s`` is the parent's ``perf_counter`` stamped just before
    forking; ``entry_s`` is the worker's first reading after the fork.
    On a shared monotonic clock ``entry_s >= epoch_s`` and the offset is
    zero — ``fork_latency_s`` is then genuine elapsed fork time.  A
    child clock reading behind the epoch can only mean a per-process
    clock domain; re-anchoring it at the epoch keeps the merged
    timeline ordered.  The derivation is pure arithmetic over the two
    stamps, so synchronization is deterministic given its inputs.
    """

    epoch_s: float
    entry_s: float

    @property
    def offset_s(self) -> float:
        """Subtract from worker timestamps to get parent-clock time."""
        skew = self.entry_s - self.epoch_s
        return skew if skew < 0.0 else 0.0

    @property
    def fork_latency_s(self) -> float:
        """Elapsed parent time between the epoch stamp and worker entry."""
        skew = self.entry_s - self.epoch_s
        return skew if skew > 0.0 else 0.0

    def to_parent(self, worker_s: float) -> float:
        """Map a worker ``perf_counter`` reading onto the parent's clock."""
        return worker_s - self.offset_s

    def to_dict(self) -> Dict[str, float]:
        return {
            "epoch_s": self.epoch_s,
            "entry_s": self.entry_s,
            "offset_s": self.offset_s,
            "fork_latency_s": self.fork_latency_s,
        }


class PhaseRecorder:
    """Per-round phase timers in a preallocated ring buffer.

    The round loop calls :meth:`round_begin` at the top of each round
    and :meth:`mark` as it crosses each phase boundary; the time since
    the previous boundary is attributed to the named phase.  Phases may
    be marked more than once per round (one ``recv_wait`` mark per
    peer) — segments accumulate.  :meth:`accrue` moves already-counted
    time between phases, which is how the shm ring's staging loop
    splits ``serialize`` out of the enclosing ``send`` segment without
    the transport knowing about round structure.

    ``round_end`` closes the row: the un-marked remainder becomes
    ``idle`` and the row lands in the ring, overwriting the oldest
    round once ``capacity`` rounds are retained.  Totals accumulate
    over *all* rounds regardless of wraparound.

    The ring rows are plain Python lists, materialized into numpy only
    at collection time (:meth:`chronological`): per-round numpy row
    assignment costs ~1 us on small arrays, which is real money against
    the <5%-of-round-time overhead budget, while storing the closed
    accumulator list is a pointer write.
    """

    __slots__ = (
        "capacity", "totals", "rounds",
        "_sample_ring", "_start_ring",
        "_accum", "_accrued", "_t0", "_last", "_marks", "_mark_cost_s",
    )

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        n = len(PHASES)
        #: Ring rows: seconds per phase for the retained rounds (closed
        #: accumulator lists, owned by the ring once stored).
        self._sample_ring: List[Optional[List[float]]] = [None] * capacity
        #: Ring of round-begin timestamps (worker-clock seconds).
        self._start_ring: List[float] = [0.0] * capacity
        #: Whole-run phase totals (never wrap).
        self.totals = [0.0] * n
        self.rounds = 0
        self._accum = [0.0] * n
        self._accrued = [0.0] * n
        self._t0 = 0.0
        self._last = 0.0
        self._marks = 0
        # Calibrate the cost of one boundary stamp so the profiler can
        # report its own measured overhead (see overhead_estimate_s).
        t0 = perf_counter()
        for _ in range(256):
            perf_counter()
        self._mark_cost_s = (perf_counter() - t0) / 256.0

    @property
    def wrapped(self) -> bool:
        return self.rounds > self.capacity

    @property
    def retained(self) -> int:
        return min(self.rounds, self.capacity)

    def round_begin(self) -> None:
        now = perf_counter()
        self._t0 = now
        self._last = now
        # Fresh lists instead of zeroing: the previous round's closed
        # accumulator is owned by the ring now, and a 7-element literal
        # allocates faster than a Python zeroing loop runs.
        self._accum = [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]
        self._accrued = [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]

    def mark(self, phase: int) -> None:
        """Attribute the segment since the last boundary to ``phase``."""
        now = perf_counter()
        self._accum[phase] += now - self._last
        self._last = now
        self._marks += 1

    def accrue(self, phase: int, seconds: float) -> None:
        """Re-attribute ``seconds`` of an enclosing segment to ``phase``.

        Used by transport internals (the frame codec's coalescing loop
        and the shm ring's header framing): the time stays inside
        whatever segment the loop will mark, and ``round_end`` subtracts
        it from that segment's phase.  Accrued coalesce and serialize
        time is deducted from ``send``.
        """
        self._accrued[phase] += seconds
        self._marks += 1

    def round_end(self) -> None:
        """Close the row: idle is the unattributed remainder."""
        now = perf_counter()
        accum = self._accum
        total = now - self._t0
        coalesce = self._accrued[P_COALESCE]
        serialize = self._accrued[P_SERIALIZE]
        encode = coalesce + serialize
        if encode > 0.0:
            accum[P_COALESCE] += coalesce
            accum[P_SERIALIZE] += serialize
            # Encoding ran inside the send segment; keep send net of it.
            accum[P_SEND] = max(0.0, accum[P_SEND] - encode)
        attributed = (
            accum[P_COMPUTE] + accum[P_COALESCE] + accum[P_SERIALIZE]
            + accum[P_SEND] + accum[P_RECV_WAIT] + accum[P_GAP]
        )
        accum[P_IDLE] = max(0.0, total - attributed)
        slot = self.rounds % self.capacity
        self._sample_ring[slot] = accum
        self._start_ring[slot] = self._t0
        totals = self.totals
        totals[0] += accum[0]
        totals[1] += accum[1]
        totals[2] += accum[2]
        totals[3] += accum[3]
        totals[4] += accum[4]
        totals[5] += accum[5]
        totals[6] += accum[6]
        self.rounds += 1

    def chronological(self) -> Tuple[np.ndarray, np.ndarray]:
        """Retained ``(starts, samples)`` unrolled oldest-to-newest."""
        retained = self.retained
        if not self.wrapped:
            rows = self._sample_ring[:retained]
            starts = self._start_ring[:retained]
        else:
            pivot = self.rounds % self.capacity
            rows = self._sample_ring[pivot:] + self._sample_ring[:pivot]
            starts = self._start_ring[pivot:] + self._start_ring[:pivot]
        return (
            np.asarray(starts, dtype=np.float64),
            np.asarray(rows, dtype=np.float64).reshape(
                retained, len(PHASES)
            ),
        )

    @property
    def overhead_estimate_s(self) -> float:
        """Measured cost of the recorder's own boundary stamps."""
        return self._marks * self._mark_cost_s


class ProbeRecorder(PhaseRecorder):
    """Alternate-round overhead probe: measure the profiler's own cost.

    Records phases on every other round exactly like
    :class:`PhaseRecorder`; on the remaining rounds every mark is a
    no-op and only the round's total duration is stamped into
    :attr:`off_durations`.  Because recorded and minimal rounds
    interleave at round granularity — and every worker probes the same
    rounds, so a recorded round is recorded system-wide — the ratio of
    their typical durations is the profiled-over-unprofiled round-time
    ratio measured *within one run*, immune to the run-to-run host
    drift (~±10–20% on shared machines) that drowns the few-percent
    signal in any back-to-back A/B comparison.

    ``period`` sets the alternation block size in rounds.  When the
    distributed engine batches token exchanges (``rounds_per_exchange``
    > 1), the exchange cadence is periodic in the round index: with
    strict every-other-round alternation and an even period, the
    drain rounds would all land in one population and the flush rounds
    in the other, and the "overhead" ratio would measure drain-vs-flush
    cost instead of the profiler.  Alternating in blocks of one full
    exchange period puts the same mix of drain/compute/flush rounds in
    both populations, keeping the ratio unbiased.

    The off-rounds still pay one stamp pair and four no-op method calls
    (<1 us against rounds hundreds of microseconds long), so the ratio
    marginally *under*-counts that sliver; the recorder's calibrated
    ``overhead_estimate_s`` bounds it independently.

    ``sleep_s`` injects a sleep into every recorded round — the CI
    gate's self-test uses it to prove a genuinely slow profiler is
    caught.
    """

    __slots__ = ("off_durations", "_probe_on", "_index", "_sleep_s",
                 "_period")

    def __init__(
        self, capacity: int = 2048, sleep_s: float = 0.0, period: int = 1
    ) -> None:
        super().__init__(capacity)
        #: Total durations of the minimally-timed rounds (seconds).
        self.off_durations: List[float] = []
        self._probe_on = True
        self._index = 0
        self._sleep_s = sleep_s
        self._period = max(1, period)

    def round_begin(self) -> None:
        self._probe_on = not (self._index // self._period) & 1
        self._index += 1
        if self._probe_on:
            super().round_begin()
        else:
            self._t0 = perf_counter()

    def mark(self, phase: int) -> None:
        if self._probe_on:
            super().mark(phase)

    def accrue(self, phase: int, seconds: float) -> None:
        if self._probe_on:
            super().accrue(phase, seconds)

    def round_end(self) -> None:
        if self._probe_on:
            if self._sleep_s > 0.0:
                # Lands in the round's idle remainder: round_end stamps
                # the total after the sleep.
                sleep(self._sleep_s)
            super().round_end()
        else:
            self.off_durations.append(perf_counter() - self._t0)


@dataclass
class WorkerProfile:
    """One worker's shipped profile: totals, ring samples, counters."""

    worker_id: int
    phases: Tuple[str, ...]
    totals: Dict[str, float]
    rounds: int
    ring_capacity: int
    wrapped: bool
    #: Retained ring rows, chronological, shape (retained, len(phases)).
    samples: np.ndarray
    #: Round-begin stamps for the retained rows (worker clock).
    round_starts: np.ndarray
    clock: ClockSync
    #: Transport counters per directed channel this worker drove, keyed
    #: ``"src->dst"`` with a ``role`` of "send" or "recv".
    channel_counters: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Outbox coalescing stats per peer: entries drained / peak per round.
    outbox_stats: Dict[int, Dict[str, int]] = field(default_factory=dict)
    #: Measured cost of the profiler's own timestamp reads.
    overhead_estimate_s: float = 0.0
    #: Durations of the minimally-timed rounds from a
    #: :class:`ProbeRecorder` run; ``None`` outside probe mode.
    probe_off_durations: Optional[np.ndarray] = None

    @classmethod
    def from_recorder(
        cls,
        worker_id: int,
        recorder: PhaseRecorder,
        clock: ClockSync,
        channel_counters: Optional[Dict[str, Dict[str, Any]]] = None,
        outbox_stats: Optional[Dict[int, Dict[str, int]]] = None,
    ) -> "WorkerProfile":
        starts, samples = recorder.chronological()
        off = getattr(recorder, "off_durations", None)
        return cls(
            worker_id=worker_id,
            phases=PHASES,
            totals=dict(zip(PHASES, recorder.totals)),
            rounds=recorder.rounds,
            ring_capacity=recorder.capacity,
            wrapped=recorder.wrapped,
            samples=samples.copy(),
            round_starts=starts.copy(),
            clock=clock,
            channel_counters=dict(channel_counters or {}),
            outbox_stats=dict(outbox_stats or {}),
            overhead_estimate_s=recorder.overhead_estimate_s,
            probe_off_durations=(
                np.asarray(off, dtype=np.float64) if off else None
            ),
        )

    @property
    def wall_seconds(self) -> float:
        """Total attributed round time (phases sum to this)."""
        return sum(self.totals.values())

    def phase_shares(self) -> Dict[str, float]:
        """Fraction of measured round time per phase; sums to ~1.0."""
        total = self.wall_seconds
        if total <= 0.0:
            return {phase: 0.0 for phase in self.phases}
        return {
            phase: self.totals[phase] / total for phase in self.phases
        }

    def busy_seconds(self) -> float:
        return sum(self.totals[PHASES[i]] for i in BUSY_PHASES)

    def histogram(self, percentiles: Sequence[float] = (50, 90, 99)) -> (
        Dict[str, Dict[str, float]]
    ):
        """Per-phase round-time distribution over the retained samples."""
        out: Dict[str, Dict[str, float]] = {}
        if self.samples.shape[0] == 0:
            return out
        for index, phase in enumerate(self.phases):
            column = self.samples[:, index]
            entry = {
                "mean_s": float(column.mean()),
                "max_s": float(column.max()),
            }
            for pct in percentiles:
                entry[f"p{pct:g}_s"] = float(np.percentile(column, pct))
            out[phase] = entry
        return out

    def trace_events(self, max_rounds: int = 1024) -> List[Dict[str, Any]]:
        """Chrome trace events for this worker under its own pid.

        Two tracks: ``rounds`` (one span per retained round) and
        ``phases`` (the round rendered as consecutive phase segments in
        canonical order, so per-track timestamps stay monotonic).
        Timestamps are parent-clock microseconds via :class:`ClockSync`.
        """
        pid = WORKER_PID_BASE + self.worker_id
        events: List[Dict[str, Any]] = [
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": f"worker{self.worker_id}"}},
            {"name": "thread_name", "ph": "M", "pid": pid, "tid": 1,
             "args": {"name": "rounds"}},
            {"name": "thread_name", "ph": "M", "pid": pid, "tid": 2,
             "args": {"name": "phases"}},
        ]
        retained = self.samples.shape[0]
        first = max(0, retained - max_rounds)
        first_round = self.rounds - retained + first
        to_parent = self.clock.to_parent
        for row in range(first, retained):
            start_us = to_parent(float(self.round_starts[row])) * 1e6
            durations = self.samples[row]
            round_us = float(durations.sum()) * 1e6
            events.append({
                "name": f"round {first_round + row - first}",
                "cat": "dist.round", "ph": "X",
                "ts": start_us, "dur": round_us, "pid": pid, "tid": 1,
                "args": {"worker": self.worker_id},
            })
            offset_us = start_us
            for index, phase in enumerate(self.phases):
                dur_us = float(durations[index]) * 1e6
                if dur_us <= 0.0:
                    continue
                events.append({
                    "name": phase, "cat": "dist.phase", "ph": "X",
                    "ts": offset_us, "dur": dur_us, "pid": pid, "tid": 2,
                    "args": {},
                })
                offset_us += dur_us
        return events

    def to_dict(self) -> Dict[str, Any]:
        return {
            "worker_id": self.worker_id,
            "rounds": self.rounds,
            "ring_capacity": self.ring_capacity,
            "wrapped": self.wrapped,
            "retained_rounds": int(self.samples.shape[0]),
            "wall_seconds": self.wall_seconds,
            "phase_seconds": dict(self.totals),
            "phase_shares": self.phase_shares(),
            "histogram": self.histogram(),
            "clock": self.clock.to_dict(),
            "channel_counters": self.channel_counters,
            "outbox_stats": {
                str(peer): dict(stats)
                for peer, stats in sorted(self.outbox_stats.items())
            },
            "overhead_estimate_s": self.overhead_estimate_s,
            **(
                {
                    "probe_off_rounds": int(
                        self.probe_off_durations.shape[0]
                    ),
                    "probe_off_median_s": float(
                        np.median(self.probe_off_durations)
                    ),
                }
                if self.probe_off_durations is not None
                and self.probe_off_durations.shape[0]
                else {}
            ),
        }


@dataclass
class PhaseReport:
    """Cross-worker aggregate of one profiled distributed run."""

    quantum: int
    rounds: int
    num_workers: int
    transport: str
    wall_seconds: float
    measured_rate_mhz: float
    modeled_rate_mhz: Optional[float]
    modeled_speedup: Optional[float]
    profiles: List[WorkerProfile] = field(default_factory=list)

    @classmethod
    def from_result(cls, result: Any) -> "PhaseReport":
        """Build from a duck-typed DistributedRunResult with profiles."""
        profiles = [
            worker.profile for worker in result.workers
            if getattr(worker, "profile", None) is not None
        ]
        return cls(
            quantum=result.quantum,
            rounds=result.rounds,
            num_workers=result.num_workers,
            transport=result.transport,
            wall_seconds=result.wall_seconds,
            measured_rate_mhz=result.measured_rate_mhz(),
            modeled_rate_mhz=result.modeled_rate_mhz(),
            modeled_speedup=result.modeled_speedup(),
            profiles=sorted(profiles, key=lambda p: p.worker_id),
        )

    # -- attribution -----------------------------------------------------

    def critical_path(self) -> Dict[str, Any]:
        """Name the worker and phase bounding the observed rounds.

        In lockstep every worker's round wall clock tracks the slowest
        worker's (the others wait in ``recv_wait``), so the *bound* is
        the worker doing the most work, not the one with the longest
        wall time: per retained round, the bounding worker is the one
        with the most busy (compute/serialize/send/gap) seconds, and
        the named phase is the bounding worker's largest busy phase.
        """
        if not self.profiles:
            return {}
        busy_idx = list(BUSY_PHASES)
        retained = min(p.samples.shape[0] for p in self.profiles)
        counts = {p.worker_id: 0 for p in self.profiles}
        if retained > 0:
            # Stack the common tail so per-round rows line up across
            # workers (all rings advance one row per lockstep round).
            busy = np.stack(
                [
                    p.samples[-retained:][:, busy_idx].sum(axis=1)
                    for p in self.profiles
                ]
            )
            bounding = np.argmax(busy, axis=0)
            for row in bounding:
                counts[self.profiles[int(row)].worker_id] += 1
        critical = max(
            self.profiles,
            key=lambda p: (counts[p.worker_id], p.busy_seconds()),
        )
        phase = max(
            (PHASES[i] for i in BUSY_PHASES),
            key=lambda name: critical.totals[name],
        )
        busy_total = critical.busy_seconds()
        return {
            "worker": critical.worker_id,
            "phase": phase,
            "phase_seconds": critical.totals[phase],
            "phase_share_of_busy": (
                critical.totals[phase] / busy_total if busy_total else 0.0
            ),
            "rounds_bound": counts[critical.worker_id],
            "rounds_observed": retained,
        }

    def reconciliation(self) -> Dict[str, Any]:
        """Measured vs modeled rate, with the gap attributed to phases.

        The critical-path model prices a round as tick seconds plus one
        idealized transport hop; the measured phase profile shows what
        the host actually paid.  ``transport_share`` (coalesce + serialize + send
        + recv_wait over all workers) is the Figure-9 knob: it shrinks
        as the token batch grows, exactly the paper's batch/latency
        trade-off.
        """
        totals = {phase: 0.0 for phase in PHASES}
        for profile in self.profiles:
            for phase, seconds in profile.totals.items():
                totals[phase] += seconds
        attributed = sum(totals.values())
        transport = (
            totals["coalesce"] + totals["serialize"] + totals["send"]
            + totals["recv_wait"]
        )
        out: Dict[str, Any] = {
            "measured_rate_mhz": self.measured_rate_mhz,
            "modeled_rate_mhz": self.modeled_rate_mhz,
            "modeled_speedup": self.modeled_speedup,
            "compute_share": (
                totals["compute"] / attributed if attributed else 0.0
            ),
            "transport_share": (
                transport / attributed if attributed else 0.0
            ),
            "wait_share": (
                totals["recv_wait"] / attributed if attributed else 0.0
            ),
        }
        if self.modeled_rate_mhz:
            out["measured_over_modeled"] = (
                self.measured_rate_mhz / self.modeled_rate_mhz
            )
        return out

    def probe_overhead_ratio(self) -> Optional[float]:
        """Measured profiled-over-unprofiled round-time ratio.

        Only available from an overhead-probe run
        (``ProfileConfig(overhead_probe=True)``): pools every worker's
        recorded-round durations (ring row sums) against its
        minimally-timed rounds and takes the ratio of medians.  The
        two populations interleave round-by-round inside one run, so
        host drift hits both equally and the few-percent profiler
        signal survives; this is the number
        ``scripts/check_bench_regression.py`` gates below its ceiling.
        """
        on: List[np.ndarray] = []
        off: List[np.ndarray] = []
        for profile in self.profiles:
            durations = profile.probe_off_durations
            if durations is None or durations.shape[0] == 0:
                continue
            if profile.samples.shape[0] == 0:
                continue
            on.append(profile.samples.sum(axis=1))
            off.append(durations)
        if not on:
            return None
        off_median = float(np.median(np.concatenate(off)))
        if off_median <= 0.0:
            return None
        return float(np.median(np.concatenate(on))) / off_median

    def profiling_overhead_ratio(self) -> float:
        """Self-reported overhead: stamp cost over attributed time.

        A lower bound from the recorder's calibrated boundary-stamp
        cost; the authoritative profiled-vs-unprofiled wall ratio is
        measured by ``scripts/bench_dist.py`` and CI-gated.
        """
        attributed = sum(p.wall_seconds for p in self.profiles)
        if attributed <= 0.0:
            return 0.0
        overhead = sum(p.overhead_estimate_s for p in self.profiles)
        return overhead / attributed

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": PROFILE_SCHEMA,
            "quantum": self.quantum,
            "rounds": self.rounds,
            "num_workers": self.num_workers,
            "transport": self.transport,
            "wall_seconds": self.wall_seconds,
            "per_worker": {
                str(profile.worker_id): profile.to_dict()
                for profile in self.profiles
            },
            "critical_path": self.critical_path(),
            "reconciliation": self.reconciliation(),
            "profiling_overhead_ratio": self.profiling_overhead_ratio(),
        }

    def summary_lines(self) -> List[str]:
        """Human-readable report for the CLI ``profile`` verb."""
        lines = [
            f"phase profile: {self.num_workers} workers, {self.rounds} "
            f"rounds, {self.transport} transport, "
            f"{self.measured_rate_mhz:.3f} MHz measured",
        ]
        for profile in self.profiles:
            shares = profile.phase_shares()
            parts = ", ".join(
                f"{phase} {share * 100.0:.1f}%"
                for phase, share in shares.items()
                if share >= 0.005
            )
            lines.append(
                f"  worker {profile.worker_id}: "
                f"{profile.wall_seconds:.3f} s attributed ({parts})"
            )
        critical = self.critical_path()
        if critical:
            lines.append(
                f"critical path: worker {critical['worker']} "
                f"{critical['phase']} "
                f"({critical['phase_share_of_busy'] * 100.0:.1f}% of its "
                f"busy time; bounds {critical['rounds_bound']}/"
                f"{critical['rounds_observed']} observed rounds)"
            )
        recon = self.reconciliation()
        modeled = recon.get("modeled_rate_mhz")
        if modeled:
            lines.append(
                f"modeled {modeled:.3f} MHz vs measured "
                f"{self.measured_rate_mhz:.3f} MHz "
                f"(transport share {recon['transport_share'] * 100.0:.1f}%, "
                f"compute share {recon['compute_share'] * 100.0:.1f}%)"
            )
        lines.append(
            "profiler self-overhead: "
            f"{self.profiling_overhead_ratio() * 100.0:.2f}% of attributed "
            "time"
        )
        return lines
