"""Live simulation-rate profiling.

:class:`repro.host.perfmodel.SimulationRateModel` *predicts* how fast a
mapped design simulates; :class:`RateMonitor` *measures* it on the host
actually running the functional simulation.  Attached to a
:class:`~repro.core.simulation.Simulation`, it observes every round:

* wall-clock per quantum (min/mean/max over the run);
* achieved simulation rate in MHz — target cycles per wall second, the
  number Figures 8/9 plot;
* per-model host-time shares — which blade or switch model the host
  actually spends its time ticking, the profile that tells you where a
  perf PR should aim.

When a :class:`~repro.obs.trace.ChromeTraceSink` is supplied, each
model tick also lands as a host-time span, so Perfetto shows the round
structure visually.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro.obs.trace import TraceSink


@dataclass
class RateReport:
    """Measured rate and host-time profile over the observed window."""

    wall_seconds: float
    cycles: int
    rounds: int
    freq_hz: float
    model_host_seconds: Dict[str, float] = field(default_factory=dict)
    min_round_s: float = 0.0
    max_round_s: float = 0.0
    #: Host seconds spent inside distributed transport calls (zero for
    #: serial runs): serialize + publish on the send side, wait + decode
    #: on the receive side, summed over workers.
    transport_send_seconds: float = 0.0
    transport_recv_seconds: float = 0.0
    #: Per-worker achieved MHz from the last distributed run (empty for
    #: serial runs) — kept un-collapsed so shard load imbalance is
    #: visible in ``status`` output.
    worker_rates: Dict[int, float] = field(default_factory=dict)

    @property
    def rate_hz(self) -> float:
        """Achieved target cycles per wall-clock second."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.cycles / self.wall_seconds

    @property
    def rate_mhz(self) -> float:
        return self.rate_hz / 1e6

    @property
    def slowdown_vs_target(self) -> float:
        """How many times slower than the simulated machine itself."""
        return self.freq_hz / self.rate_hz if self.rate_hz else float("inf")

    @property
    def transport_seconds_per_round(self) -> float:
        """Mean transport time per observed round (0 for serial runs)."""
        if self.rounds <= 0:
            return 0.0
        return (
            self.transport_send_seconds + self.transport_recv_seconds
        ) / self.rounds

    @property
    def load_imbalance(self) -> float:
        """Fastest over slowest worker rate; 1.0 when balanced/serial.

        Lockstep pins every worker's wall clock to the slowest shard's,
        so shards rarely diverge in wall time — but a *busy-time*
        imbalance still shows up here because each worker's rate is its
        cycles over its own wall, and a shard that finishes its last
        round's work early exits sooner.  Values well above 1.0 mean
        the partitioner handed one worker more model than the others.
        """
        rates = [rate for rate in self.worker_rates.values() if rate > 0.0]
        if len(rates) < 2:
            return 1.0
        return max(rates) / min(rates)

    @property
    def host_time_shares(self) -> Dict[str, float]:
        """Fraction of model-tick host time spent in each model."""
        total = sum(self.model_host_seconds.values())
        if total <= 0.0:
            return {}
        return {
            name: seconds / total
            for name, seconds in sorted(
                self.model_host_seconds.items(),
                key=lambda item: item[1],
                reverse=True,
            )
        }

    def compare_prediction(self, estimate: Any) -> float:
        """Measured/predicted rate ratio against a ``RateEstimate``.

        Duck-typed on ``rate_hz`` so :mod:`repro.obs` stays free of
        ``repro.host`` imports.
        """
        predicted = float(estimate.rate_hz)
        if predicted <= 0.0:
            raise ValueError("prediction must have a positive rate")
        return self.rate_hz / predicted

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "wall_seconds": self.wall_seconds,
            "cycles": self.cycles,
            "rounds": self.rounds,
            "rate_mhz": self.rate_mhz,
            "min_round_s": self.min_round_s,
            "max_round_s": self.max_round_s,
            "host_time_shares": self.host_time_shares,
            "transport_send_seconds": self.transport_send_seconds,
            "transport_recv_seconds": self.transport_recv_seconds,
            "transport_seconds_per_round": self.transport_seconds_per_round,
        }
        if self.worker_rates:
            out["worker_rates_mhz"] = {
                str(worker): rate
                for worker, rate in sorted(self.worker_rates.items())
            }
            out["load_imbalance"] = self.load_imbalance
        return out


class RateMonitor:
    """Observes a :class:`Simulation`'s rounds and profiles host time.

    The orchestrator calls :meth:`record_model_tick` once per model per
    round and :meth:`record_round` once per round — only when a monitor
    is attached, so an unmonitored simulation's fast path is untouched.
    """

    def __init__(self, trace: Optional[TraceSink] = None) -> None:
        self.trace = trace
        self.freq_hz = 0.0
        self.rounds = 0
        self.cycles = 0
        self.wall_seconds = 0.0
        self.model_host_seconds: Dict[str, float] = {}
        self.transport_send_seconds = 0.0
        self.transport_recv_seconds = 0.0
        self.worker_rates: Dict[int, float] = {}
        self._min_round_s = float("inf")
        self._max_round_s = 0.0

    def attach(self, simulation: Any) -> "RateMonitor":
        """Install on a simulation (its ``observer`` slot); returns self."""
        simulation.observer = self
        self.freq_hz = simulation.clock.freq_hz
        return self

    # -- orchestrator callbacks ----------------------------------------

    def record_model_tick(
        self, name: str, start_s: float, end_s: float,
        window_start: int, window_end: int,
    ) -> None:
        elapsed = end_s - start_s
        self.model_host_seconds[name] = (
            self.model_host_seconds.get(name, 0.0) + elapsed
        )
        trace = self.trace
        if trace is not None and trace.enabled:
            trace.host_span(
                name, "sim.tick", start_s, end_s, track="model-ticks",
                args={"window": [window_start, window_end]},
            )

    def record_round(self, quantum: int, round_wall_s: float) -> None:
        self.rounds += 1
        self.cycles += quantum
        self.wall_seconds += round_wall_s
        if round_wall_s < self._min_round_s:
            self._min_round_s = round_wall_s
        if round_wall_s > self._max_round_s:
            self._max_round_s = round_wall_s

    # -- batched-engine aggregation --------------------------------------

    def absorb_tick_totals(
        self, names: Sequence[str], seconds: Any
    ) -> None:
        """Fold one batched run's per-model tick totals in one call.

        The batched engine (:mod:`repro.perf.engine`) accumulates tick
        durations into a numpy buffer — one vectorized add per round
        instead of a :meth:`record_model_tick` call per model per round
        — and flushes the totals here at end of run.  ``seconds`` is
        any array-like aligned with ``names``.
        """
        for name, elapsed in zip(names, np.asarray(seconds).tolist()):
            self.model_host_seconds[name] = (
                self.model_host_seconds.get(name, 0.0) + elapsed
            )

    def absorb_round_times(self, quantum: int, round_seconds: Any) -> None:
        """Fold a whole run's per-round wall times (numpy reductions).

        Equivalent to calling :meth:`record_round` once per entry:
        sum/min/max are computed vectorized over the run instead of
        maintained per round.
        """
        walls = np.asarray(round_seconds, dtype=float)
        if walls.size == 0:
            return
        self.rounds += int(walls.size)
        self.cycles += int(walls.size) * quantum
        self.wall_seconds += float(walls.sum())
        fastest = float(walls.min())
        slowest = float(walls.max())
        if fastest < self._min_round_s:
            self._min_round_s = fastest
        if slowest > self._max_round_s:
            self._max_round_s = slowest

    # -- distributed aggregation ----------------------------------------

    def absorb(
        self,
        cycles: int,
        rounds: int,
        wall_seconds: float,
        model_host_seconds: Optional[Dict[str, float]] = None,
        transport_send_seconds: float = 0.0,
        transport_recv_seconds: float = 0.0,
        worker_rates: Optional[Dict[int, float]] = None,
    ) -> None:
        """Fold a remote run's measurements into this monitor.

        The distributed engine's workers advance without the parent's
        observer seeing a single round; the merged
        :class:`~repro.dist.engine.DistributedRunResult` lands here so
        ``status`` and telemetry dumps report one coherent session.
        ``wall_seconds`` is the parent-observed wall time (cycles are
        simulated once no matter how many workers ticked them), and the
        mean round time feeds the min/max envelope.  The transport
        seconds are the workers' summed time inside send/recv calls
        (the per-round overhead the distributed benches report per
        transport).  ``worker_rates`` keeps each worker's achieved MHz
        un-collapsed (later runs overwrite per worker id) so the report
        can surface shard load imbalance.
        """
        if rounds <= 0:
            return
        if worker_rates:
            self.worker_rates.update(worker_rates)
        self.rounds += rounds
        self.cycles += cycles
        self.wall_seconds += wall_seconds
        self.transport_send_seconds += transport_send_seconds
        self.transport_recv_seconds += transport_recv_seconds
        for name, seconds in (model_host_seconds or {}).items():
            self.model_host_seconds[name] = (
                self.model_host_seconds.get(name, 0.0) + seconds
            )
        mean_round_s = wall_seconds / rounds
        if mean_round_s < self._min_round_s:
            self._min_round_s = mean_round_s
        if mean_round_s > self._max_round_s:
            self._max_round_s = mean_round_s

    # -- reads ----------------------------------------------------------

    def report(self) -> RateReport:
        return RateReport(
            wall_seconds=self.wall_seconds,
            cycles=self.cycles,
            rounds=self.rounds,
            freq_hz=self.freq_hz,
            model_host_seconds=dict(self.model_host_seconds),
            min_round_s=0.0 if self.rounds == 0 else self._min_round_s,
            max_round_s=self._max_round_s,
            transport_send_seconds=self.transport_send_seconds,
            transport_recv_seconds=self.transport_recv_seconds,
            worker_rates=dict(self.worker_rates),
        )

    def register_metrics(self, registry: Any, prefix: str = "sim") -> None:
        """Expose the live rate through callback gauges."""
        registry.gauge(f"{prefix}.rate_mhz", lambda: self.report().rate_mhz)
        registry.gauge(f"{prefix}.wall_seconds", lambda: self.wall_seconds)
        registry.gauge(
            f"{prefix}.observed_rounds", lambda: float(self.rounds)
        )
