"""TelemetrySession: one run's registry + trace sink + rate monitor.

The :class:`~repro.manager.manager.FireSimManager` owns at most one
session; enabling it wires every layer in:

* the session's :class:`~repro.obs.trace.ChromeTraceSink` becomes the
  process-wide sink, so switch/tracer instrumentation points light up;
* :meth:`attach_running` hooks the :class:`RateMonitor` onto the
  elaborated simulation and lets every stats-bearing model register its
  counters (``sim.*``, ``switch.*``, ``blade.*``);
* :meth:`span` wraps manager verbs in host-time trace spans and records
  their durations as gauges (``manager.buildafi.seconds`` …).

Everything here is duck-typed against the models' ``register_metrics``
hooks, so :mod:`repro.obs` never imports the layers it observes.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from repro.obs.export import dump_telemetry
from repro.obs.metrics import MetricsRegistry
from repro.obs.prof import PhaseReport
from repro.obs.rate import RateMonitor, RateReport
from repro.obs.trace import ChromeTraceSink, set_trace_sink


class TelemetrySession:
    """Collects one run's metrics, trace, and rate profile."""

    def __init__(self, trace: bool = True, freq_hz: float = 3.2e9) -> None:
        self.registry = MetricsRegistry()
        self.sink: Optional[ChromeTraceSink] = (
            ChromeTraceSink(freq_hz=freq_hz) if trace else None
        )
        self.rate = RateMonitor(trace=self.sink)
        self.phase_report: Optional[PhaseReport] = None
        self._installed = False
        self._rate_metrics_registered = False

    # -- lifecycle -------------------------------------------------------

    def install(self) -> "TelemetrySession":
        """Make this session's sink the process-wide trace sink."""
        if self.sink is not None:
            set_trace_sink(self.sink)
            self._installed = True
        return self

    def uninstall(self) -> None:
        """Restore the no-op process sink (idempotent)."""
        if self._installed:
            set_trace_sink(None)
            self._installed = False

    # -- wiring ----------------------------------------------------------

    def attach_running(self, running: Any) -> None:
        """Wire an elaborated simulation (a ``RunningSimulation``) in.

        Safe to call again after a checkpoint restore replaces the
        running simulation: the rate gauges are claimed once, and
        re-registered stats sources shadow their predecessors.
        """
        simulation = running.simulation
        self.rate.attach(simulation)
        if not self._rate_metrics_registered:
            self.rate.register_metrics(self.registry)
            self._rate_metrics_registered = True
        simulation.register_metrics(self.registry)
        for switch in running.switches.values():
            switch.register_metrics(self.registry)
        for blade in running.blades.values():
            blade.register_metrics(self.registry)

    def attach_server(self, server: Any) -> None:
        """Wire a :class:`~repro.serve.server.JobServer`'s counters in.

        Exposes the server's :class:`~repro.serve.server.ServeStats`
        as ``serve.*`` gauges (submitted/started/preemptions/queued/
        running/used_slots/...), so a metrics dump of a serving session
        includes the scheduler's view of the farm.  Reflective — any
        numeric attribute the stats object grows is picked up.
        """
        self.registry.register_source("serve", server.stats)

    def absorb_distributed(self, result: Any) -> None:
        """Fold a distributed run's per-worker measurements into the
        session.

        ``result`` duck-types
        :class:`~repro.dist.engine.DistributedRunResult`.  The merged
        tick profile feeds the shared :class:`RateMonitor` (so
        ``rate_report`` covers distributed cycles too) and each worker's
        achieved rate lands as a ``dist.worker<N>.rate_mhz`` gauge for
        per-partition ``status`` output.  When the run was profiled
        (``result.profiled``), the per-worker phase rings aggregate into
        :attr:`phase_report`, shm-ring counters land as ``dist.shm.*``
        gauges, and each worker's trace track merges into the session's
        sink so the exported ``trace.json`` is one openable timeline.
        Supervision reports (``result.supervision``) surface as
        ``dist.supervisor.*`` gauges.
        """
        merged_ticks: Dict[str, float] = {}
        for worker in result.workers:
            for name, seconds in worker.model_host_seconds.items():
                merged_ticks[name] = merged_ticks.get(name, 0.0) + seconds
        send_seconds = sum(
            worker.transport_send_seconds for worker in result.workers
        )
        recv_seconds = sum(
            worker.transport_recv_seconds for worker in result.workers
        )
        self.rate.absorb(
            result.cycles,
            result.rounds,
            result.wall_seconds,
            merged_ticks,
            transport_send_seconds=send_seconds,
            transport_recv_seconds=recv_seconds,
            worker_rates={
                worker.worker_id: worker.rate_mhz()
                for worker in result.workers
            },
        )
        self.registry.gauge("dist.num_workers").set(float(result.num_workers))
        self.registry.gauge("dist.boundary_links").set(
            float(result.boundary_link_count)
        )
        # Transport hop identity is a string; gauges are floats — expose
        # the shm-ness as a flag plus the channel count, and leave the
        # name itself to the manager's distributed summary.
        self.registry.gauge("dist.channels").set(float(result.channel_count))
        self.registry.gauge("dist.transport_shm").set(
            1.0 if result.transport == "shm" else 0.0
        )
        requested = getattr(result, "requested_transport", result.transport)
        self.registry.gauge("dist.transport_fallback").set(
            1.0 if requested == "shm" and result.transport != "shm" else 0.0
        )
        for worker in result.workers:
            self.registry.gauge(
                f"dist.worker{worker.worker_id}.rate_mhz"
            ).set(worker.rate_mhz())
        supervision = getattr(result, "supervision", None)
        if supervision is not None:
            self.registry.gauge("dist.supervisor.enabled").set(
                1.0 if supervision.get("enabled") else 0.0
            )
            self.registry.gauge("dist.supervisor.polls").set(
                float(supervision.get("polls", 0))
            )
            self.registry.gauge("dist.supervisor.beats").set(
                float(supervision.get("beats", 0))
            )
            self.registry.gauge("dist.supervisor.hangs").set(
                float(supervision.get("hangs", 0))
            )
            self.registry.gauge("dist.supervisor.deadline_s").set(
                float(supervision.get("deadline_s", 0.0))
            )
        if getattr(result, "profiled", False):
            self._absorb_profiles(result)

    def _absorb_profiles(self, result: Any) -> None:
        """Aggregate a profiled run: report, ring gauges, merged trace."""
        self.phase_report = PhaseReport.from_result(result)
        high_water = 0.0
        wakeups = 0.0
        stalls = 0.0
        streaming = 0.0
        for profile in self.phase_report.profiles:
            for counters in profile.channel_counters.values():
                high_water = max(
                    high_water, float(counters.get("high_water_bytes", 0))
                )
                wakeups += float(counters.get("blocked_wakeups", 0))
                stalls += float(counters.get("backpressure_stalls", 0))
                streaming += float(counters.get("streaming_sends", 0))
        self.registry.gauge("dist.shm.high_water_bytes").set(high_water)
        self.registry.gauge("dist.shm.blocked_wakeups").set(wakeups)
        self.registry.gauge("dist.shm.backpressure_stalls").set(stalls)
        self.registry.gauge("dist.shm.streaming_sends").set(streaming)
        self.registry.gauge("dist.profile.overhead_ratio").set(
            self.phase_report.profiling_overhead_ratio()
        )
        if self.sink is not None:
            for profile in self.phase_report.profiles:
                self.sink.absorb_events(profile.trace_events())

    @contextmanager
    def span(self, name: str, cat: str = "manager") -> Iterator[None]:
        """Host-time span around a verb; duration lands as a gauge too."""
        start = time.perf_counter()
        try:
            yield
        finally:
            end = time.perf_counter()
            if self.sink is not None:
                self.sink.host_span(name, cat, start, end, track=cat)
            self.registry.gauge(f"{cat}.{name}.seconds").set(end - start)

    # -- reads / export ---------------------------------------------------

    def rate_report(self) -> RateReport:
        return self.rate.report()

    def dump(
        self, out_dir: str, extra: Optional[Dict[str, Any]] = None
    ) -> Dict[str, str]:
        """Write metrics.json/metrics.csv/trace.json into ``out_dir``.

        A profiled distributed run additionally writes
        ``phase_report.json`` (schema ``repro.obs.prof/v1``).
        """
        payload = {"rate": self.rate_report().to_dict()}
        if extra:
            payload.update(extra)
        return dump_telemetry(
            out_dir, self.registry, sink=self.sink, extra=payload,
            phase_report=(
                self.phase_report.to_dict()
                if self.phase_report is not None else None
            ),
        )
