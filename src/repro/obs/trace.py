"""Structured tracing in Chrome ``trace_event`` format.

One process-wide :class:`TraceSink` receives spans and instants from the
instrumented layers and renders them as Chrome's JSON Array/Object trace
format, loadable in ``chrome://tracing`` or Perfetto.  Two tracks keep
the two clocks apart:

* **target time** (pid ``TARGET_PID``) — events stamped in simulated
  cycles, converted to microseconds of *target* time at the sink's
  configured clock; switch enqueue/dequeue/drop instants and tracer
  packet spans live here;
* **host time** (pid ``HOST_PID``) — events stamped with
  ``time.perf_counter``; manager verb spans and per-model tick spans
  live here.

The default sink is :class:`NullTraceSink` with ``enabled = False``;
every instrumentation site guards with ``if sink.enabled:`` so an
untraced run pays one attribute read per *event site*, not per event —
the zero-overhead requirement from the acceptance criteria.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

#: Chrome trace pids for the two time domains.
TARGET_PID = 1
HOST_PID = 2

#: Trace format marker embedded in exported JSON.
TRACE_SCHEMA = "repro.obs.trace/v1"


class TraceSink:
    """Interface + no-op base.  Timestamps: seconds (host), cycles (target)."""

    enabled = False

    # -- target-time track ---------------------------------------------

    def target_span(self, name: str, cat: str, start_cycle: int,
                    end_cycle: int, track: str = "target",
                    args: Optional[Dict[str, Any]] = None) -> None:
        """A complete event on the target-time track."""

    def target_instant(self, name: str, cat: str, cycle: int,
                       track: str = "target",
                       args: Optional[Dict[str, Any]] = None) -> None:
        """A point event on the target-time track."""

    # -- host-time track -----------------------------------------------

    def host_span(self, name: str, cat: str, start_s: float, end_s: float,
                  track: str = "host",
                  args: Optional[Dict[str, Any]] = None) -> None:
        """A complete event on the host-time track."""

    def host_instant(self, name: str, cat: str, at_s: float,
                     track: str = "host",
                     args: Optional[Dict[str, Any]] = None) -> None:
        """A point event on the host-time track."""


class NullTraceSink(TraceSink):
    """The default: drops everything, costs one ``enabled`` check."""


class ChromeTraceSink(TraceSink):
    """Collects events and renders the Chrome trace JSON object form.

    Args:
        freq_hz: target clock used to convert cycles to microseconds on
            the target-time track.
        max_events: hard cap on retained events; beyond it new events
            are counted in :attr:`dropped_events` but not stored, so a
            pathological run cannot exhaust host memory.
    """

    enabled = True

    def __init__(self, freq_hz: float = 3.2e9,
                 max_events: int = 500_000) -> None:
        if freq_hz <= 0:
            raise ValueError("freq_hz must be positive")
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.freq_hz = freq_hz
        self.max_events = max_events
        self.events: List[Dict[str, Any]] = []
        self.dropped_events = 0
        self._tids: Dict[tuple, int] = {}

    # -- internals -------------------------------------------------------

    def _tid(self, pid: int, track: str) -> int:
        """Stable small tid per (pid, track name), with metadata emitted."""
        key = (pid, track)
        tid = self._tids.get(key)
        if tid is None:
            tid = len([k for k in self._tids if k[0] == pid]) + 1
            self._tids[key] = tid
            # Thread-name metadata events make tracks legible in the UI.
            self.events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": track},
            })
        return tid

    def _emit(self, event: Dict[str, Any]) -> None:
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        self.events.append(event)

    def _cycles_us(self, cycle: int) -> float:
        return cycle / self.freq_hz * 1e6

    # -- target-time track ---------------------------------------------

    def target_span(self, name, cat, start_cycle, end_cycle,
                    track="target", args=None):
        start = self._cycles_us(start_cycle)
        self._emit({
            "name": name, "cat": cat, "ph": "X",
            "ts": start, "dur": self._cycles_us(end_cycle) - start,
            "pid": TARGET_PID, "tid": self._tid(TARGET_PID, track),
            "args": dict(args or {}, start_cycle=start_cycle,
                         end_cycle=end_cycle),
        })

    def target_instant(self, name, cat, cycle, track="target", args=None):
        self._emit({
            "name": name, "cat": cat, "ph": "i", "s": "t",
            "ts": self._cycles_us(cycle),
            "pid": TARGET_PID, "tid": self._tid(TARGET_PID, track),
            "args": dict(args or {}, cycle=cycle),
        })

    # -- host-time track -----------------------------------------------

    def host_span(self, name, cat, start_s, end_s, track="host", args=None):
        self._emit({
            "name": name, "cat": cat, "ph": "X",
            "ts": start_s * 1e6, "dur": (end_s - start_s) * 1e6,
            "pid": HOST_PID, "tid": self._tid(HOST_PID, track),
            "args": dict(args or {}),
        })

    def host_instant(self, name, cat, at_s, track="host", args=None):
        self._emit({
            "name": name, "cat": cat, "ph": "i", "s": "t",
            "ts": at_s * 1e6,
            "pid": HOST_PID, "tid": self._tid(HOST_PID, track),
            "args": dict(args or {}),
        })

    # -- cross-process merge ---------------------------------------------

    def absorb_events(self, events: List[Dict[str, Any]]) -> None:
        """Merge pre-built Chrome events (e.g. a worker's profiler track).

        Metadata (``"ph": "M"``) events — process/thread names for the
        worker pids — bypass the cap so merged tracks stay labelled even
        in a saturated sink; real events go through :meth:`_emit` and
        count against ``max_events`` like local ones.  Timestamps must
        already be in this sink's host-time domain (the distributed
        profiler rebases worker clocks at collection time).
        """
        for event in events:
            if event.get("ph") == "M":
                self.events.append(event)
            else:
                self._emit(event)

    # -- export ----------------------------------------------------------

    def to_document(self) -> Dict[str, Any]:
        """The Chrome trace JSON Object form, plus process metadata."""
        metadata = [
            {"name": "process_name", "ph": "M", "pid": TARGET_PID, "tid": 0,
             "args": {"name": "target-time"}},
            {"name": "process_name", "ph": "M", "pid": HOST_PID, "tid": 0,
             "args": {"name": "host-time"}},
        ]
        return {
            "traceEvents": metadata + self.events,
            "displayTimeUnit": "ms",
            "otherData": {
                "schema": TRACE_SCHEMA,
                "freq_hz": self.freq_hz,
                "dropped_events": self.dropped_events,
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_document(), indent=1)


#: The process-wide sink every instrumentation site reads.
_SINK: TraceSink = NullTraceSink()


def get_trace_sink() -> TraceSink:
    return _SINK


def set_trace_sink(sink: Optional[TraceSink]) -> TraceSink:
    """Install ``sink`` process-wide (None restores the no-op); returns it."""
    global _SINK
    _SINK = sink if sink is not None else NullTraceSink()
    return _SINK
