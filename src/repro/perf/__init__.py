"""Batched sparse execution path for the core engine.

FireSim's throughput rests on token transport being cheap relative to
target work (Section V): on the FPGA the token plumbing is wires.  The
pure-Python round loop in :mod:`repro.core.simulation` pays per-call
Python overhead on every link every round, which dominates both serial
and distributed runs.  This package provides the ``engine="batched"``
hot path:

* :mod:`repro.perf.stream` — per-link token windows as numpy structured
  arrays over the whole quantum (idle-token elision, one array op per
  link per round instead of per-cycle Python calls);
* :mod:`repro.perf.engine` — a precompiled round loop that moves those
  windows with inlined queue operations and skips ticking models whose
  inputs carry no valid tokens and whose state provably cannot change.

The scalar path stays untouched as the bit-equality oracle: cycle
timestamps, switch counters, and tracer records are identical between
the two engines (``tests/test_perf_engine.py`` asserts it), and
``scripts/bench_core.py`` measures the speedup that CI's
``bench-regression`` job then holds the tree to.
"""

from repro.perf.stream import TOKEN_DTYPE, TokenStream

__all__ = ["TOKEN_DTYPE", "TokenStream"]
