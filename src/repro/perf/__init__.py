"""Batched sparse execution path for the core engine.

FireSim's throughput rests on token transport being cheap relative to
target work (Section V): on the FPGA the token plumbing is wires.  The
pure-Python round loop in :mod:`repro.core.simulation` pays per-call
Python overhead on every link every round, which dominates both serial
and distributed runs.  This package provides the ``engine="batched"``
hot path:

* :mod:`repro.perf.stream` — per-link token windows as numpy structured
  arrays over the whole quantum (idle-token elision, one array op per
  link per round instead of per-cycle Python calls);
* :mod:`repro.perf.switch` — the columnar switch fast path: every stock
  :class:`~repro.net.switch.SwitchModel` is shadowed by a
  :class:`~repro.perf.switch.ColumnarSwitch` whose ingress/route/egress
  phases run as numpy array programs over per-packet columns, and
  switch-to-switch links carry
  :class:`~repro.perf.switch.ColumnarBatch` windows with no ``Flit``
  materialization at all;
* :mod:`repro.perf.engine` — a precompiled round loop that moves those
  windows with inlined queue operations and skips ticking models whose
  inputs carry no valid tokens and whose state provably cannot change
  (switches with empty queues, blades with no event due in the window).

The scalar path stays untouched as the bit-equality oracle: cycle
timestamps, switch counters, and tracer records are identical between
the two engines (``tests/test_perf_engine.py`` and
``tests/test_columnar_switch.py`` assert it), and
``scripts/bench_core.py`` measures the speedups that CI's
``bench-regression`` job then holds the tree to.
"""

from repro.perf.stream import TOKEN_DTYPE, TokenStream
from repro.perf.switch import ColumnarBatch, ColumnarSwitch

__all__ = ["TOKEN_DTYPE", "TokenStream", "ColumnarBatch", "ColumnarSwitch"]
