"""The batched round loop behind ``Simulation(engine="batched")``.

Token movement here is observably identical to the scalar orchestrator
(:meth:`repro.core.simulation.Simulation._run_round` stays untouched as
the bit-equality oracle); only the host cost changes.  Three overheads
are eliminated:

* **Per-call queue machinery.**  The model graph is compiled once per
  run into :class:`_Slot` entries binding each port directly to its
  :class:`~repro.core.channel.LinkEndpoint`.  The aligned common case —
  queue head covers exactly one quantum, no loss gap — pops with one
  ``deque.popleft`` and pushes with one ``deque.append``; the generic
  ``pop`` (splits, gap starvation) remains the fallback so fault
  semantics and diagnostics are unchanged.
* **Per-flit relabelling.**  Busy output windows become
  :class:`~repro.perf.stream.TokenStream` objects whose ``+latency``
  relabel is one vectorized add; idle windows are shifted in place
  (idle-token elision: a quiet link costs two integer adds per round).
* **Idle model ticks.**  A model whose every input window carries zero
  valid tokens is asked for
  :meth:`~repro.core.fame.Fame1Model.idle_outputs` first; models that
  can prove an all-idle window leaves their state untouched (switches
  with empty queues, tracers, null sinks, server blades with no queued
  transmits and no event due before the window's end) skip their tick
  entirely.
* **Per-flit switch phases.**  Every stock switch is shadowed by a
  :class:`~repro.perf.switch.ColumnarSwitch` whose ingress/route/egress
  phases run as numpy array programs; windows between two shadowed
  switches travel as :class:`~repro.perf.switch.ColumnarBatch` columns
  and ``Flit`` objects are only materialized where egress crosses back
  to a scalar consumer.  Shadows adopt the scalar queues at run start
  and flush them back (bit-identically) when the run ends.

Fault hooks fire at the same points as the scalar loop (round start
with ``model=None``, then after each model), and the observer either
gets per-tick callbacks (when Chrome tracing needs real span
timestamps) or one vectorized fold per run through
:meth:`~repro.obs.rate.RateMonitor.absorb_tick_totals` /
:meth:`~repro.obs.rate.RateMonitor.absorb_round_times`.

The same loop serves the distributed workers: ``pre_round`` drains peer
token messages and ``post_round`` flushes boundary outboxes, with
streams shipped over the wire in the producer's representation — no
convert/deconvert hop (:meth:`repro.dist.remote_link.RemoteAttachment.ship`).
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.fame import Fame1Model
from repro.core.token import TokenBatch, TokenWindow
from repro.perf.stream import TokenStream
from repro.perf.switch import ColumnarBatch, ColumnarSwitch


class _Slot:
    """One model's precompiled tick plan: ports bound to endpoints."""

    __slots__ = (
        "model", "tick", "idle", "in_ports", "out_ports", "name",
        "shadow", "raw",
    )

    def __init__(
        self,
        model: Fame1Model,
        idle: Optional[Callable[[TokenWindow], Optional[Dict[str, Any]]]],
        in_ports: List[Tuple[str, Any]],
        out_ports: List[
            Tuple[str, Any, int, bool, Any, Optional[Callable], bool]
        ],
        shadow: Optional[ColumnarSwitch] = None,
    ) -> None:
        self.model = model
        self.shadow = shadow
        # A shadowed (raw) slot ticks through the columnar step and may
        # receive inputs in any wire representation — ColumnarBatch,
        # TokenStream, or TokenBatch — without conversion.
        self.raw = shadow is not None
        if shadow is not None:
            self.tick = shadow.step
            self.idle = shadow.idle_outputs
        else:
            self.tick = model._tick
            self.idle = idle
        self.in_ports = in_ports
        self.out_ports = out_ports
        self.name = model.name


class RoundProgress:
    """Run accounting the loop flushes even when a fault hook raises.

    The caller folds these into ``Simulation.stats`` (or a
    ``WorkerResult``) in a ``finally`` block, so a mid-round crash
    leaves the same counters the scalar loop would: completed rounds
    plus the failing round's already-transmitted tokens.
    """

    __slots__ = (
        "cycle", "rounds", "tokens_moved", "valid_tokens_moved",
        "model_host_seconds",
    )

    def __init__(self, start_cycle: int) -> None:
        self.cycle = start_cycle
        self.rounds = 0
        self.tokens_moved = 0
        self.valid_tokens_moved = 0
        self.model_host_seconds: Dict[str, float] = {}


def compile_slots(
    models: Sequence[Fame1Model],
    get_attachment: Callable[[Fame1Model, str], Any],
) -> List[_Slot]:
    """Bind every model port to its endpoints for direct queue access.

    ``get_attachment`` returns either the orchestrator's
    ``_Attachment`` or a distributed ``RemoteAttachment``; both expose
    ``link``/``side``.  Remote producers additionally expose ``ship``,
    which replaces the local enqueue with an outbox append.
    """
    # Pass 1: resolve attachments, decide which models get a columnar
    # shadow, and learn which model consumes each link side so
    # producers know when a window may stay in columnar form.
    shadows: Dict[int, ColumnarSwitch] = {}
    consumers: Dict[Tuple[int, str], int] = {}
    resolved: List[List[Tuple[str, Any]]] = []
    for model in models:
        attachments: List[Tuple[str, Any]] = []
        for port in model.ports:
            attachment = get_attachment(model, port)
            attachments.append((port, attachment))
            consumers[(id(attachment.link), attachment.side)] = id(model)
        resolved.append(attachments)
        if getattr(model, "columnar_safe", False):
            shadows[id(model)] = ColumnarSwitch(model)
    slots: List[_Slot] = []
    for model, attachments in zip(models, resolved):
        in_ports: List[Tuple[str, Any]] = []
        out_ports: List[
            Tuple[str, Any, int, bool, Any, Optional[Callable], bool]
        ] = []
        for port, attachment in attachments:
            link = attachment.link
            if attachment.side == "a":
                in_endpoint, out_endpoint, is_a = link.to_a, link.to_b, True
                consumer_side = "b"
            else:
                in_endpoint, out_endpoint, is_a = link.to_b, link.to_a, False
                consumer_side = "a"
            in_ports.append((port, in_endpoint))
            ship = getattr(attachment, "ship", None)
            # Output windows stay columnar only when the local consumer
            # is itself a shadowed switch; blade NICs and distributed
            # boundary links get a materialized TokenStream.
            columnar_ok = (
                ship is None
                and consumers.get((id(link), consumer_side)) in shadows
            )
            out_ports.append(
                (port, link, link.latency, is_a, out_endpoint, ship,
                 columnar_ok)
            )
        shadow = shadows.get(id(model))
        idle = None
        if (
            shadow is None
            and type(model).idle_outputs is not Fame1Model.idle_outputs
        ):
            idle = model.idle_outputs
        slots.append(_Slot(model, idle, in_ports, out_ports, shadow))
    return slots


def _idle_fast_forward(
    slots: List[_Slot],
    horizons: List[Callable[[], Optional[int]]],
    endpoints: List[Any],
    quantum: int,
    cycle: int,
    target_cycle: int,
) -> int:
    """Skip as many provably idle rounds as the cluster allows.

    Called only right after a round in which *every* slot took its idle
    path, with no fault hook, distributed barrier, or tick tracing
    attached.  A further round is a no-op iff (a) no model acts
    spontaneously before the round's window closes — bounded by each
    model's ``idle_horizon`` — and (b) no in-flight window delivers a
    valid token, so every consumer idles again.  Both are stable across
    skipped rounds: untouched models cannot schedule new events and
    idle windows cannot spawn valid tokens.

    Running those rounds would only relabel the in-flight empty windows
    and bump counters, so the skip does exactly that and returns the
    number of rounds elided (0 when any condition fails).
    """
    horizon = target_cycle
    for idle_horizon in horizons:
        due = idle_horizon()
        if due is not None and due < horizon:
            if due - cycle < quantum:
                return 0
            horizon = due
    skipped = (horizon - cycle) // quantum
    if skipped <= 0:
        return 0
    for endpoint in endpoints:
        if endpoint._gap_at is not None:
            return 0
        for entry in endpoint._queue:
            kind = type(entry)
            if kind is TokenBatch:
                if entry.flits:
                    return 0
            elif kind is TokenStream:
                if entry.tokens.shape[0]:
                    return 0
            else:
                # Loss placeholders / columnar windows always carry
                # payload semantics a consumer must see round by round.
                return 0
    delta = skipped * quantum
    for endpoint in endpoints:
        for entry in endpoint._queue:
            entry.start_cycle += delta
        endpoint._consumed_until += delta
        endpoint._pushed_until += delta
    for slot in slots:
        slot.model.current_cycle += delta
    return skipped


def run_rounds(
    slots: List[_Slot],
    quantum: int,
    start_cycle: int,
    target_cycle: int,
    progress: RoundProgress,
    *,
    hook: Optional[Callable[[int, Optional[Fame1Model]], None]] = None,
    observer: Optional[Any] = None,
    measure: bool = False,
    pre_round: Optional[Callable[[int, int], None]] = None,
    post_round: Optional[Callable[[int, int], None]] = None,
    diagnose: Optional[Callable[[Fame1Model, int], Exception]] = None,
) -> None:
    """Advance all slots from ``start_cycle`` to ``target_cycle``.

    Timing modes (mutually exclusive in practice):

    * ``observer`` with an enabled Chrome trace: per-tick
      ``record_model_tick``/``record_round`` calls, exactly like the
      scalar observed path, so trace spans keep real timestamps;
    * ``observer`` without tracing, or ``measure=True`` (distributed
      workers): per-tick durations land in a preallocated numpy buffer
      folded once per round and flushed once per run.
    """
    trace_ticks = (
        observer is not None
        and getattr(observer, "trace", None) is not None
        and observer.trace.enabled
    )
    timed = measure or (observer is not None and not trace_ticks)
    names = [slot.name for slot in slots]
    count = len(slots)
    tick_buf = np.zeros(count) if timed else None
    tick_totals = np.zeros(count) if timed else None
    round_walls: List[float] = []
    from_flits = TokenStream.from_flits
    cycle = start_cycle
    rounds = 0
    tokens_moved = 0
    valid_tokens_moved = 0
    # Idle fast-forward: after a round in which every model took its
    # idle path, the cluster can sleep until the earliest idle horizon
    # (a blade's next due event) — provided nothing external observes
    # individual rounds (fault hooks, distributed barriers, tick
    # tracing) and no in-flight window carries a valid token.  Skipped
    # rounds are accounted arithmetically, bit-identically to running
    # them: state is untouched by construction, in-flight idle windows
    # are relabelled, and per-round token counts are exact multiples.
    horizons: Optional[List[Callable[[], Optional[int]]]] = None
    endpoints: List[Any] = []
    ports_per_round = 0
    if (
        hook is None
        and pre_round is None
        and post_round is None
        and not trace_ticks
    ):
        horizons = []
        seen: Dict[int, Any] = {}
        for slot in slots:
            target = slot.shadow if slot.shadow is not None else slot.model
            horizon = getattr(target, "idle_horizon", None)
            if slot.idle is None or horizon is None:
                horizons = None
                break
            horizons.append(horizon)
            ports_per_round += len(slot.out_ports)
            for _port, endpoint in slot.in_ports:
                seen[id(endpoint)] = endpoint
            for out in slot.out_ports:
                if out[5] is not None:  # remote ship: rounds are observed
                    horizons = None
                    break
                seen[id(out[4])] = out[4]
            if horizons is None:
                break
        endpoints = list(seen.values())
    # Columnar shadows take over their model's queues for the duration
    # of this run; flush (in the finally) writes the scalar form back.
    for slot in slots:
        if slot.shadow is not None:
            slot.shadow.adopt()
    try:
        while cycle < target_cycle:
            if pre_round is not None:
                pre_round(cycle, rounds)
            if hook is not None:
                hook(cycle, None)
            end = cycle + quantum
            window = TokenWindow(cycle, end)
            if timed or trace_ticks:
                round_start = perf_counter()
            quiet = horizons is not None
            for index, slot in enumerate(slots):
                model = slot.model
                raw = slot.raw
                inputs = {}
                busy = False
                try:
                    for port, endpoint in slot.in_ports:
                        queue = endpoint._queue
                        if queue and endpoint._gap_at is None:
                            head = queue[0]
                            if head.length == quantum:
                                queue.popleft()
                                endpoint._consumed_until += quantum
                                if raw or type(head) is TokenBatch:
                                    # Columnar consumers take any wire
                                    # representation as-is.
                                    batch = head
                                else:
                                    batch = head.to_batch()
                            else:
                                batch = endpoint.pop(quantum)
                        else:
                            batch = endpoint.pop(quantum)
                        if raw:
                            kind = type(batch)
                            if kind is ColumnarBatch:
                                if batch._valid:
                                    busy = True
                            elif kind is TokenStream:
                                if batch.tokens.shape[0]:
                                    busy = True
                            elif batch.flits:
                                busy = True
                        elif batch.flits:
                            busy = True
                        inputs[port] = batch
                except LookupError as exc:
                    if diagnose is not None:
                        raise diagnose(model, cycle) from exc
                    raise
                if timed or trace_ticks:
                    tick_start = perf_counter()
                outputs = None
                if not busy and slot.idle is not None:
                    if horizons is not None:
                        # The horizon pre-authorizes the idle window
                        # (same condition idle_outputs checks), so the
                        # just-popped empty input windows — garbage
                        # otherwise — become the outputs: observably
                        # identical empty quanta, zero allocation.
                        due = horizons[index]()
                        if due is None or due >= end:
                            outputs = inputs
                    else:
                        outputs = slot.idle(window)
                if outputs is None:
                    outputs = slot.tick(window, inputs)
                    quiet = False
                model.current_cycle = end
                if timed:
                    tick_buf[index] = perf_counter() - tick_start
                elif trace_ticks:
                    observer.record_model_tick(
                        slot.name, tick_start, perf_counter(), cycle, end
                    )
                for port, link, latency, is_a, out_endpoint, ship, col_ok in (
                    slot.out_ports
                ):
                    batch = outputs[port]
                    tokens_moved += batch.length
                    if type(batch) is ColumnarBatch:
                        # Columnar egress windows always carry tokens
                        # (empty ports come back as plain TokenBatch).
                        valid = batch._valid
                        valid_tokens_moved += valid
                        if col_ok:
                            shipped: Any = batch.shift(latency)
                        else:
                            shipped = batch.to_stream(latency)
                    else:
                        flits = batch.flits
                        valid = len(flits)
                        if valid:
                            valid_tokens_moved += valid
                            shipped = from_flits(
                                batch.start_cycle, batch.length, flits,
                                latency,
                            )
                        else:
                            # Idle-token elision: relabel the empty
                            # window in place.  Outputs are never
                            # referenced again by the producing model,
                            # so mutation is safe.
                            batch.start_cycle += latency
                            shipped = batch
                    if ship is not None:
                        ship(shipped, valid)
                    else:
                        if is_a:
                            link.flits_a_to_b += valid
                        else:
                            link.flits_b_to_a += valid
                        if shipped.start_cycle != out_endpoint._pushed_until:
                            raise ValueError(
                                "non-contiguous batch: expected start "
                                f"{out_endpoint._pushed_until}, got "
                                f"{shipped.start_cycle}"
                            )
                        out_endpoint._queue.append(shipped)
                        out_endpoint._pushed_until = (
                            shipped.start_cycle + shipped.length
                        )
                if hook is not None:
                    hook(cycle, model)
            cycle = end
            rounds += 1
            if timed:
                tick_totals += tick_buf
                round_walls.append(perf_counter() - round_start)
            elif trace_ticks:
                observer.record_round(quantum, perf_counter() - round_start)
            if post_round is not None:
                post_round(cycle, rounds)
            if quiet and cycle < target_cycle:
                if timed:
                    skip_start = perf_counter()
                skipped = _idle_fast_forward(
                    slots, horizons, endpoints, quantum, cycle, target_cycle
                )
                if skipped:
                    cycle += skipped * quantum
                    rounds += skipped
                    tokens_moved += skipped * quantum * ports_per_round
                    if timed:
                        # The monitor counts rounds as wall entries, so
                        # the skip lands as one real measurement plus
                        # zero-cost rounds — cycle/round totals stay
                        # exact (the skipped rounds truly cost ~nothing).
                        round_walls.append(perf_counter() - skip_start)
                        round_walls.extend([0.0] * (skipped - 1))
    finally:
        for slot in slots:
            if slot.shadow is not None:
                slot.shadow.flush()
        progress.cycle = cycle
        progress.rounds = rounds
        progress.tokens_moved = tokens_moved
        progress.valid_tokens_moved = valid_tokens_moved
        if timed:
            totals: Dict[str, float] = {}
            for name, seconds in zip(names, tick_totals.tolist()):
                totals[name] = totals.get(name, 0.0) + seconds
            progress.model_host_seconds = totals
            if observer is not None:
                observer.absorb_tick_totals(names, tick_totals)
                observer.absorb_round_times(quantum, round_walls)


def run_batched(simulation: Any, target_cycle: int) -> None:
    """Advance a started :class:`~repro.core.simulation.Simulation`.

    Entry point used by ``Simulation.run_until`` when
    ``engine="batched"``.  Slots are compiled fresh per call (~tens of
    microseconds on paper-scale graphs) so checkpoint restores and
    model-graph edits between runs can never observe a stale plan.
    """
    quantum = simulation.quantum
    attachments = simulation._attachments
    slots = compile_slots(
        simulation.models,
        lambda model, port: attachments[(id(model), port)],
    )

    def diagnose(model: Fame1Model, cycle: int) -> Exception:
        # The scalar loop only advances current_cycle at round end, so
        # at failure it reads the failing round's start — mirror that
        # before building the diagnostic.
        simulation.current_cycle = cycle
        return simulation._starvation_diagnostic(model, quantum)

    progress = RoundProgress(simulation.current_cycle)
    try:
        run_rounds(
            slots,
            quantum,
            simulation.current_cycle,
            target_cycle,
            progress,
            hook=simulation.fault_hook,
            observer=simulation.observer,
            diagnose=diagnose,
        )
    finally:
        stats = simulation.stats
        stats.rounds += progress.rounds
        stats.cycles += progress.rounds * quantum
        stats.tokens_moved += progress.tokens_moved
        stats.valid_tokens_moved += progress.valid_tokens_moved
        simulation.current_cycle = progress.cycle
