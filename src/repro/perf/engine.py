"""The batched round loop behind ``Simulation(engine="batched")``.

Token movement here is observably identical to the scalar orchestrator
(:meth:`repro.core.simulation.Simulation._run_round` stays untouched as
the bit-equality oracle); only the host cost changes.  Three overheads
are eliminated:

* **Per-call queue machinery.**  The model graph is compiled once per
  run into :class:`_Slot` entries binding each port directly to its
  :class:`~repro.core.channel.LinkEndpoint`.  The aligned common case —
  queue head covers exactly one quantum, no loss gap — pops with one
  ``deque.popleft`` and pushes with one ``deque.append``; the generic
  ``pop`` (splits, gap starvation) remains the fallback so fault
  semantics and diagnostics are unchanged.
* **Per-flit relabelling.**  Busy output windows become
  :class:`~repro.perf.stream.TokenStream` objects whose ``+latency``
  relabel is one vectorized add; idle windows are shifted in place
  (idle-token elision: a quiet link costs two integer adds per round).
* **Idle model ticks.**  A model whose every input window carries zero
  valid tokens is asked for
  :meth:`~repro.core.fame.Fame1Model.idle_outputs` first; models that
  can prove an all-idle window leaves their state untouched (switches
  with empty queues, tracers, null sinks) skip their tick entirely.
  Server blades never elide — their event queues generate traffic.

Fault hooks fire at the same points as the scalar loop (round start
with ``model=None``, then after each model), and the observer either
gets per-tick callbacks (when Chrome tracing needs real span
timestamps) or one vectorized fold per run through
:meth:`~repro.obs.rate.RateMonitor.absorb_tick_totals` /
:meth:`~repro.obs.rate.RateMonitor.absorb_round_times`.

The same loop serves the distributed workers: ``pre_round`` drains peer
token messages and ``post_round`` flushes boundary outboxes, with
streams shipped over the wire in the producer's representation — no
convert/deconvert hop (:meth:`repro.dist.remote_link.RemoteAttachment.ship`).
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.fame import Fame1Model
from repro.core.token import TokenBatch, TokenWindow
from repro.perf.stream import TokenStream


class _Slot:
    """One model's precompiled tick plan: ports bound to endpoints."""

    __slots__ = ("model", "tick", "idle", "in_ports", "out_ports", "name")

    def __init__(
        self,
        model: Fame1Model,
        idle: Optional[Callable[[TokenWindow], Optional[Dict[str, Any]]]],
        in_ports: List[Tuple[str, Any]],
        out_ports: List[Tuple[str, Any, int, bool, Any, Optional[Callable]]],
    ) -> None:
        self.model = model
        self.tick = model._tick
        self.idle = idle
        self.in_ports = in_ports
        self.out_ports = out_ports
        self.name = model.name


class RoundProgress:
    """Run accounting the loop flushes even when a fault hook raises.

    The caller folds these into ``Simulation.stats`` (or a
    ``WorkerResult``) in a ``finally`` block, so a mid-round crash
    leaves the same counters the scalar loop would: completed rounds
    plus the failing round's already-transmitted tokens.
    """

    __slots__ = (
        "cycle", "rounds", "tokens_moved", "valid_tokens_moved",
        "model_host_seconds",
    )

    def __init__(self, start_cycle: int) -> None:
        self.cycle = start_cycle
        self.rounds = 0
        self.tokens_moved = 0
        self.valid_tokens_moved = 0
        self.model_host_seconds: Dict[str, float] = {}


def compile_slots(
    models: Sequence[Fame1Model],
    get_attachment: Callable[[Fame1Model, str], Any],
) -> List[_Slot]:
    """Bind every model port to its endpoints for direct queue access.

    ``get_attachment`` returns either the orchestrator's
    ``_Attachment`` or a distributed ``RemoteAttachment``; both expose
    ``link``/``side``.  Remote producers additionally expose ``ship``,
    which replaces the local enqueue with an outbox append.
    """
    slots: List[_Slot] = []
    for model in models:
        in_ports: List[Tuple[str, Any]] = []
        out_ports: List[Tuple[str, Any, int, bool, Any, Optional[Callable]]] = []
        for port in model.ports:
            attachment = get_attachment(model, port)
            link = attachment.link
            if attachment.side == "a":
                in_endpoint, out_endpoint, is_a = link.to_a, link.to_b, True
            else:
                in_endpoint, out_endpoint, is_a = link.to_b, link.to_a, False
            in_ports.append((port, in_endpoint))
            ship = getattr(attachment, "ship", None)
            out_ports.append(
                (port, link, link.latency, is_a, out_endpoint, ship)
            )
        idle = None
        if type(model).idle_outputs is not Fame1Model.idle_outputs:
            idle = model.idle_outputs
        slots.append(_Slot(model, idle, in_ports, out_ports))
    return slots


def run_rounds(
    slots: List[_Slot],
    quantum: int,
    start_cycle: int,
    target_cycle: int,
    progress: RoundProgress,
    *,
    hook: Optional[Callable[[int, Optional[Fame1Model]], None]] = None,
    observer: Optional[Any] = None,
    measure: bool = False,
    pre_round: Optional[Callable[[int, int], None]] = None,
    post_round: Optional[Callable[[int, int], None]] = None,
    diagnose: Optional[Callable[[Fame1Model, int], Exception]] = None,
) -> None:
    """Advance all slots from ``start_cycle`` to ``target_cycle``.

    Timing modes (mutually exclusive in practice):

    * ``observer`` with an enabled Chrome trace: per-tick
      ``record_model_tick``/``record_round`` calls, exactly like the
      scalar observed path, so trace spans keep real timestamps;
    * ``observer`` without tracing, or ``measure=True`` (distributed
      workers): per-tick durations land in a preallocated numpy buffer
      folded once per round and flushed once per run.
    """
    trace_ticks = (
        observer is not None
        and getattr(observer, "trace", None) is not None
        and observer.trace.enabled
    )
    timed = measure or (observer is not None and not trace_ticks)
    names = [slot.name for slot in slots]
    count = len(slots)
    tick_buf = np.zeros(count) if timed else None
    tick_totals = np.zeros(count) if timed else None
    round_walls: List[float] = []
    from_flits = TokenStream.from_flits
    cycle = start_cycle
    rounds = 0
    tokens_moved = 0
    valid_tokens_moved = 0
    try:
        while cycle < target_cycle:
            if pre_round is not None:
                pre_round(cycle, rounds)
            if hook is not None:
                hook(cycle, None)
            end = cycle + quantum
            window = TokenWindow(cycle, end)
            if timed or trace_ticks:
                round_start = perf_counter()
            for index, slot in enumerate(slots):
                model = slot.model
                inputs = {}
                busy = False
                try:
                    for port, endpoint in slot.in_ports:
                        queue = endpoint._queue
                        if queue and endpoint._gap_at is None:
                            head = queue[0]
                            if head.length == quantum:
                                queue.popleft()
                                endpoint._consumed_until += quantum
                                batch = (
                                    head
                                    if type(head) is TokenBatch
                                    else head.to_batch()
                                )
                            else:
                                batch = endpoint.pop(quantum)
                        else:
                            batch = endpoint.pop(quantum)
                        if batch.flits:
                            busy = True
                        inputs[port] = batch
                except LookupError as exc:
                    if diagnose is not None:
                        raise diagnose(model, cycle) from exc
                    raise
                if timed or trace_ticks:
                    tick_start = perf_counter()
                outputs = None
                if not busy and slot.idle is not None:
                    outputs = slot.idle(window)
                if outputs is None:
                    outputs = slot.tick(window, inputs)
                model.current_cycle = end
                if timed:
                    tick_buf[index] = perf_counter() - tick_start
                elif trace_ticks:
                    observer.record_model_tick(
                        slot.name, tick_start, perf_counter(), cycle, end
                    )
                for port, link, latency, is_a, out_endpoint, ship in (
                    slot.out_ports
                ):
                    batch = outputs[port]
                    flits = batch.flits
                    valid = len(flits)
                    tokens_moved += batch.length
                    if valid:
                        valid_tokens_moved += valid
                        shipped: Any = from_flits(
                            batch.start_cycle, batch.length, flits, latency
                        )
                    else:
                        # Idle-token elision: relabel the empty window in
                        # place.  Outputs are never referenced again by
                        # the producing model, so mutation is safe.
                        batch.start_cycle += latency
                        shipped = batch
                    if ship is not None:
                        ship(shipped, valid)
                    else:
                        if is_a:
                            link.flits_a_to_b += valid
                        else:
                            link.flits_b_to_a += valid
                        if shipped.start_cycle != out_endpoint._pushed_until:
                            raise ValueError(
                                "non-contiguous batch: expected start "
                                f"{out_endpoint._pushed_until}, got "
                                f"{shipped.start_cycle}"
                            )
                        out_endpoint._queue.append(shipped)
                        out_endpoint._pushed_until = (
                            shipped.start_cycle + shipped.length
                        )
                if hook is not None:
                    hook(cycle, model)
            cycle = end
            rounds += 1
            if timed:
                tick_totals += tick_buf
                round_walls.append(perf_counter() - round_start)
            elif trace_ticks:
                observer.record_round(quantum, perf_counter() - round_start)
            if post_round is not None:
                post_round(cycle, rounds)
    finally:
        progress.cycle = cycle
        progress.rounds = rounds
        progress.tokens_moved = tokens_moved
        progress.valid_tokens_moved = valid_tokens_moved
        if timed:
            totals: Dict[str, float] = {}
            for name, seconds in zip(names, tick_totals.tolist()):
                totals[name] = totals.get(name, 0.0) + seconds
            progress.model_host_seconds = totals
            if observer is not None:
                observer.absorb_tick_totals(names, tick_totals)
                observer.absorb_round_times(quantum, round_walls)


def run_batched(simulation: Any, target_cycle: int) -> None:
    """Advance a started :class:`~repro.core.simulation.Simulation`.

    Entry point used by ``Simulation.run_until`` when
    ``engine="batched"``.  Slots are compiled fresh per call (~tens of
    microseconds on paper-scale graphs) so checkpoint restores and
    model-graph edits between runs can never observe a stale plan.
    """
    quantum = simulation.quantum
    attachments = simulation._attachments
    slots = compile_slots(
        simulation.models,
        lambda model, port: attachments[(id(model), port)],
    )

    def diagnose(model: Fame1Model, cycle: int) -> Exception:
        # The scalar loop only advances current_cycle at round end, so
        # at failure it reads the failing round's start — mirror that
        # before building the diagnostic.
        simulation.current_cycle = cycle
        return simulation._starvation_diagnostic(model, quantum)

    progress = RoundProgress(simulation.current_cycle)
    try:
        run_rounds(
            slots,
            quantum,
            simulation.current_cycle,
            target_cycle,
            progress,
            hook=simulation.fault_hook,
            observer=simulation.observer,
            diagnose=diagnose,
        )
    finally:
        stats = simulation.stats
        stats.rounds += progress.rounds
        stats.cycles += progress.rounds * quantum
        stats.tokens_moved += progress.tokens_moved
        stats.valid_tokens_moved += progress.valid_tokens_moved
        simulation.current_cycle = progress.cycle
