"""Sparse numpy token streams: the batched engine's wire format.

A :class:`~repro.core.token.TokenBatch` stores valid tokens in a Python
dict keyed by absolute cycle.  That is the right shape for models (which
inspect flits one by one) but the wrong shape for *transport*: shifting
a batch across a link of latency ``l`` rebuilds the dict one entry at a
time, so the relabelling cost scales with per-flit Python calls.

A :class:`TokenStream` holds the same window as one numpy structured
array of ``(cycle, flit)`` records sorted by cycle, so the ``+l``
relabel is a single vectorized add on the ``cycle`` column — one array
op per link per round.  Idle windows never become streams at all: the
engine shifts the model's empty output batch in place (idle-token
elision — a quiet link costs two integer adds per round, no numpy
overhead, no allocation).

Streams duck-type the parts of ``TokenBatch`` the channel layer touches
(``start_cycle``/``length``/``end_cycle``/``flits``/``valid_count``),
so :class:`~repro.core.channel.LinkEndpoint` queues can hold a mix of
both and the scalar ``pop`` path still consumes them correctly.  The
distributed wire ships whichever object the link layer holds — streams
pickle as-is, with no convert/deconvert hop on either side.

Conversion back to a batch (at the model boundary) goes through
``ndarray.tolist()`` so cycles come back as Python ``int``: letting
``numpy.int64`` leak into flit dicts would silently change ``repr()``
digests and break ``json.dumps`` of CLI results.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

from repro.core.token import Flit, TokenBatch

#: One valid token: absolute target cycle plus the flit payload.  The
#: ``last`` flag mirrors ``Flit.last`` so frame boundaries can be found
#: with one array scan (columnar switch ingress) instead of touching
#: every flit object.
TOKEN_DTYPE = np.dtype(
    [("cycle", np.int64), ("flit", np.object_), ("last", np.bool_)]
)

#: Shared zero-length token array for streams with no valid tokens.
EMPTY_TOKENS = np.empty(0, dtype=TOKEN_DTYPE)


class TokenStream:
    """A contiguous window of tokens backed by a structured array.

    Covers target cycles ``[start_cycle, start_cycle + length)`` exactly
    like a ``TokenBatch``; ``tokens`` holds the valid cycles in ascending
    order.  Instances are treated as immutable once enqueued or shipped
    (:meth:`shift` is only applied by the producer before handoff).
    """

    __slots__ = ("start_cycle", "length", "tokens")

    def __init__(
        self,
        start_cycle: int,
        length: int,
        tokens: np.ndarray = EMPTY_TOKENS,
    ) -> None:
        self.start_cycle = start_cycle
        self.length = length
        self.tokens = tokens

    # -- construction ---------------------------------------------------

    @classmethod
    def from_flits(
        cls,
        start_cycle: int,
        length: int,
        flits: Dict[int, Flit],
        shift: int = 0,
    ) -> "TokenStream":
        """Build a (optionally relabelled) stream from a sparse flit map.

        ``shift`` applies the link-latency relabel during construction:
        the cycle column is filled once and shifted with one vectorized
        add, which is the whole point of the representation.
        """
        items = sorted(flits.items())
        tokens = np.empty(len(items), dtype=TOKEN_DTYPE)
        tokens["cycle"] = [cycle for cycle, _ in items]
        tokens["flit"] = [flit for _, flit in items]
        # getattr: transport tests (and any out-of-tree payload) may
        # carry opaque objects; only real flits have frame boundaries.
        tokens["last"] = [
            getattr(flit, "last", False) for _, flit in items
        ]
        if shift:
            tokens["cycle"] += shift
        return cls(start_cycle + shift, length, tokens)

    @classmethod
    def from_batch(cls, batch: TokenBatch, shift: int = 0) -> "TokenStream":
        return cls.from_flits(
            batch.start_cycle, batch.length, batch.flits, shift
        )

    @classmethod
    def from_wire(
        cls,
        start_cycle: int,
        length: int,
        cycles: np.ndarray,
        flits: list,
    ) -> "TokenStream":
        """Rebuild a stream from its shared-memory wire representation.

        ``cycles`` is the raw int64 column as read off the transport
        ring (typically a read-only ``frombuffer`` view) and ``flits``
        the matching unpickled payload list; both columns land in the
        token array with one vectorized assignment each, so the
        consumer never builds intermediate per-token tuples.
        """
        tokens = np.empty(len(flits), dtype=TOKEN_DTYPE)
        tokens["cycle"] = cycles
        tokens["flit"] = flits
        tokens["last"] = np.fromiter(
            (getattr(flit, "last", False) for flit in flits),
            np.bool_,
            count=len(flits),
        )
        return cls(start_cycle, length, tokens)

    # -- transport ------------------------------------------------------

    def shift(self, latency: int) -> "TokenStream":
        """Relabel in place by ``+latency``: one array op, no copy.

        Only the producer may call this, before the stream is enqueued
        or shipped; consumers treat streams as immutable.
        """
        self.start_cycle += latency
        if self.tokens.shape[0]:
            self.tokens["cycle"] += latency
        return self

    def to_batch(self) -> TokenBatch:
        """Materialize as a ``TokenBatch`` with Python-int cycle keys."""
        batch = TokenBatch(self.start_cycle, self.length)
        tokens = self.tokens
        if tokens.shape[0]:
            batch.flits = dict(
                zip(tokens["cycle"].tolist(), tokens["flit"].tolist())
            )
        return batch

    # -- TokenBatch duck interface --------------------------------------

    @property
    def end_cycle(self) -> int:
        return self.start_cycle + self.length

    @property
    def valid_count(self) -> int:
        return int(self.tokens.shape[0])

    @property
    def flits(self) -> Dict[int, Flit]:
        """The sparse cycle -> flit map, materialized on demand.

        Built fresh per access (no caching: a cached dict would go
        stale under :meth:`shift`).  The batched engine avoids this
        property on its hot path by converting whole streams with
        :meth:`to_batch`; it exists so the scalar ``LinkEndpoint.pop``
        can gather and split mixed queues.
        """
        tokens = self.tokens
        if not tokens.shape[0]:
            return {}
        return dict(zip(tokens["cycle"].tolist(), tokens["flit"].tolist()))

    def contains_cycle(self, cycle: int) -> bool:
        return self.start_cycle <= cycle < self.end_cycle

    def iter_flits(self) -> Iterator[Tuple[int, Flit]]:
        """Yield ``(cycle, flit)`` pairs in cycle order."""
        for cycle, flit in zip(
            self.tokens["cycle"].tolist(), self.tokens["flit"].tolist()
        ):
            yield cycle, flit

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TokenStream(start={self.start_cycle}, len={self.length}, "
            f"valid={self.valid_count})"
        )
