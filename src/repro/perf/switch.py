"""Columnar switch hot path: vectorized ingress → route → egress.

The scalar :class:`~repro.net.switch.SwitchModel` walks every flit of
every packet through Python loops — ``iter_flits`` reassembly on
ingress, a heapq pop/push loop in the switching step, and a per-flit
``batch.add`` loop on egress.  Under the batched engine the switch is
the hot model (every token of Section III-B crosses it), so this module
re-expresses one round of switch work over *columns*:

* **ingress** — packet boundaries come from one vectorized last-flit
  scan per port (``np.flatnonzero`` on the ``last`` column of the
  port's :class:`~repro.perf.stream.TokenStream`), or from pure array
  arithmetic when the port feeds from another columnar switch;
* **switching** — one ``np.lexsort`` over ``(timestamp, ingress_port)``
  replaces the heapq loop, and route lookup is a gather over the
  round's *unique* destinations (broadcast and unroutable traffic
  falls back to the scalar-identical per-packet walk so memo/stat
  semantics stay exact);
* **egress** — per-port emission schedules are computed arithmetically:
  the pacing recurrence ``cursor_k = max(cursor_{k-1}, release_k) +
  flits_k * pace`` is a ``cumsum`` plus a ``maximum.accumulate``, flit
  cycles are arange-style ranges, and the buffer-bound drop check is a
  vectorized lag mask.

Between two columnar switches a window travels as a
:class:`ColumnarBatch` — per-*packet* columns plus a frame side table —
so :class:`~repro.core.token.Flit` objects are never materialized until
egress crosses back to a scalar consumer (a blade NIC, a tracer, or a
distributed boundary link, where the engine converts to a
``TokenStream``).

The shadow is **state-synchronized** with its scalar model:
:class:`ColumnarSwitch` adopts the model's output queues, pacing
cursors, and sequence counter when a batched run starts,
mutates the model's ``stats``/``egress_log``/route caches live,
and flushes the queues back as ``_QueuedPacket`` heaps when the run
ends.  Switching engines mid-simulation (or checkpointing between
runs) therefore observes exactly the state a scalar run would hold,
and the scalar model remains the untouched bit-equality oracle.

Trace-sink instrumentation survives vectorization: when the sink is
enabled the switching step takes the scalar-identical walk and egress
emits ``drop``/``dequeue`` events from the computed columns in queue
order, so the recorded stream is bit-identical to the scalar one.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.token import Flit, TokenBatch, TokenWindow
from repro.net.ethernet import BROADCAST_MAC
from repro.net.switch import SwitchModel, _QueuedPacket
from repro.obs.trace import get_trace_sink
from repro.perf.stream import TOKEN_DTYPE, TokenStream

_INT = np.int64

#: Egress processes the (possibly very long) output queue in chunks:
#: only a window's worth of packets can emit per round, so work stays
#: proportional to traffic, not to backlog.
_EGRESS_CHUNK = 512


class ColumnarBatch:
    """One window of switch egress traffic as per-packet columns.

    Covers target cycles ``[start_cycle, start_cycle + length)`` like a
    :class:`~repro.core.token.TokenBatch`, but stores one *row per
    packet segment* instead of one dict entry per flit:

    ``frames[k]``       the packet's EthernetFrame (side table),
    ``first_cycle[k]``  absolute cycle of its first flit in this window,
    ``count[k]``        flits it occupies in this window,
    ``first_index[k]``  flit index of that first flit,
    ``total[k]``        the frame's full flit count,
    ``src[k]/dst[k]/size[k]``  routing/accounting columns,

    with a uniform flit ``stride`` (the producing port's
    ``cycles_per_flit``), so flit ``j`` of row ``k`` sits at cycle
    ``first_cycle[k] + j * stride``.  A row with
    ``first_index + count < total`` is a window straddler; the next
    window's batch carries its continuation row.

    Duck-types the parts of ``TokenBatch`` the channel layer and the
    scalar consumers touch, so mixed queues (engine switches, faults,
    checkpoint restores) keep working; materialization to flits happens
    only there.
    """

    __slots__ = (
        "start_cycle", "length", "stride", "frames", "first_cycle",
        "count", "first_index", "total", "src", "dst", "size", "_valid",
    )

    def __init__(
        self,
        start_cycle: int,
        length: int,
        stride: int,
        frames: np.ndarray,
        first_cycle: np.ndarray,
        count: np.ndarray,
        first_index: np.ndarray,
        total: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        size: np.ndarray,
    ) -> None:
        self.start_cycle = start_cycle
        self.length = length
        self.stride = stride
        self.frames = frames
        self.first_cycle = first_cycle
        self.count = count
        self.first_index = first_index
        self.total = total
        self.src = src
        self.dst = dst
        self.size = size
        self._valid = int(count.sum())

    # -- transport ------------------------------------------------------

    def shift(self, latency: int) -> "ColumnarBatch":
        """Relabel in place by ``+latency``: two vectorized adds."""
        if latency:
            self.start_cycle += latency
            self.first_cycle += latency
        return self

    def _materialize(self, shift: int = 0) -> Tuple[List[int], List[Flit]]:
        """Flit cycles and objects in ascending cycle order."""
        cycles: List[int] = []
        flits: List[Flit] = []
        stride = self.stride
        first_cycle = self.first_cycle.tolist()
        counts = self.count.tolist()
        first_index = self.first_index.tolist()
        totals = self.total.tolist()
        for k, frame in enumerate(self.frames.tolist()):
            base = first_cycle[k] + shift
            index = first_index[k]
            last_index = totals[k] - 1
            for j in range(counts[k]):
                cycles.append(base + j * stride)
                position = index + j
                flits.append(
                    Flit(
                        data=frame,
                        last=position == last_index,
                        index=position,
                    )
                )
        return cycles, flits

    def to_stream(self, shift: int = 0) -> TokenStream:
        """Materialize as a (relabelled) ``TokenStream`` for scalar
        consumers — blade NICs, tracers, distributed boundary links."""
        cycles, flits = self._materialize(shift)
        tokens = np.empty(len(flits), dtype=TOKEN_DTYPE)
        tokens["cycle"] = cycles
        tokens["flit"] = flits
        # A flit is ``last`` iff it closes its packet: the final flit of
        # each fully-emitted (done) packet's run in the window.
        last = np.zeros(len(flits), dtype=np.bool_)
        if len(flits):
            run_ends = np.cumsum(self.count) - 1
            done = self.first_index + self.count == self.total
            last[run_ends[done]] = True
        tokens["last"] = last
        return TokenStream(self.start_cycle + shift, self.length, tokens)

    def to_batch(self) -> TokenBatch:
        batch = TokenBatch(self.start_cycle, self.length)
        cycles, flits = self._materialize()
        batch.flits = dict(zip(cycles, flits))
        return batch

    # -- TokenBatch duck interface --------------------------------------

    @property
    def end_cycle(self) -> int:
        return self.start_cycle + self.length

    @property
    def valid_count(self) -> int:
        return self._valid

    @property
    def flits(self) -> Dict[int, Flit]:
        cycles, flits = self._materialize()
        return dict(zip(cycles, flits))

    def contains_cycle(self, cycle: int) -> bool:
        return self.start_cycle <= cycle < self.end_cycle

    def iter_flits(self) -> Iterator[Tuple[int, Flit]]:
        cycles, flits = self._materialize()
        return iter(zip(cycles, flits))

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarBatch(start={self.start_cycle}, len={self.length}, "
            f"packets={self.frames.shape[0]}, valid={self._valid})"
        )


class _ColQueue:
    """One egress port's packet buffer as growable parallel columns.

    Mirrors the scalar heap of ``_QueuedPacket``: rows are kept sorted
    by ``(release, seq)``.  New arrivals always release strictly after
    everything buffered (their last flit lands in the current window,
    every buffered packet's landed in an earlier one), so enqueue is a
    plain append and the sort order is an invariant, not a cost.  Only
    the head row can be partially emitted (``head_emitted``), exactly
    like the scalar drain loop's window straddler.
    """

    __slots__ = (
        "release", "seq", "frame", "size", "total",
        "head", "tail", "head_emitted",
    )

    def __init__(self) -> None:
        self.release = np.empty(16, dtype=_INT)
        self.seq = np.empty(16, dtype=_INT)
        self.frame = np.empty(16, dtype=object)
        self.size = np.empty(16, dtype=_INT)
        self.total = np.empty(16, dtype=_INT)
        self.head = 0
        self.tail = 0
        self.head_emitted = 0

    def __len__(self) -> int:
        return self.tail - self.head

    def _reserve(self, extra: int) -> None:
        capacity = self.release.shape[0]
        used = self.tail - self.head
        if self.tail + extra <= capacity and self.head < capacity // 2:
            return
        new_capacity = max(capacity, 16)
        while new_capacity < (used + extra) * 2:
            new_capacity *= 2
        for name in ("release", "seq", "frame", "size", "total"):
            old = getattr(self, name)
            grown = np.empty(new_capacity, dtype=old.dtype)
            grown[:used] = old[self.head:self.tail]
            setattr(self, name, grown)
        self.head = 0
        self.tail = used

    def append(
        self,
        release: np.ndarray,
        seq: np.ndarray,
        frames: np.ndarray,
        size: np.ndarray,
        total: np.ndarray,
    ) -> None:
        n = len(release)
        self._reserve(n)
        tail = self.tail
        self.release[tail:tail + n] = release
        self.seq[tail:tail + n] = seq
        self.frame[tail:tail + n] = frames
        self.size[tail:tail + n] = size
        self.total[tail:tail + n] = total
        self.tail = tail + n

    def remove_at(self, index: int) -> None:
        """Drop the row at absolute ``index`` (buffer-bound drops)."""
        for name in ("release", "seq", "frame", "size", "total"):
            column = getattr(self, name)
            column[index:self.tail - 1] = column[index + 1:self.tail]
        self.tail -= 1


class ColumnarSwitch:
    """Vectorized shadow of a stock :class:`SwitchModel`.

    Built by the batched engine's slot compiler for every switch whose
    phases are all stock (``model.columnar_safe``).  ``step`` replaces
    ``model._tick`` for the duration of one ``run_rounds`` call;
    ``flush`` restores the scalar representation afterwards.
    """

    def __init__(self, model: SwitchModel) -> None:
        if not model.columnar_safe:  # pragma: no cover - compiler guards
            raise ValueError(f"switch {model.name} is not columnar-safe")
        self.model = model
        config = model.config
        self.num_ports = config.num_ports
        self.min_latency = config.min_latency_cycles
        self.pace = config.cycles_per_flit
        self.buffer_flits = config.buffer_flits
        self.ports = list(model.ports)
        # Route gather cache: dst -> egress port (-1 = unroutable).
        # Invalidated with the scalar memo whenever the MAC table
        # version or the default port moves.
        self._dst_ports: Dict[int, int] = {}
        self._route_key: Tuple[int, Optional[int]] = (-1, None)
        self._queues: List[_ColQueue] = []
        self._next_free: List[int] = []
        self._partial: List[Tuple[Optional[Any], int]] = []
        self._seq_next = 0

    # -- state synchronization with the scalar model --------------------

    def adopt(self) -> None:
        """Take over the model's queues/cursors in columnar form."""
        model = self.model
        self._queues = []
        for heap in model._out_queues:
            queue = _ColQueue()
            if heap:
                packets = sorted(heap)
                queue.append(
                    np.fromiter(
                        (p.release_cycle for p in packets), _INT,
                        count=len(packets),
                    ),
                    np.fromiter(
                        (p.seq for p in packets), _INT, count=len(packets)
                    ),
                    np.array([p.frame for p in packets], dtype=object),
                    np.fromiter(
                        (p.frame.size_bytes for p in packets), _INT,
                        count=len(packets),
                    ),
                    np.fromiter(
                        (p.frame.flit_count for p in packets), _INT,
                        count=len(packets),
                    ),
                )
                queue.head_emitted = packets[0].flits_emitted
            self._queues.append(queue)
        self._next_free = list(model._port_next_free)
        # Partial reassembly state per ingress port: (frame, flits seen).
        self._partial = []
        for flits in model._partial:
            if flits:
                self._partial.append((flits[-1].data, len(flits)))
            else:
                self._partial.append((None, 0))
        self._seq_next = next(model._seq)

    def flush(self) -> None:
        """Write queues/cursors back as the scalar representation.

        A list sorted on ``(release, seq)`` satisfies the heap
        invariant, so the scalar drain loop can resume on it directly.
        """
        model = self.model
        for port, queue in enumerate(self._queues):
            head, tail = queue.head, queue.tail
            releases = queue.release[head:tail].tolist()
            seqs = queue.seq[head:tail].tolist()
            frames = queue.frame[head:tail].tolist()
            packets = [
                _QueuedPacket(releases[i], seqs[i], frames[i])
                for i in range(tail - head)
            ]
            if packets:
                packets[0].flits_emitted = queue.head_emitted
            model._out_queues[port] = packets
        for port, cursor in enumerate(self._next_free):
            model._port_next_free[port] = int(cursor)
        for port, (frame, seen) in enumerate(self._partial):
            model._partial[port] = [
                Flit(data=frame, last=False, index=index)
                for index in range(seen)
            ]
        model._seq = itertools.count(self._seq_next)
        # The scalar switching step syncs the memo lazily each tick; do
        # the same sync here so flushed state matches a scalar run's.
        if model._route_version != model._mac_table.version:
            model._route_cache.clear()
            model._route_version = model._mac_table.version

    # -- FAME-1 tick ----------------------------------------------------

    def step(
        self, window: TokenWindow, inputs: Dict[str, Any]
    ) -> Dict[str, Any]:
        arrivals = self._ingress(inputs)
        if arrivals is not None:
            self._switching(arrivals)
        return self._egress(window)

    def idle_outputs(
        self, window: TokenWindow
    ) -> Optional[Dict[str, TokenBatch]]:
        if any(queue.tail - queue.head for queue in self._queues):
            return None
        return {port: window.new_batch() for port in self.ports}

    def idle_horizon(self) -> Optional[int]:
        """Drained columnar switch: wakes only on arrival (never alone)."""
        if any(queue.tail - queue.head for queue in self._queues):
            return self.model.current_cycle
        return None

    # -- ingress --------------------------------------------------------

    def _ingress(self, inputs: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """Assemble this round's completed packets as columns.

        Returns ``None`` when no packet completed, else a dict of
        parallel arrays sorted by ``(timestamp, ingress_port)`` —
        exactly the order the scalar heap pops in (timestamps are
        unique per port: one flit per cycle, one ``last`` per packet).
        """
        ts_parts: List[np.ndarray] = []
        port_parts: List[np.ndarray] = []
        frame_parts: List[np.ndarray] = []
        src_parts: List[np.ndarray] = []
        dst_parts: List[np.ndarray] = []
        size_parts: List[np.ndarray] = []
        total_parts: List[np.ndarray] = []
        min_latency = self.min_latency
        stats = self.model.stats
        for port_index in range(self.num_ports):
            batch = inputs[self.ports[port_index]]
            kind = type(batch)
            if kind is ColumnarBatch:
                if not batch._valid:
                    continue
                done = batch.first_index + batch.count == batch.total
                n_done = int(np.count_nonzero(done))
                trailing_partial = not done[-1]
                if n_done:
                    last_cycle = (
                        batch.first_cycle
                        + (batch.count - 1) * batch.stride
                    )
                    ts_parts.append(last_cycle[done] + min_latency)
                    port_parts.append(
                        np.full(n_done, port_index, dtype=_INT)
                    )
                    frame_parts.append(batch.frames[done])
                    src_parts.append(batch.src[done])
                    dst_parts.append(batch.dst[done])
                    sizes = batch.size[done]
                    size_parts.append(sizes)
                    total_parts.append(batch.total[done])
                    stats.packets_in += n_done
                    stats.bytes_in += int(sizes.sum())
                if trailing_partial:
                    self._partial[port_index] = (
                        batch.frames[-1],
                        int(batch.first_index[-1] + batch.count[-1]),
                    )
                elif n_done:
                    self._partial[port_index] = (None, 0)
                continue
            if kind is TokenStream:
                tokens = batch.tokens
                n = int(tokens.shape[0])
                if not n:
                    continue
                # Frame boundaries come straight off the ``last``
                # column: per-flit object access is avoided entirely —
                # only the one closing flit per frame is touched.
                ends = np.flatnonzero(tokens["last"])
                frame, seen = self._partial[port_index]
                flit_col = tokens["flit"]
                if ends.shape[0]:
                    end_list = ends.tolist()
                    frames = np.array(
                        [flit_col[i].data for i in end_list], dtype=object
                    )
                    n_done = len(end_list)
                    ts_parts.append(tokens["cycle"][ends] + min_latency)
                    port_parts.append(
                        np.full(n_done, port_index, dtype=_INT)
                    )
                    frame_parts.append(frames)
                    src_parts.append(
                        np.fromiter(
                            (f.src for f in frames), _INT, count=n_done
                        )
                    )
                    dst_parts.append(
                        np.fromiter(
                            (f.dst for f in frames), _INT, count=n_done
                        )
                    )
                    sizes = np.fromiter(
                        (f.size_bytes for f in frames), _INT, count=n_done
                    )
                    size_parts.append(sizes)
                    total_parts.append(
                        np.fromiter(
                            (f.flit_count for f in frames),
                            _INT,
                            count=n_done,
                        )
                    )
                    stats.packets_in += n_done
                    stats.bytes_in += int(sizes.sum())
                    trailing = n - 1 - end_list[-1]
                    frame, seen = (
                        (flit_col[n - 1].data, trailing)
                        if trailing
                        else (None, 0)
                    )
                else:
                    frame, seen = flit_col[n - 1].data, seen + n
                self._partial[port_index] = (frame, seen)
                continue
            else:  # TokenBatch (priming windows, split-pop fallbacks)
                if not batch.flits:
                    continue
                items = sorted(batch.flits.items())
                cycles = np.fromiter(
                    (cycle for cycle, _ in items), _INT, count=len(items)
                )
                flit_list = [flit for _, flit in items]
            last = np.fromiter(
                (flit.last for flit in flit_list),
                dtype=np.bool_,
                count=len(flit_list),
            )
            ends = np.flatnonzero(last)
            frame, seen = self._partial[port_index]
            if ends.shape[0]:
                end_list = ends.tolist()
                frames = np.array(
                    [flit_list[i].data for i in end_list], dtype=object
                )
                n_done = len(end_list)
                ts_parts.append(cycles[ends] + min_latency)
                port_parts.append(np.full(n_done, port_index, dtype=_INT))
                frame_parts.append(frames)
                src_parts.append(
                    np.fromiter(
                        (f.src for f in frames), _INT, count=n_done
                    )
                )
                dst_parts.append(
                    np.fromiter(
                        (f.dst for f in frames), _INT, count=n_done
                    )
                )
                sizes = np.fromiter(
                    (f.size_bytes for f in frames), _INT, count=n_done
                )
                size_parts.append(sizes)
                total_parts.append(
                    np.fromiter(
                        (f.flit_count for f in frames), _INT, count=n_done
                    )
                )
                stats.packets_in += n_done
                stats.bytes_in += int(sizes.sum())
                trailing = len(flit_list) - 1 - end_list[-1]
                frame, seen = (
                    (flit_list[-1].data, trailing) if trailing else (None, 0)
                )
            else:
                frame, seen = flit_list[-1].data, seen + len(flit_list)
            self._partial[port_index] = (frame, seen)
        if not ts_parts:
            return None
        ts = np.concatenate(ts_parts)
        ports = np.concatenate(port_parts)
        order = np.lexsort((ports, ts))
        return {
            "ts": ts[order],
            "port": ports[order],
            "frame": np.concatenate(frame_parts)[order],
            "src": np.concatenate(src_parts)[order],
            "dst": np.concatenate(dst_parts)[order],
            "size": np.concatenate(size_parts)[order],
            "total": np.concatenate(total_parts)[order],
        }

    # -- switching ------------------------------------------------------

    def _route_ports(self) -> Dict[int, int]:
        """The dst -> port gather cache, revalidated like the memo."""
        model = self.model
        table = model._mac_table
        key = (table.version, model._default_port)
        if self._route_key != key:
            self._dst_ports.clear()
            self._route_key = key
        if model._route_version != table.version:
            model._route_cache.clear()
            model._route_version = table.version
        return self._dst_ports

    def _switching(self, arrivals: Dict[str, Any]) -> None:
        """Route the round's timestamp-sorted packets to output queues."""
        sink = get_trace_sink()
        dst = arrivals["dst"]
        broadcast = dst == BROADCAST_MAC
        if sink.enabled or broadcast.any():
            self._switching_slow(arrivals, sink)
            return
        dst_ports = self._route_ports()
        model = self.model
        table = model._mac_table
        default = model._default_port
        default_port = -1 if default is None else default
        unique, inverse = np.unique(dst, return_inverse=True)
        unique_out = np.empty(unique.shape[0], dtype=_INT)
        for i, mac in enumerate(unique.tolist()):
            port = dst_ports.get(mac)
            if port is None:
                looked = table.get(mac)
                port = default_port if looked is None else looked
                dst_ports[mac] = port
            unique_out[i] = port
        out_port = unique_out[inverse]
        routable = out_port >= 0
        n_drop = int(np.count_nonzero(~routable))
        if n_drop:
            stats = model.stats
            stats.packets_dropped += n_drop
            stats.bytes_dropped += int(arrivals["size"][~routable].sum())
            ts = arrivals["ts"][routable]
            frames = arrivals["frame"][routable]
            sizes = arrivals["size"][routable]
            totals = arrivals["total"][routable]
            out_port = out_port[routable]
        else:
            ts = arrivals["ts"]
            frames = arrivals["frame"]
            sizes = arrivals["size"]
            totals = arrivals["total"]
        n = out_port.shape[0]
        if not n:
            return
        # One sequence number per enqueued packet, in sorted pop order —
        # identical numbering to the scalar heappush loop.
        seqs = np.arange(self._seq_next, self._seq_next + n, dtype=_INT)
        self._seq_next += n
        for port in np.unique(out_port).tolist():
            mask = out_port == port
            self._queues[port].append(
                ts[mask], seqs[mask], frames[mask],
                sizes[mask], totals[mask],
            )

    def _switching_slow(self, arrivals: Dict[str, Any], sink: Any) -> None:
        """Scalar-identical per-packet walk (broadcasts, tracing).

        Uses the model's route memo — including the broadcast-counter
        compensation on memo hits — so counters and trace events stay
        bit-identical to :meth:`SwitchModel._switching_step`.
        """
        model = self.model
        stats = model.stats
        memo = model._route_cache
        if model._route_version != model._mac_table.version:
            memo.clear()
            model._route_version = model._mac_table.version
        sink_on = sink.enabled
        name = model.name
        pending: List[List[List[Any]]] = [
            [[], [], [], [], []] for _ in range(self.num_ports)
        ]
        ts_list = arrivals["ts"].tolist()
        port_list = arrivals["port"].tolist()
        frame_list = arrivals["frame"].tolist()
        src_list = arrivals["src"].tolist()
        dst_list = arrivals["dst"].tolist()
        size_list = arrivals["size"].tolist()
        total_list = arrivals["total"].tolist()
        for k in range(len(ts_list)):
            timestamp = ts_list[k]
            ingress_port = port_list[k]
            frame = frame_list[k]
            flow = (src_list[k], dst_list[k], ingress_port)
            cached = memo.get(flow)
            if cached is None:
                cached = tuple(model.route(frame, ingress_port))
                memo[flow] = cached
            elif dst_list[k] == BROADCAST_MAC:
                stats.broadcasts += 1
            if not cached and dst_list[k] != BROADCAST_MAC:
                stats.packets_dropped += 1
                stats.bytes_dropped += size_list[k]
                if sink_on:
                    sink.target_instant(
                        "drop", "switch", timestamp, track=name,
                        args={"frame": frame.frame_id,
                              "in_port": ingress_port,
                              "reason": "unroutable"},
                    )
                continue
            for out_port in cached:
                columns = pending[out_port]
                columns[0].append(timestamp)
                columns[1].append(self._seq_next)
                self._seq_next += 1
                columns[2].append(frame)
                columns[3].append(size_list[k])
                columns[4].append(total_list[k])
                if sink_on:
                    sink.target_instant(
                        "enqueue", "switch", timestamp, track=name,
                        args={"frame": frame.frame_id,
                              "in_port": ingress_port,
                              "out_port": out_port},
                    )
        for port, columns in enumerate(pending):
            if columns[0]:
                self._queues[port].append(
                    np.array(columns[0], dtype=_INT),
                    np.array(columns[1], dtype=_INT),
                    np.array(columns[2], dtype=object),
                    np.array(columns[3], dtype=_INT),
                    np.array(columns[4], dtype=_INT),
                )

    # -- egress ---------------------------------------------------------

    def _egress(self, window: TokenWindow) -> Dict[str, Any]:
        sink = get_trace_sink()
        outputs: Dict[str, Any] = {}
        for port_index in range(self.num_ports):
            outputs[self.ports[port_index]] = self._drain_port(
                port_index, window, sink
            )
        return outputs

    def _drain_port(
        self, port_index: int, window: TokenWindow, sink: Any
    ) -> Any:
        queue = self._queues[port_index]
        if queue.tail == queue.head:
            return window.new_batch()
        pace = self.pace
        buffer_flits = self.buffer_flits
        window_start = window.start
        window_end = window.end
        model = self.model
        stats = model.stats
        egress_log = model.egress_log
        sink_on = sink.enabled
        cursor = max(self._next_free[port_index], window_start)
        out_first: List[np.ndarray] = []
        out_count: List[np.ndarray] = []
        out_index: List[np.ndarray] = []
        out_total: List[np.ndarray] = []
        out_frame: List[np.ndarray] = []
        out_size: List[np.ndarray] = []
        events: List[Tuple[int, ...]] = []
        position = 0  # scalar pop order, for trace-event interleaving
        while queue.head < queue.tail and cursor < window_end:
            head = queue.head
            stop = min(queue.tail, head + _EGRESS_CHUNK)
            chunk_len = stop - head
            release = queue.release[head:stop].copy()
            total = queue.total[head:stop].copy()
            frames = queue.frame[head:stop].copy()
            sizes = queue.size[head:stop].copy()
            # Original queue position of each surviving row — sink
            # events must interleave drops and dequeues in scalar pop
            # order, which is exactly this index.
            orig = np.arange(position, position + chunk_len, dtype=_INT)
            position += chunk_len
            remaining = total.copy()
            remaining[0] -= queue.head_emitted
            # Only a fresh packet (nothing emitted) can be dropped; the
            # chunk head may be a straddler already on the wire.
            droppable_head = queue.head_emitted == 0
            while True:
                # Pacing recurrence, vectorized:
                #   cursor_k = max(cursor_{k-1}, release_k) + flits_k*pace
                # With B_k = cumsum(flits*pace), cursor_k - B_k is the
                # running max of (release_k - B_{k-1}) seeded by the
                # port cursor, so one cumsum + one maximum.accumulate
                # yields every start cycle at once.
                duration = remaining * pace
                ends = np.cumsum(duration)
                margin = np.maximum.accumulate(release - (ends - duration))
                np.maximum(margin, cursor, out=margin)
                starts = margin + ends - duration
                lagged = starts - release > buffer_flits
                lagged &= starts < window_end
                if not droppable_head:
                    lagged[0] = False
                drops = np.flatnonzero(lagged)
                if not drops.shape[0]:
                    break
                # Drop the first over-lagged packet and reschedule: the
                # removal only pulls later starts earlier, so candidate
                # indices advance monotonically — scalar pop order.
                j = int(drops[0])
                stats.packets_dropped += 1
                stats.bytes_dropped += int(sizes[j])
                if sink_on:
                    events.append((
                        int(orig[j]), "drop", int(starts[j]),
                        frames[j].frame_id,
                        int(starts[j] - release[j]),
                    ))
                queue.remove_at(head + j)
                keep = np.arange(stop - head) != j
                stop -= 1
                release = release[keep]
                total = total[keep]
                frames = frames[keep]
                sizes = sizes[keep]
                remaining = remaining[keep]
                orig = orig[keep]
                if j == 0:
                    droppable_head = True
                    queue.head_emitted = 0
                if head == stop:
                    break
            if head == stop:
                continue
            emit = int(np.searchsorted(starts, window_end, side="left"))
            if emit == 0:
                break
            starts = starts[:emit]
            room = (window_end - starts + pace - 1) // pace
            emitted = np.minimum(remaining[:emit], room)
            complete = emitted == remaining[:emit]
            n_complete = int(np.count_nonzero(complete))
            out_first.append(starts)
            out_count.append(emitted)
            out_index.append(total[:emit] - remaining[:emit])
            out_total.append(total[:emit])
            out_frame.append(frames[:emit])
            out_size.append(sizes[:emit])
            if n_complete:
                stats.packets_out += n_complete
                stats.bytes_out += int(sizes[:emit][complete].sum())
            if (sink_on or egress_log is not None) and n_complete:
                last_flit = (starts + (emitted - 1) * pace).tolist()
                release_list = release[:emit].tolist()
                size_list = sizes[:emit].tolist()
                done_list = complete.tolist()
                orig_list = orig[:emit].tolist()
                for k in range(emit):
                    if not done_list[k]:
                        continue
                    if sink_on:
                        events.append((
                            orig_list[k], "dequeue", release_list[k],
                            last_flit[k], frames[k].frame_id,
                        ))
                    if egress_log is not None:
                        egress_log.append((last_flit[k], size_list[k]))
            last = emit - 1
            cursor = int(starts[last] + emitted[last] * pace)
            self._next_free[port_index] = cursor
            if complete[last]:
                queue.head = head + emit
                queue.head_emitted = 0
                if emit == stop - head:
                    continue  # chunk fully drained; next chunk may fit
                break
            queue.head = head + last
            queue.head_emitted = int(total[last] - remaining[last] + emitted[last])
            break
        if queue.head == queue.tail:
            queue.head = queue.tail = 0
        if sink_on and events:
            name = model.name
            for event in sorted(events):
                if event[1] == "drop":
                    sink.target_instant(
                        "drop", "switch", event[2], track=name,
                        args={"frame": event[3], "port": port_index,
                              "lag": event[4]},
                    )
                else:
                    sink.target_span(
                        "dequeue", "switch", event[2], event[3],
                        track=name,
                        args={"frame": event[4], "port": port_index},
                    )
        if not out_first:
            return window.new_batch()
        if len(out_first) == 1:
            first_cycle = out_first[0]
            counts = out_count[0]
            first_index = out_index[0]
            totals = out_total[0]
            frames_out = out_frame[0]
            sizes_out = out_size[0]
        else:
            first_cycle = np.concatenate(out_first)
            counts = np.concatenate(out_count)
            first_index = np.concatenate(out_index)
            totals = np.concatenate(out_total)
            frames_out = np.concatenate(out_frame)
            sizes_out = np.concatenate(out_size)
        return ColumnarBatch(
            window_start,
            window.end - window_start,
            pace,
            frames_out,
            first_cycle,
            counts,
            first_index,
            totals,
            np.fromiter(
                (f.src for f in frames_out), _INT,
                count=frames_out.shape[0],
            ),
            np.fromiter(
                (f.dst for f in frames_out), _INT,
                count=frames_out.shape[0],
            ),
            sizes_out,
        )
