"""Page-Fault Accelerator case study: remote memory, PFA device, workloads (§VI)."""
