"""The memory blade: a bare-metal page server on a Rocket core.

"The memory blade itself is implemented as another Rocket core running a
bare-metal memory server accessed through a custom network protocol"
(Section VI).  This module attaches that server to a simulated blade so
the remote-memory protocol can be exercised end-to-end over the
cycle-exact token network, and provides a client helper used by
integration tests to validate :class:`~repro.pfa.remote.AnalyticRemoteMemory`'s
closed-form latency against the measured path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.ethernet import EthernetFrame, HEADER_BYTES, MTU_BYTES
from repro.pfa.remote import PAGE_BYTES
from repro.swmodel.server import ServerBlade

#: Custom protocol opcodes.
OP_GET = "pfa-get"
OP_PUT = "pfa-put"
OP_DATA = "pfa-data"
OP_ACK = "pfa-ack"

#: A 4 KiB page spans multiple MTU frames.
_PAGE_CHUNKS = -(-PAGE_BYTES // MTU_BYTES)


@dataclass
class MemoryBladeStats:
    gets: int = 0
    puts: int = 0
    pages_stored: int = 0


def attach_memory_blade_server(
    blade: ServerBlade, processing_cycles: int = 1500
) -> MemoryBladeStats:
    """Install the bare-metal memory server on a blade.

    The server keeps a functional page store (page id -> generation tag)
    and answers GETs with the page streamed back as MTU-sized frames and
    PUTs with a small ACK.  ``processing_cycles`` models the Rocket
    core's request parse + local memory access before the reply starts.
    """
    stats = MemoryBladeStats()
    store: Dict[int, int] = {}

    def handler(cycle: int, frame: EthernetFrame) -> None:
        payload = frame.payload
        if not (isinstance(payload, tuple) and payload):
            return
        op = payload[0]
        if op == OP_GET:
            _, page, requester_tag = payload
            stats.gets += 1
            reply_at = cycle + processing_cycles
            remaining = PAGE_BYTES
            for chunk in range(_PAGE_CHUNKS):
                chunk_bytes = min(remaining, MTU_BYTES)
                remaining -= chunk_bytes
                blade.nic.post_send(
                    reply_at,
                    EthernetFrame(
                        src=blade.mac,
                        dst=frame.src,
                        size_bytes=chunk_bytes + HEADER_BYTES,
                        payload=(
                            OP_DATA,
                            page,
                            chunk,
                            _PAGE_CHUNKS,
                            requester_tag,
                            store.get(page, 0),
                        ),
                    ),
                )
        elif op == OP_PUT:
            _, page, generation = payload
            stats.puts += 1
            store[page] = generation
            stats.pages_stored = len(store)
            blade.nic.post_send(
                cycle + processing_cycles,
                EthernetFrame(
                    src=blade.mac,
                    dst=frame.src,
                    size_bytes=64,
                    payload=(OP_ACK, page),
                ),
            )

    blade.kernel.register_raw_handler(handler)
    return stats


class MemoryBladeClient:
    """Compute-node side of the custom protocol (bare-metal).

    Used by integration tests: issues GET/PUT frames through the node's
    NIC and reports per-page completion cycles via callbacks.
    """

    def __init__(self, blade: ServerBlade, memblade_mac: int) -> None:
        self.blade = blade
        self.memblade_mac = memblade_mac
        self._next_tag = 0
        self._pending_get: Dict[int, Tuple[set, Callable[[int, int], None]]] = {}
        self._pending_put: List[Callable[[int, int], None]] = []
        blade.kernel.register_raw_handler(self._on_frame)

    def get_page(
        self, cycle: int, page: int, on_done: Callable[[int, int], None]
    ) -> None:
        """Fetch a page; ``on_done(completion_cycle, page)`` fires when
        the last data chunk has arrived."""
        tag = self._next_tag
        self._next_tag += 1
        self._pending_get[tag] = (set(range(_PAGE_CHUNKS)), on_done)
        self.blade.nic.post_send(
            cycle,
            EthernetFrame(
                src=self.blade.mac,
                dst=self.memblade_mac,
                size_bytes=64,
                payload=(OP_GET, page, tag),
            ),
        )

    def put_page(
        self,
        cycle: int,
        page: int,
        generation: int,
        on_done: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        """Evict a page to the blade (page data + metadata frames)."""
        remaining = PAGE_BYTES
        for _chunk in range(_PAGE_CHUNKS - 1):
            self.blade.nic.post_send(
                cycle,
                EthernetFrame(
                    src=self.blade.mac,
                    dst=self.memblade_mac,
                    size_bytes=MTU_BYTES + HEADER_BYTES,
                    payload=("pfa-put-data", page),
                ),
            )
            remaining -= MTU_BYTES
        self.blade.nic.post_send(
            cycle,
            EthernetFrame(
                src=self.blade.mac,
                dst=self.memblade_mac,
                size_bytes=remaining + HEADER_BYTES,
                payload=(OP_PUT, page, generation),
            ),
        )
        if on_done is not None:
            self._pending_put.append(on_done)

    def _on_frame(self, cycle: int, frame: EthernetFrame) -> None:
        payload = frame.payload
        if not (isinstance(payload, tuple) and payload):
            return
        if payload[0] == OP_DATA:
            _, page, chunk, _total, tag, _generation = payload
            entry = self._pending_get.get(tag)
            if entry is None:
                return
            outstanding, on_done = entry
            outstanding.discard(chunk)
            if not outstanding:
                del self._pending_get[tag]
                on_done(cycle, page)
        elif payload[0] == OP_ACK and self._pending_put:
            on_done = self._pending_put.pop(0)
            on_done(cycle, payload[1])
