"""The Page-Fault Accelerator device and the software-paging baseline.

Section VI proposes a hybrid HW/SW cache for paged remote memory: the PFA
handles the latency-critical fault path (the cache miss) in hardware,
while the OS manages latency-insensitive evictions asynchronously.  The
decoupling uses two queues:

* **freeQ** — free page frames the OS pre-allocates for the PFA to place
  fetched pages into;
* **newQ** — descriptors of newly-fetched pages the OS drains later
  (batched), recording the now-local pages in its metadata.

The software baseline ("modified Linux using the memory blade directly
through its normal paging mechanisms, similar to Infiniswap") takes a
trap on every fault, runs the OS handler inline (metadata management per
fault), and pollutes the caches, which slows the application after every
fault.

Both backends share the same eviction policy, so — as the paper observes
— the number of evicted pages is identical; what differs is who handles
the fault and how metadata management amortizes.  The PFA's batched newQ
drain executes the same code path per page but with much better cache
locality, which the paper measured as a 2.5x average reduction in
metadata-management time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from repro.pfa.remote import AnalyticRemoteMemory


@dataclass(frozen=True)
class FaultCosts:
    """Per-fault CPU costs in target cycles (3.2 GHz).

    ``sw_*`` apply to the software-paging baseline; ``pfa_*`` to the
    accelerator.  Calibrated so the PFA's metadata-management time per
    page is ~2.5x below the baseline's, the paper's measured average.
    """

    # Software baseline: trap + handler inline on every fault.
    sw_trap_cycles: int = 6_400  # ~2 us trap entry/exit + context
    sw_metadata_cycles: int = 8_000  # ~2.5 us page-table/LRU bookkeeping
    sw_pollution_cycles: int = 4_800  # post-handler cold-cache penalty

    # PFA: hardware fault handling, batched metadata.
    pfa_hw_fault_cycles: int = 300  # detect + freeQ pop + resume
    pfa_newq_batch_size: int = 64
    pfa_batch_fixed_cycles: int = 25_600  # daemon wakeup + drain entry
    pfa_per_entry_cycles: int = 2_000  # same code path, warm caches

    # Eviction (both backends; OS-managed, asynchronous).
    evict_select_cycles: int = 1_200  # choose victim + mark remote

    @property
    def pfa_metadata_per_page_cycles(self) -> float:
        """Amortized metadata cost per fetched page under the PFA."""
        return (
            self.pfa_batch_fixed_cycles / self.pfa_newq_batch_size
            + self.pfa_per_entry_cycles
        )


@dataclass
class PagingStats:
    """What each backend reports after a run."""

    faults: int = 0
    evictions: int = 0
    fault_stall_cycles: int = 0
    metadata_cycles: int = 0
    pollution_cycles: int = 0
    newq_batches: int = 0


class SoftwarePaging:
    """Baseline: every fault traps and is handled inline by the OS."""

    def __init__(
        self,
        remote: AnalyticRemoteMemory,
        costs: Optional[FaultCosts] = None,
    ) -> None:
        self.remote = remote
        self.costs = costs or FaultCosts()
        self.stats = PagingStats()

    def fault(self, cycle: int, page: int) -> int:
        """Handle a fault at ``cycle``; returns when the app resumes."""
        costs = self.costs
        self.stats.faults += 1
        trap_done = cycle + costs.sw_trap_cycles
        fetched = self.remote.fetch(trap_done, page)
        resume = fetched + costs.sw_metadata_cycles
        self.stats.metadata_cycles += costs.sw_metadata_cycles
        self.stats.fault_stall_cycles += resume - cycle
        # The handler polluted the caches: the application pays extra
        # cycles right after resuming.
        self.stats.pollution_cycles += costs.sw_pollution_cycles
        return resume + costs.sw_pollution_cycles

    def evict(self, cycle: int, page: int) -> int:
        self.stats.evictions += 1
        self.stats.metadata_cycles += self.costs.evict_select_cycles
        self.remote.evict(cycle, page)
        return cycle + self.costs.evict_select_cycles


class PageFaultAccelerator:
    """The PFA device: hardware fault path + freeQ/newQ decoupling."""

    def __init__(
        self,
        remote: AnalyticRemoteMemory,
        costs: Optional[FaultCosts] = None,
        free_frames: int = 128,
    ) -> None:
        self.remote = remote
        self.costs = costs or FaultCosts()
        self.stats = PagingStats()
        #: Free frames the OS has pushed for fetched pages.
        self.free_queue: Deque[int] = deque(range(free_frames))
        self._free_frame_counter = free_frames
        #: Fetched-page descriptors awaiting the OS drain.
        self.new_queue: Deque[int] = deque()

    def fault(self, cycle: int, page: int) -> int:
        """Hardware-handled fault; the application resumes after the
        remote fetch plus a few cycles of device overhead."""
        costs = self.costs
        self.stats.faults += 1
        if not self.free_queue:
            # freeQ empty: the OS must refill synchronously — this is the
            # slow path the batching normally avoids.
            refill = self._drain_newq(cycle)
            cycle = refill
        self.free_queue.popleft()
        fetched = self.remote.fetch(cycle + costs.pfa_hw_fault_cycles, page)
        self.new_queue.append(page)
        resume = fetched
        self.stats.fault_stall_cycles += resume - cycle
        if len(self.new_queue) >= costs.pfa_newq_batch_size:
            # Queue full: the OS drains it (interrupt or daemon); the
            # drain runs concurrently with the app on another core, but
            # its CPU time is accounted as metadata management.
            self._drain_newq(resume)
        return resume

    def _drain_newq(self, cycle: int) -> int:
        """OS pops all new-page descriptors, records metadata, refills freeQ."""
        if not self.new_queue:
            return cycle
        entries = len(self.new_queue)
        cost = round(
            self.costs.pfa_batch_fixed_cycles
            + entries * self.costs.pfa_per_entry_cycles
        )
        self.stats.metadata_cycles += cost
        self.stats.newq_batches += 1
        for _ in range(entries):
            self.new_queue.popleft()
            self.free_queue.append(self._free_frame_counter)
            self._free_frame_counter += 1
        return cycle + cost

    def evict(self, cycle: int, page: int) -> int:
        """The OS marks the page remote and hands it to the PFA for
        asynchronous eviction."""
        self.stats.evictions += 1
        self.stats.metadata_cycles += self.costs.evict_select_cycles
        self.remote.evict(cycle, page)
        return cycle + self.costs.evict_select_cycles

    def flush(self, cycle: int) -> int:
        """Drain any residual newQ entries (end of run)."""
        return self._drain_newq(cycle)
