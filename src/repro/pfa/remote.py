"""Remote memory access models (Section VI).

In the paper's disaggregated-memory case study, the memory blade is
another Rocket core running a bare-metal memory server reached over the
custom network protocol; compute nodes page 4 KiB pages to/from it.

Two interchangeable models are provided:

* :class:`AnalyticRemoteMemory` — closed-form fetch/evict latency derived
  from the network parameters (link latency, switching latency, link
  bandwidth) plus the memory server's per-request processing.  This is
  what the Figure 11 sweep uses: the page-fault path is node-local and
  only needs the remote latency constant.
* :class:`memblade.NetworkMemoryBlade <repro.pfa.memblade>` — a real
  bare-metal server attached to a simulated blade, exercised through the
  full token-exact network in integration tests, and used to validate
  the analytic constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import units

PAGE_BYTES = 4096


@dataclass(frozen=True)
class RemoteMemoryParams:
    """Network + server parameters for the remote-memory path.

    Defaults follow the evaluation's network (2 us, 200 Gbit/s links)
    with the memory blade attached point-to-point (``hops = 0``); set
    ``hops = 1`` for a compute node and memory blade behind a shared ToR.
    """

    link_latency_cycles: int = 6400
    switch_latency_cycles: int = 10
    hops: int = 0
    freq_hz: float = 3.2e9
    flit_bytes: int = units.FLIT_BYTES
    #: Memory server: bare-metal request parse + local DRAM read of a page.
    server_request_cycles: int = 1500
    #: Request message size (page id + protocol header).
    request_bytes: int = 64

    @property
    def one_way_cycles(self) -> int:
        """NIC-to-NIC one-way latency through ``hops`` switches."""
        return (self.hops + 1) * self.link_latency_cycles + (
            self.hops * self.switch_latency_cycles
        )

    @property
    def page_transfer_cycles(self) -> int:
        """Serialization of one 4 KiB page at one flit per cycle."""
        return units.flits_for_bytes(PAGE_BYTES, self.flit_bytes)


class AnalyticRemoteMemory:
    """Closed-form remote page fetch/evict latency."""

    def __init__(self, params: RemoteMemoryParams | None = None) -> None:
        self.params = params or RemoteMemoryParams()
        self.pages_fetched = 0
        self.pages_evicted = 0

    def fetch_latency_cycles(self) -> int:
        """Request out + server processing + page back (store-and-forward
        adds the page's serialization once per hop; we charge it once,
        matching the cut-through-ish pipeline of the NIC + single ToR)."""
        p = self.params
        request = p.one_way_cycles + units.flits_for_bytes(p.request_bytes)
        response = p.one_way_cycles + p.page_transfer_cycles
        return request + p.server_request_cycles + response

    def evict_latency_cycles(self) -> int:
        """Pushing a page out; the OS does this asynchronously, so only
        the local serialization occupies the faulting node."""
        return self.params.page_transfer_cycles

    def fetch(self, cycle: int, page: int) -> int:
        """Issue a fetch at ``cycle``; returns its completion cycle."""
        self.pages_fetched += 1
        return cycle + self.fetch_latency_cycles()

    def evict(self, cycle: int, page: int) -> int:
        self.pages_evicted += 1
        return cycle + self.evict_latency_cycles()
