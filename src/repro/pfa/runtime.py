"""Paged-application executor: runs page-access traces over a backend.

The compute node has a small fast local memory used as a cache for the
remote bulk memory (Section VI).  This executor keeps the resident set
with LRU replacement, charges application compute between page accesses,
and routes misses through a paging backend (software baseline or PFA).

Both backends see the *same* access trace and the same replacement
policy, so the number of evictions is identical — matching the paper's
observation — and the runtime difference isolates the fault path and
metadata management.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Iterator, Protocol, Tuple

from repro.pfa.pfa import PageFaultAccelerator, PagingStats, SoftwarePaging
from repro.pfa.remote import PAGE_BYTES


class PagingBackend(Protocol):
    """What the executor needs from a paging implementation."""

    stats: PagingStats

    def fault(self, cycle: int, page: int) -> int: ...

    def evict(self, cycle: int, page: int) -> int: ...


#: A trace step: (page index accessed, compute cycles preceding it).
TraceStep = Tuple[int, int]


@dataclass
class RunResult:
    """Outcome of executing one trace against one backend."""

    total_cycles: int
    compute_cycles: int
    faults: int
    evictions: int
    fault_stall_cycles: int
    metadata_cycles: int
    pollution_cycles: int

    @property
    def overhead_cycles(self) -> int:
        """Cycles beyond pure compute (the paging overhead)."""
        return self.total_cycles - self.compute_cycles

    def slowdown_vs(self, baseline_compute_cycles: int) -> float:
        """Runtime normalized to an all-local run of the same trace."""
        if baseline_compute_cycles <= 0:
            raise ValueError("baseline compute must be positive")
        return self.total_cycles / baseline_compute_cycles


class PagedExecutor:
    """Executes a trace with ``local_pages`` of resident memory."""

    def __init__(self, backend: PagingBackend, local_pages: int) -> None:
        if local_pages < 1:
            raise ValueError("need at least one resident page")
        self.backend = backend
        self.local_pages = local_pages
        self._resident: OrderedDict[int, None] = OrderedDict()

    def run(self, trace: Iterable[TraceStep]) -> RunResult:
        cycle = 0
        compute = 0
        for page, compute_cycles in trace:
            cycle += compute_cycles
            compute += compute_cycles
            if page in self._resident:
                self._resident.move_to_end(page)
                continue
            # Miss: possibly evict, then fault the page in.
            if len(self._resident) >= self.local_pages:
                victim, _ = self._resident.popitem(last=False)
                cycle = self.backend.evict(cycle, victim)
            cycle = self.backend.fault(cycle, page)
            self._resident[page] = None
        if isinstance(self.backend, PageFaultAccelerator):
            cycle = self.backend.flush(cycle)
        stats = self.backend.stats
        return RunResult(
            total_cycles=cycle,
            compute_cycles=compute,
            faults=stats.faults,
            evictions=stats.evictions,
            fault_stall_cycles=stats.fault_stall_cycles,
            metadata_cycles=stats.metadata_cycles,
            pollution_cycles=stats.pollution_cycles,
        )


def run_trace_all_local(trace: Iterable[TraceStep]) -> int:
    """Pure-compute cycles of a trace (the 100%-local-memory baseline)."""
    return sum(compute for _page, compute in trace)


def pages_for_bytes(size_bytes: int) -> int:
    """Footprint in 4 KiB pages."""
    if size_bytes <= 0:
        raise ValueError("footprint must be positive")
    return -(-size_bytes // PAGE_BYTES)
