"""The Figure 11 benchmarks: Genome assembly and Qsort.

Both were tuned in the paper to a 64 MiB peak memory footprint:

* **Genome** — de-novo genome assembly doing random accesses into a
  large hash table.  Unpredictable access patterns cause significant
  cache thrashing when local memory is small; this is the benchmark the
  PFA helps most (up to ~1.4x overhead reduction).
* **Qsort** — quicksort with good cache behaviour: partition passes
  stream sequentially over shrinking ranges, so it pages gracefully and
  sees little slowdown when swapping.

Traces are deterministic (seeded) sequences of (page, compute-cycles)
steps at page-access granularity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.pfa.runtime import TraceStep, pages_for_bytes

#: The paper's tuned peak memory usage for both benchmarks.
PEAK_MEMORY_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class WorkloadConfig:
    """Trace-generation parameters.

    ``steps`` bounds the number of page-touching operations for the
    random-access Genome trace; Qsort's length is set by its recursion
    over the footprint.  Compute cycles between touches model the
    per-page work (k-mer hashing and bucket-chain walks for Genome, a
    page's worth of compares/swaps for Qsort) on a 3.2 GHz Rocket.
    """

    footprint_bytes: int = PEAK_MEMORY_BYTES
    steps: int = 60_000
    seed: int = 42
    compute_per_step_cycles: int = 20_000

    @property
    def footprint_pages(self) -> int:
        return pages_for_bytes(self.footprint_bytes)


def genome_trace(config: WorkloadConfig | None = None) -> Iterator[TraceStep]:
    """Random hash-table probes over the whole footprint.

    Each assembly step hashes a k-mer and probes a uniformly random
    bucket page — the access pattern that defeats any prefetcher and
    thrashes a small resident set.
    """
    config = config or WorkloadConfig()
    rng = random.Random(config.seed)
    pages = config.footprint_pages
    for _ in range(config.steps):
        yield rng.randrange(pages), config.compute_per_step_cycles


def qsort_trace(config: WorkloadConfig | None = None) -> Iterator[TraceStep]:
    """Depth-first quicksort over the footprint.

    Each recursion level partitions its range with one sequential sweep
    (one touch per page, a page's worth of compares/swaps each), then
    recurses into the halves depth-first.  Once a range fits in local
    memory its entire subtree runs without faulting — the good cache
    behaviour the paper notes ("Quicksort ... does not experience
    significant slowdowns when swapping").
    """
    config = config or WorkloadConfig()
    pages = config.footprint_pages
    # Explicit stack for the depth-first recursion (pages can be 16 Ki).
    stack: List[Tuple[int, int]] = [(0, pages)]
    while stack:
        lo, hi = stack.pop()
        span = hi - lo
        if span <= 0:
            continue
        for page in range(lo, hi):
            yield page, config.compute_per_step_cycles
        if span > 1:
            mid = (lo + hi) // 2
            # Push right first so the left half is processed next
            # (depth-first, preserving the freshly-scanned pages).
            stack.append((mid, hi))
            stack.append((lo, mid))


def local_memory_sweep(
    fractions: Tuple[float, ...] = (0.125, 0.25, 0.5, 0.75, 1.0),
    footprint_bytes: int = PEAK_MEMORY_BYTES,
) -> List[Tuple[float, int]]:
    """(fraction, resident pages) points for the Figure 11 x-axis."""
    total = pages_for_bytes(footprint_bytes)
    out = []
    for fraction in fractions:
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction {fraction} out of (0, 1]")
        out.append((fraction, max(1, round(total * fraction))))
    return out
