"""repro.serve — the FireSim manager as a long-lived service.

The paper's manager (Section III-B3) drives one simulation per
invocation; real usage — and the paper's cost arithmetic over an
elastic spot-market fleet (Section V-C) — wants a *service*: many
tenants sharing one run farm, with the scheduler deciding who holds
FPGAs when.  This package provides that:

* :mod:`repro.serve.job` — JSON-serializable :class:`JobSpec` (topology
  + workload + engine/transport/fault-plan), the per-job forked child
  (own process group, pipe-driven preempt/cancel), and the in-process
  serial oracle for bit-equality tests;
* :mod:`repro.serve.farm` — :class:`ServeFarm`, the FPGA-slot ledger
  over :func:`~repro.host.instances.fpga_slot_capacity`, which *never*
  oversubscribes, plus spot/on-demand job pricing;
* :mod:`repro.serve.scheduler` — pure priority scheduling with aging
  (no starvation) and checkpoint-backed preemption planning;
* :mod:`repro.serve.server` — :class:`JobServer`, the asyncio service:
  submit/cancel/wait/shutdown, JSON-lines job-event log, ``serve.*``
  telemetry gauges, graceful drain + /dev/shm leak audit;
* :mod:`repro.serve.api` / :mod:`repro.serve.client` — newline-JSON
  unix-socket protocol and the matching in-process/socket clients the
  CLI verbs (``serve``, ``submit``, ``jobs``, ``cancel``) ride on.

The headline property, enforced by ``tests/test_serve.py``: jobs
sharing the farm are **bit-identical** to the same specs run serially,
standalone — including a job that was preempted mid-run and resumed
from its digest-verified replay checkpoint.
"""

from repro.serve.api import SocketEndpoint, handle_request
from repro.serve.client import InProcessClient, UnixSocketClient, connect
from repro.serve.farm import DEFAULT_FARM, FarmError, ServeFarm
from repro.serve.job import (
    JobError,
    JobRecord,
    JobSpec,
    JobState,
    TERMINAL_STATES,
    run_job_child,
    run_job_inline,
)
from repro.serve.scheduler import (
    AGING_EVERY,
    Action,
    Scheduler,
    effective_priority,
)
from repro.serve.server import JobServer, ServeError, ServeStats

__all__ = [
    "AGING_EVERY",
    "Action",
    "DEFAULT_FARM",
    "FarmError",
    "InProcessClient",
    "JobError",
    "JobRecord",
    "JobServer",
    "JobSpec",
    "JobState",
    "Scheduler",
    "ServeError",
    "ServeFarm",
    "ServeStats",
    "SocketEndpoint",
    "TERMINAL_STATES",
    "UnixSocketClient",
    "connect",
    "effective_priority",
    "handle_request",
    "run_job_child",
    "run_job_inline",
]
