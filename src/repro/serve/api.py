"""Wire protocol and unix-socket endpoint for the job server.

One request, one reply, newline-delimited JSON objects:

* ``{"op": "submit", "spec": {...}}`` → ``{"ok": true, "job_id": N}``
* ``{"op": "jobs"}`` → ``{"ok": true, "jobs": [...], "farm": {...},
  "stats": {...}}``
* ``{"op": "cancel", "job_id": N}`` → ``{"ok": true, "state": "..."}``
* ``{"op": "wait", "job_id": N, "timeout_s": T}`` → the job record
* ``{"op": "shutdown", "drain": bool}`` → ``{"ok": true,
  "leaked_segments": [...]}``

Any failure — unknown op, malformed JSON, a :class:`ReproError` from
the server — comes back as ``{"ok": false, "error": "<one line>"}``;
the CLI turns that into its standard one-line-error + nonzero exit.
"""

from __future__ import annotations

import asyncio
import json
import os
from typing import Any, Dict

from repro import ReproError
from repro.serve.server import JobServer, ServeError


async def handle_request(
    server: JobServer, request: Dict[str, Any]
) -> Dict[str, Any]:
    """Dispatch one decoded request against the server; never raises."""
    try:
        op = request.get("op")
        if op == "submit":
            job_id = await server.submit(request["spec"])
            return {"ok": True, "job_id": job_id}
        if op == "jobs":
            description = await server.describe()
            return {"ok": True, **description}
        if op == "cancel":
            outcome = await server.cancel(int(request["job_id"]))
            return {"ok": True, **outcome}
        if op == "wait":
            record = await server.wait(
                int(request["job_id"]),
                timeout_s=float(request.get("timeout_s", 120.0)),
            )
            return {"ok": True, "job": record}
        if op == "shutdown":
            outcome = await server.shutdown(
                drain=bool(request.get("drain", False))
            )
            return {"ok": True, **outcome}
        return {"ok": False, "error": f"unknown op {op!r}"}
    except ReproError as exc:
        return {"ok": False, "error": str(exc)}
    except (KeyError, TypeError, ValueError) as exc:
        return {"ok": False, "error": f"malformed request: {exc}"}


class SocketEndpoint:
    """Unix-domain-socket front door, served on the server's own loop."""

    def __init__(self, server: JobServer, path: str) -> None:
        self.server = server
        self.path = path
        self._unix_server: Any = None

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    reply = {"ok": False, "error": f"bad JSON: {exc}"}
                else:
                    reply = await handle_request(self.server, request)
                writer.write(
                    (json.dumps(reply, sort_keys=True) + "\n").encode()
                )
                await writer.drain()
                if request.get("op") == "shutdown" and reply.get("ok"):
                    break
        finally:
            writer.close()

    async def _start(self) -> None:
        if os.path.exists(self.path):
            raise ServeError(
                f"socket path {self.path} already exists; is another "
                "server running? remove it if not"
            )
        self._unix_server = await asyncio.start_unix_server(
            self._handle, path=self.path
        )

    def start(self) -> "SocketEndpoint":
        """Bind the socket on the server's loop (callable off-loop)."""
        future = asyncio.run_coroutine_threadsafe(
            self._start(), self.server.loop
        )
        future.result(timeout=10.0)
        return self

    def close(self) -> None:
        if self._unix_server is not None:
            async def _close() -> None:
                self._unix_server.close()
                await self._unix_server.wait_closed()

            coro = _close()
            try:
                asyncio.run_coroutine_threadsafe(
                    coro, self.server.loop
                ).result(timeout=10.0)
            except RuntimeError:
                # The server's loop already closed (stop() ran first);
                # its sockets died with it, only the path is left.
                coro.close()
            finally:
                self._unix_server = None
        if os.path.exists(self.path):
            os.unlink(self.path)
