"""Clients for the job server: in-process (tests) and unix-socket (CLI).

Both expose the same synchronous surface — ``submit`` / ``jobs`` /
``cancel`` / ``wait`` / ``shutdown`` — so tests and CLI verbs share
code paths.  Server-side failures surface as :class:`ServeError`, which
the CLI's standard error handling turns into one line + exit 1.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Any, Dict, List

from repro.serve.server import JobServer, ServeError


class InProcessClient:
    """Drive a :class:`JobServer` in this process, synchronously.

    Thin ``run_coroutine_threadsafe`` wrappers over the server's
    coroutine API — what the tests and the single-process ``serve``
    CLI verb use.
    """

    def __init__(self, server: JobServer, timeout_s: float = 300.0) -> None:
        self.server = server
        self.timeout_s = timeout_s

    def _call(self, coro: Any) -> Any:
        future = asyncio.run_coroutine_threadsafe(coro, self.server.loop)
        return future.result(timeout=self.timeout_s)

    def submit(self, spec: Dict[str, Any]) -> int:
        return self._call(self.server.submit(spec))

    def jobs(self) -> List[Dict[str, Any]]:
        return self._call(self.server.jobs())

    def describe(self) -> Dict[str, Any]:
        return self._call(self.server.describe())

    def cancel(self, job_id: int) -> Dict[str, Any]:
        return self._call(self.server.cancel(job_id))

    def wait(self, job_id: int,
             timeout_s: float = 120.0) -> Dict[str, Any]:
        return self._call(self.server.wait(job_id, timeout_s=timeout_s))

    def shutdown(self, drain: bool = False) -> Dict[str, Any]:
        return self._call(self.server.shutdown(drain=drain))


class UnixSocketClient:
    """Talk to a served :class:`~repro.serve.api.SocketEndpoint`.

    One connection per request keeps the client trivially stateless;
    the protocol is newline-delimited JSON (see :mod:`repro.serve.api`).
    """

    def __init__(self, path: str, timeout_s: float = 300.0) -> None:
        self.path = path
        self.timeout_s = timeout_s

    def _call(self, request: Dict[str, Any]) -> Dict[str, Any]:
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
                sock.settimeout(self.timeout_s)
                sock.connect(self.path)
                sock.sendall(
                    (json.dumps(request, sort_keys=True) + "\n").encode()
                )
                chunks = []
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    chunks.append(chunk)
                    if chunk.endswith(b"\n"):
                        break
        except OSError as exc:
            raise ServeError(
                f"cannot reach job server at {self.path}: {exc}"
            ) from exc
        reply = json.loads(b"".join(chunks))
        if not reply.get("ok"):
            raise ServeError(reply.get("error", "server error"))
        return reply

    def submit(self, spec: Dict[str, Any]) -> int:
        return int(self._call({"op": "submit", "spec": spec})["job_id"])

    def jobs(self) -> List[Dict[str, Any]]:
        return list(self._call({"op": "jobs"})["jobs"])

    def describe(self) -> Dict[str, Any]:
        return self._call({"op": "jobs"})

    def cancel(self, job_id: int) -> Dict[str, Any]:
        return self._call({"op": "cancel", "job_id": job_id})

    def wait(self, job_id: int,
             timeout_s: float = 120.0) -> Dict[str, Any]:
        return self._call(
            {"op": "wait", "job_id": job_id, "timeout_s": timeout_s}
        )["job"]

    def shutdown(self, drain: bool = False) -> Dict[str, Any]:
        return self._call({"op": "shutdown", "drain": drain})


def connect(server_or_path: Any) -> Any:
    """Pick the right client for a live server object or a socket path."""
    if isinstance(server_or_path, JobServer):
        return InProcessClient(server_or_path)
    return UnixSocketClient(str(server_or_path))
