"""The shared run farm the job server schedules onto.

One fixed fleet of EC2 instances (``{instance type name: count}``) whose
FPGAs are the capacity unit: :func:`~repro.host.instances.fpga_slot_capacity`
turns the fleet into a slot count, the scheduler allocates job slots
against it, and the ledger asserts the invariant the whole subsystem
exists to keep — **never oversubscribe an FPGA**.  Each job is also
priced on its slice of the farm via
:func:`~repro.host.costs.job_cost_estimate`, spot for preemptible jobs
and on-demand otherwise (Section V-C's two pricing columns).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro import ReproError
from repro.host.costs import job_cost_estimate
from repro.host.instances import fpga_slot_capacity

#: Default shared farm: two f1.16xlarge = 16 FPGA slots.
DEFAULT_FARM = {"f1.16xlarge": 2}


class FarmError(ReproError):
    """An allocation would violate the farm's capacity invariant."""


class ServeFarm:
    """Slot ledger for one shared fleet.

    Not thread-safe on its own — the server mutates it only from the
    event loop.  ``allocate``/``release`` keep ``{job_id: slots}`` and
    raise :class:`FarmError` rather than ever letting the sum exceed
    capacity.
    """

    def __init__(
        self, instance_counts: Mapping[str, int] | None = None
    ) -> None:
        self.instance_counts: Dict[str, int] = dict(
            instance_counts or DEFAULT_FARM
        )
        # Capacity counts FPGAs; supernode jobs pack more blades per
        # slot, which JobSpec.fpga_slots() already accounts for.
        self.capacity = fpga_slot_capacity(self.instance_counts)
        if self.capacity < 1:
            raise FarmError(
                f"farm {self.instance_counts} has no FPGA slots; "
                "a run farm needs at least one F1 instance"
            )
        self._allocations: Dict[int, int] = {}

    @property
    def used(self) -> int:
        return sum(self._allocations.values())

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def fits(self, slots: int) -> bool:
        return slots <= self.free

    def allocate(self, job_id: int, slots: int) -> None:
        if slots < 1:
            raise FarmError(f"job {job_id} requested {slots} slots")
        if job_id in self._allocations:
            raise FarmError(f"job {job_id} already holds slots")
        if slots > self.free:
            raise FarmError(
                f"allocating {slots} slots for job {job_id} would "
                f"oversubscribe the farm ({self.used}/{self.capacity} used)"
            )
        self._allocations[job_id] = slots

    def release(self, job_id: int) -> int:
        """Return a job's slots to the pool; 0 if it held none."""
        return self._allocations.pop(job_id, 0)

    def holds(self, job_id: int) -> bool:
        return job_id in self._allocations

    def job_cost(self, slots: int, hours: float,
                 preemptible: bool) -> Dict[str, Any]:
        """Price a job's slice of the farm (slot-proportional)."""
        share = slots / self.capacity
        estimate = job_cost_estimate(
            self.instance_counts, hours, preemptible
        )
        return {
            "pricing": estimate["pricing"],
            "hourly_rate": estimate["hourly_rate"] * share,
            "estimated_cost": estimate["estimated_cost"] * share,
            "savings_vs_on_demand": estimate["savings_vs_on_demand"] * share,
        }

    def describe(self) -> Dict[str, Any]:
        return {
            "instances": dict(self.instance_counts),
            "capacity_slots": self.capacity,
            "used_slots": self.used,
            "free_slots": self.free,
            "allocations": dict(self._allocations),
        }
