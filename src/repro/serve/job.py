"""Job specs and the per-job child process for the job server.

A :class:`JobSpec` is everything the server needs to run one simulation
end to end — topology, workload, engine, transport, fault plan — as a
JSON-serializable value, so jobs can travel over the CLI socket and be
replayed from the event log.  The spec *is* the rebuild recipe: a
preempted job's portable checkpoint (cycle + digest) plus its spec is
enough for any process to resume it cycle-identically.

Each scheduled job runs in its **own process group**
(:func:`run_job_child`): a fork with ``os.setpgrp()`` whose life is one
manager lifecycle (buildafi → launchrunfarm → infrasetup →
runworkload).  The parent drives it over a full-duplex pipe —
``preempt``/``cancel`` commands down, ``progress``/terminal messages up
— and the child polls for commands at segment boundaries via
:meth:`~repro.manager.manager.FireSimManager.runworkload_segmented`'s
control hook (serial jobs) or
:attr:`~repro.manager.manager.FireSimManager.abort_check` (distributed
jobs).  SIGTERM is mapped to a normal exception so ``finally`` blocks
run and /dev/shm segments are cleaned up even under escalation.
"""

from __future__ import annotations

import math
import os
import signal
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, Optional

from repro import ConfigError, ReproError
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.manager.manager import (
    CONTROL_CANCEL,
    CONTROL_CONTINUE,
    CONTROL_PREEMPT,
    FireSimManager,
)
from repro.manager.mapper import HostConfig, SUPERNODE_HOST
from repro.manager.runfarm import RunFarmConfig
from repro.manager.topology import (
    SwitchNode,
    datacenter_tree,
    single_rack,
    two_tier,
)
from repro.manager.workload import WorkloadSpec
from repro.swmodel.apps.boot import make_linux_boot
from repro.swmodel.apps.ping import make_ping_client


class JobError(ReproError):
    """A job spec is invalid or a job operation cannot be honored."""


class JobState(str, Enum):
    """Lifecycle of a submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    PREEMPTED = "preempted"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States from which a job will never run again.
TERMINAL_STATES = (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass(frozen=True)
class JobSpec:
    """One simulation job, as a JSON-serializable value.

    ``priority`` ranks queued jobs (higher runs first); ``preemptible``
    jobs may be checkpoint-evicted by higher-priority work *and* are
    priced at spot rates by the cost optimizer — the same
    money-for-revocation trade as Section V-C's two pricing columns.
    """

    name: str
    topology: str = "single_rack"
    racks: int = 2
    servers_per_rack: int = 2
    server_type: str = "QuadCore"
    workload: str = "ping"
    duration_ms: float = 1.0
    ping_count: int = 10
    priority: int = 0
    preemptible: bool = True
    engine: str = "scalar"
    workers: int = 1
    transport: str = "pipe"
    link_latency_us: float = 2.0
    fpgas_per_instance: Optional[int] = None
    supernode: bool = False
    fault_plan: Optional[Dict[str, Any]] = None
    checkpoint_interval_ms: Optional[float] = None
    max_retries: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise JobError("job name must be non-empty")
        if self.topology not in ("single_rack", "two_tier", "datacenter"):
            raise JobError(f"unknown topology {self.topology!r}")
        if self.workload not in ("ping", "boot"):
            raise JobError(f"unknown workload {self.workload!r}")
        if self.duration_ms <= 0:
            raise JobError(
                f"duration must be positive, got {self.duration_ms} ms"
            )
        if self.workers < 1:
            raise JobError(f"workers must be >= 1, got {self.workers}")
        if self.transport not in ("pipe", "shm"):
            raise JobError(f"unknown transport {self.transport!r}")
        if self.racks < 1 or self.servers_per_rack < 1:
            raise JobError("topology dimensions must be >= 1")
        if self.checkpoint_interval_ms is not None \
                and self.checkpoint_interval_ms <= 0:
            raise JobError("checkpoint interval must be positive")

    # -- sizing ---------------------------------------------------------

    def num_servers(self) -> int:
        """Simulated server blades this job's topology contains."""
        if self.topology == "single_rack":
            return self.servers_per_rack
        if self.topology == "two_tier":
            return self.racks * self.servers_per_rack
        # datacenter_tree defaults: 4 aggregation * 8 racks each.
        return 4 * 8 * self.servers_per_rack

    def blades_per_fpga(self) -> int:
        return 4 if self.supernode else 1

    def fpga_slots(self) -> int:
        """FPGAs this job occupies while running — the scheduling unit.

        Supernode jobs pack four blades per FPGA, so they claim fewer
        slots for the same topology (the capacity story of Section
        VIII).
        """
        return math.ceil(self.num_servers() / self.blades_per_fpga())

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "topology": self.topology,
            "racks": self.racks,
            "servers_per_rack": self.servers_per_rack,
            "server_type": self.server_type,
            "workload": self.workload,
            "duration_ms": self.duration_ms,
            "ping_count": self.ping_count,
            "priority": self.priority,
            "preemptible": self.preemptible,
            "engine": self.engine,
            "workers": self.workers,
            "transport": self.transport,
            "link_latency_us": self.link_latency_us,
            "fpgas_per_instance": self.fpgas_per_instance,
            "supernode": self.supernode,
            "fault_plan": self.fault_plan,
            "checkpoint_interval_ms": self.checkpoint_interval_ms,
            "max_retries": self.max_retries,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobSpec":
        known = {
            "name", "topology", "racks", "servers_per_rack", "server_type",
            "workload", "duration_ms", "ping_count", "priority",
            "preemptible", "engine", "workers", "transport",
            "link_latency_us", "fpgas_per_instance", "supernode",
            "fault_plan", "checkpoint_interval_ms", "max_retries",
        }
        unknown = set(payload) - known
        if unknown:
            raise JobError(f"unknown JobSpec fields: {sorted(unknown)}")
        if "name" not in payload:
            raise JobError("JobSpec requires a name")
        try:
            return cls(**payload)
        except (ConfigError, TypeError, ValueError) as exc:
            raise JobError(f"invalid JobSpec: {exc}") from exc

    # -- builders (the spec is the rebuild recipe) ----------------------

    def build_topology(self) -> SwitchNode:
        if self.topology == "single_rack":
            return single_rack(self.servers_per_rack, self.server_type)
        if self.topology == "two_tier":
            return two_tier(
                self.racks, self.servers_per_rack, self.server_type
            )
        return datacenter_tree(servers_per_rack=self.servers_per_rack)

    def build_manager(self) -> FireSimManager:
        run_config = RunFarmConfig(
            link_latency_cycles=max(1, round(self.link_latency_us * 3200)),
            engine=self.engine,
        )
        host_config = SUPERNODE_HOST if self.supernode else HostConfig()
        if self.fpgas_per_instance is not None:
            host_config = HostConfig(
                fpga_config=host_config.fpga_config,
                fpgas_per_instance=self.fpgas_per_instance,
            )
        plan = (
            FaultPlan.from_dict(self.fault_plan)
            if self.fault_plan is not None else None
        )
        retry_policy = (
            RetryPolicy(max_retries=self.max_retries)
            if self.max_retries is not None else None
        )
        checkpoint_cycles = None
        if self.checkpoint_interval_ms is not None:
            checkpoint_cycles = max(
                1,
                round(self.checkpoint_interval_ms / 1e3 * run_config.freq_hz),
            )
        return FireSimManager(
            self.build_topology(),
            run_config=run_config,
            host_config=host_config,
            fault_plan=plan,
            retry_policy=retry_policy,
            checkpoint_interval_cycles=checkpoint_cycles,
            workers=self.workers,
            transport=self.transport,
        )

    def build_workload(self, manager: FireSimManager) -> WorkloadSpec:
        assert manager.running is not None
        workload = WorkloadSpec(
            self.workload, duration_seconds=self.duration_ms / 1000.0
        )
        if self.workload == "ping":
            if manager.running.num_nodes < 2:
                raise JobError("ping needs at least two simulated nodes")
            target = manager.running.blade(1)
            count = self.ping_count
            workload.add_job(
                0,
                "ping",
                lambda blade: blade.spawn(
                    "ping",
                    make_ping_client(target.mac, count=count,
                                     interval_cycles=200_000),
                ),
            )
        else:
            for index in sorted(manager.running.blades):
                workload.add_job(
                    index,
                    f"boot{index}",
                    lambda blade: blade.spawn("init", make_linux_boot()),
                )
        return workload

    def segment_cycles(self) -> int:
        """Segment length for preemption polling: ~8 boundaries per job.

        Short enough that a preempt order lands quickly, long enough
        that checkpoint capture stays a small fraction of run time.  An
        explicit ``checkpoint_interval_ms`` wins.
        """
        total = max(1, round(self.duration_ms / 1e3 * 3.2e9))
        return max(1, total // 8)


@dataclass
class JobRecord:
    """The server's bookkeeping for one submitted job."""

    job_id: int
    spec: JobSpec
    state: JobState = JobState.QUEUED
    submit_seq: int = 0
    rounds_waiting: int = 0
    preemptions: int = 0
    #: Portable checkpoint of a preempted job: {"cycle", "digest"}.
    checkpoint: Optional[Dict[str, Any]] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    cost: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "name": self.spec.name,
            "state": self.state.value,
            "priority": self.spec.priority,
            "preemptible": self.spec.preemptible,
            "slots": self.spec.fpga_slots(),
            "preemptions": self.preemptions,
            "checkpoint": self.checkpoint,
            "result": self.result,
            "error": self.error,
            "cost": self.cost,
        }


# -- the child process ---------------------------------------------------


def _result_payload(
    manager: FireSimManager, spec: JobSpec, result: Any
) -> Dict[str, Any]:
    """JSON-ready result: workload outcome + per-node measurements."""
    payload: Dict[str, Any] = {
        "workload": result.workload_name,
        "target_ms": result.target_seconds * 1e3,
        "node_results": {
            str(index): {key: list(values) for key, values in results.items()}
            for index, results in result.node_results.items()
        },
    }
    distributed = manager.distributed_summary()
    if distributed is not None:
        payload["distributed"] = {
            "num_workers": distributed["num_workers"],
            "transport": distributed["transport"],
            "rounds": distributed["rounds"],
        }
    resilience = manager.resilience_summary()
    payload["resilience"] = {
        key: resilience[key]
        for key in ("checkpoints_taken", "restores", "recoveries", "giveups")
    }
    return payload


def run_job_inline(
    spec: JobSpec,
    resume: Optional[Dict[str, Any]] = None,
    control: Optional[Callable[[int, int], Optional[str]]] = None,
) -> Dict[str, Any]:
    """Run a job to completion in this process (the serial oracle).

    Tests compare a server-scheduled job's payload against this —
    bit-identical node results prove multi-tenancy didn't perturb
    target time.  ``resume``/``control`` expose the segmented seam for
    direct preempt/resume testing without a server.
    """
    manager = spec.build_manager()
    manager.buildafi()
    manager.launchrunfarm()
    manager.infrasetup()
    workload = spec.build_workload(manager)
    if spec.workers > 1:
        if resume is not None or control is not None:
            raise JobError(
                "distributed jobs run as one segment; preempt them via "
                "abort_check, not the segmented control hook"
            )
        result = manager.runworkload(workload)
        return _result_payload(manager, spec, result)
    outcome = manager.runworkload_segmented(
        workload,
        segment_cycles=spec.segment_cycles(),
        control=control,
        resume_cycle=resume["cycle"] if resume else 0,
        resume_digest=resume["digest"] if resume else None,
    )
    if outcome.status != "done":
        return {
            "status": outcome.status,
            "cycle": outcome.cycle,
            "digest": outcome.digest,
        }
    assert outcome.result is not None
    payload = _result_payload(manager, spec, outcome.result)
    payload["final_digest"] = outcome.digest
    return payload


def run_job_child(
    spec_dict: Dict[str, Any],
    resume: Optional[Dict[str, Any]],
    conn: Any,
) -> None:
    """Entry point of the forked per-job process.

    Protocol (over the full-duplex ``multiprocessing.Pipe``):

    * child -> parent: ``("progress", cycle, total)`` at segment
      boundaries; exactly one terminal message — ``("done", payload)``,
      ``("preempted", {"cycle", "digest"})``, ``("cancelled", cycle)``,
      or ``("failed", message)``.
    * parent -> child: ``("preempt",)`` / ``("cancel",)`` at any time;
      the child drains them non-blockingly at each segment boundary
      (serial) or engine round (distributed).

    The child owns its process group (``os.setpgrp``) so the server can
    signal the whole job — including any distributed workers it forked
    — without touching siblings.  SIGTERM raises ``SystemExit`` so the
    engine's ``finally`` blocks still unlink /dev/shm rings.
    """
    os.setpgrp()

    def _terminate(signum: int, frame: Any) -> None:
        raise SystemExit(128 + signum)

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # server handles Ctrl-C

    wanted = {"verdict": None}

    def _drain_commands() -> Optional[str]:
        while conn.poll():
            message = conn.recv()
            if message and message[0] in ("preempt", "cancel"):
                # cancel outranks preempt; otherwise first order wins.
                if wanted["verdict"] != CONTROL_CANCEL:
                    wanted["verdict"] = (
                        CONTROL_CANCEL if message[0] == "cancel"
                        else CONTROL_PREEMPT
                    )
        return wanted["verdict"]

    try:
        spec = JobSpec.from_dict(spec_dict)
        manager = spec.build_manager()
        manager.buildafi()
        manager.launchrunfarm()
        manager.infrasetup()
        workload = spec.build_workload(manager)
        if spec.workers > 1:
            # Distributed: one segment; preemption aborts the run (only
            # the pre-fork cycle is a sound checkpoint, see
            # runworkload_segmented's docstring) and the job restarts
            # from its resume point on the next schedule.
            manager.abort_check = lambda: _drain_commands() is not None
            try:
                result = manager.runworkload(workload)
            except ReproError as exc:
                verdict = wanted["verdict"]
                if verdict == CONTROL_CANCEL:
                    conn.send(("cancelled", 0))
                    return
                if verdict == CONTROL_PREEMPT:
                    cycle = resume["cycle"] if resume else 0
                    digest = resume["digest"] if resume else None
                    conn.send(("preempted",
                               {"cycle": cycle, "digest": digest}))
                    return
                conn.send(("failed", str(exc)))
                return
            conn.send(("done", _result_payload(manager, spec, result)))
            return

        def control(cycle: int, total: int) -> Optional[str]:
            conn.send(("progress", cycle, total))
            verdict = _drain_commands()
            return verdict if verdict is not None else CONTROL_CONTINUE

        outcome = manager.runworkload_segmented(
            workload,
            segment_cycles=spec.segment_cycles(),
            control=control,
            resume_cycle=resume["cycle"] if resume else 0,
            resume_digest=resume["digest"] if resume else None,
        )
        if outcome.status == "preempted":
            conn.send(("preempted",
                       {"cycle": outcome.cycle, "digest": outcome.digest}))
        elif outcome.status == "cancelled":
            conn.send(("cancelled", outcome.cycle))
        else:
            assert outcome.result is not None
            payload = _result_payload(manager, spec, outcome.result)
            payload["final_digest"] = outcome.digest
            conn.send(("done", payload))
    except SystemExit:
        raise
    except ReproError as exc:
        conn.send(("failed", str(exc)))
    except Exception as exc:  # noqa: BLE001 - report, don't hang the server
        conn.send(("failed", f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()
