"""Priority scheduler with aging and checkpoint-backed preemption.

Pure decision logic, no I/O and no asyncio — the server calls
:meth:`Scheduler.plan` whenever the world changes (submit, job finished,
preemption confirmed) and executes the returned actions.  Keeping it
pure makes the two scheduling invariants property-testable directly
(``tests/test_serve.py``):

* **no oversubscription** — started jobs' slots never exceed the farm's
  FPGA capacity (the farm ledger independently asserts this too);
* **no starvation** — a queued job's *effective* priority rises as it
  waits (``priority + rounds_waiting // aging_every``), so any job
  eventually outranks a stream of fresh high-priority arrivals, and
  within one priority level the queue is FIFO by submission order.

Preemption: when the best queued job cannot fit, running jobs that are
``preemptible`` and *strictly* lower-priority are evicted
(lowest-effective-priority first) until the blocked job would fit.  The
victim checkpoints at its next segment boundary and re-enters the queue;
its slots free only when the checkpoint actually lands — the scheduler
never double-counts in-flight evictions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.serve.farm import ServeFarm
from repro.serve.job import JobRecord, JobState

#: Rounds a job must wait to gain one effective-priority point.
AGING_EVERY = 4


@dataclass(frozen=True)
class Action:
    """One scheduling decision: start a queued job or preempt a runner."""

    kind: str  # "start" | "preempt"
    job_id: int


def effective_priority(record: JobRecord,
                       aging_every: int = AGING_EVERY) -> int:
    """Submitted priority plus an aging credit for time spent queued."""
    return record.spec.priority + record.rounds_waiting // aging_every


class Scheduler:
    """Plans starts/preemptions for a farm + job table; mutates neither."""

    def __init__(self, aging_every: int = AGING_EVERY) -> None:
        if aging_every < 1:
            raise ValueError(f"aging_every must be >= 1, got {aging_every}")
        self.aging_every = aging_every

    def _queue_order(self, queued: List[JobRecord]) -> List[JobRecord]:
        return sorted(
            queued,
            key=lambda r: (
                -effective_priority(r, self.aging_every), r.submit_seq
            ),
        )

    def plan(
        self,
        records: Dict[int, JobRecord],
        farm: ServeFarm,
        preempting: frozenset = frozenset(),
    ) -> List[Action]:
        """Decide what to do now.

        ``preempting`` holds job ids already ordered to checkpoint but
        not yet confirmed — their slots are still allocated, and they
        must not be ordered again.  Returned actions are ordered:
        preemptions first (they free capacity), then starts that fit
        *current* free capacity.  Starts freed by an in-flight
        preemption happen on the next plan, once the slots are real.
        """
        queued = self._queue_order([
            r for r in records.values() if r.state == JobState.QUEUED
        ])
        running = [
            r for r in records.values()
            if r.state == JobState.RUNNING and r.job_id not in preempting
        ]
        actions: List[Action] = []
        free = farm.free

        # Start everything that fits, best-first.  A job that doesn't
        # fit does NOT block smaller lower-ranked jobs (backfill), but
        # the head job's preemption demand is computed first so
        # backfill can't starve it.
        blocked: List[JobRecord] = []
        for record in queued:
            slots = record.spec.fpga_slots()
            if slots <= free:
                actions.append(Action("start", record.job_id))
                free -= slots
            else:
                blocked.append(record)

        if blocked and running:
            # Free capacity for the best blocked job by evicting
            # strictly lower-priority preemptible runners, cheapest
            # eviction (lowest effective priority) first.
            head = blocked[0]
            head_rank = effective_priority(head, self.aging_every)
            need = head.spec.fpga_slots() - free
            victims = sorted(
                (
                    r for r in running
                    if r.spec.preemptible
                    and effective_priority(r, self.aging_every) < head_rank
                ),
                key=lambda r: (
                    effective_priority(r, self.aging_every), -r.submit_seq
                ),
            )
            reclaimable = 0
            chosen: List[JobRecord] = []
            for victim in victims:
                if reclaimable >= need:
                    break
                chosen.append(victim)
                reclaimable += victim.spec.fpga_slots()
            if reclaimable >= need:
                actions = [
                    Action("preempt", v.job_id) for v in chosen
                ] + actions
        return actions

    def age(self, records: Dict[int, JobRecord]) -> None:
        """Credit one waiting round to every queued job."""
        for record in records.values():
            if record.state == JobState.QUEUED:
                record.rounds_waiting += 1
